"""Simulation-as-a-service: an HTTP front door on the sweep engine.

The paper's artifacts are sweeps -- hundred-cell protocol × app ×
consistency matrices -- and :class:`~repro.sweep.SweepEngine` already
executes them with content-hashed memoization and process fan-out.
This package puts a network boundary in front of that engine so many
clients can share one engine, one result cache and one in-flight
execution table:

* :mod:`repro.service.schema`  -- the versioned JSON wire protocol,
* :mod:`repro.service.jobs`    -- asynchronous sweep jobs over a
  shared engine (submit, track, stream per-cell progress),
* :mod:`repro.service.server`  -- the stdlib ``ThreadingHTTPServer``
  and request routing (``/v1/...`` endpoints),
* :mod:`repro.service.client`  -- a thin ``urllib`` client used by
  ``repro submit``, the CI smoke job and the tests.

Start a server with ``repro serve`` (or :func:`create_service` from
code), submit with ``repro submit`` or ``POST /v1/sweeps``.  See
``docs/service.md`` for endpoints, wire schema and curl examples.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JobManager, SweepJob
from repro.service.schema import (
    API_VERSION,
    MAX_SWEEP_CELLS,
    ApiError,
    error_payload,
    parse_sweep_request,
    sweep_request,
)
from repro.service.server import ReproService, create_service

__all__ = [
    "API_VERSION",
    "ApiError",
    "JobManager",
    "MAX_SWEEP_CELLS",
    "ReproService",
    "ServiceClient",
    "ServiceError",
    "SweepJob",
    "create_service",
    "error_payload",
    "parse_sweep_request",
    "sweep_request",
]
