"""The HTTP server: stdlib ``ThreadingHTTPServer``, no dependencies.

Endpoints (all JSON; see ``docs/service.md`` for the full schema):

====== ========================== =========================================
method path                       meaning
====== ========================== =========================================
POST   ``/v1/sweeps``             submit a spec batch; 202 + sweep id
GET    ``/v1/sweeps/<id>``        job status, per-cell progress + results
GET    ``/v1/runs/<hash>``        raw cache envelope of one cell
GET    ``/v1/health``             liveness + engine counters
GET    ``/v1/cache/stats``        cache size/hit/miss/eviction counters
====== ========================== =========================================

``GET /v1/sweeps/<id>`` supports ``?wait=<seconds>`` (long-poll until
the job finishes, capped) and ``?include=stats`` (embed the full
versioned ``MachineStats`` payload per cell instead of just the
summary digest).

Each request runs on its own thread; simulation work never blocks the
listener because jobs execute on their own worker threads (see
:mod:`repro.service.jobs`), and duplicate submissions are collapsed by
the engine's in-flight table, so a thundering herd on one paper figure
costs one simulation.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.service.jobs import JobManager
from repro.service.schema import (
    API_VERSION,
    ApiError,
    error_payload,
    parse_sweep_request,
)
from repro.sweep import ResultCache, SweepEngine

#: refuse request bodies larger than this (64 MiB ~ a maxed-out batch).
MAX_BODY_BYTES = 64 * 1024 * 1024

#: cap on ``?wait=`` long-polls so a dead client cannot pin a thread.
MAX_WAIT_SECONDS = 60.0


class _Handler(BaseHTTPRequestHandler):
    """Routes requests to the owning :class:`ReproService`."""

    server_version = "repro-sweep-service/1"
    protocol_version = "HTTP/1.1"

    @property
    def service(self) -> "ReproService":
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing -------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.service.verbose:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, message: str) -> None:
        self._send_json(status, error_payload(status, message))

    def _read_json_body(self) -> dict:
        length = self.headers.get("Content-Length")
        if length is None:
            raise ApiError(411, "Content-Length required")
        try:
            length = int(length)
        except ValueError:
            raise ApiError(400, "malformed Content-Length") from None
        if length > MAX_BODY_BYTES:
            raise ApiError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            return json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ApiError(400, f"body is not valid JSON: {exc}") from exc

    # -- routing --------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        query = parse_qs(url.query)
        try:
            if parts == ["v1", "health"]:
                self._send_json(200, self.service.health_payload())
            elif parts == ["v1", "cache", "stats"]:
                self._send_json(200, self.service.cache_stats_payload())
            elif parts == ["v1", "sweeps"]:
                self._send_json(200, self.service.sweeps_payload())
            elif len(parts) == 3 and parts[:2] == ["v1", "sweeps"]:
                self._get_sweep(parts[2], query)
            elif len(parts) == 3 and parts[:2] == ["v1", "runs"]:
                self._get_run(parts[2])
            else:
                self._send_error(404, f"no such endpoint: {url.path}")
        except ApiError as exc:
            self._send_error(exc.status, exc.message)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        url = urlsplit(self.path)
        parts = [p for p in url.path.split("/") if p]
        try:
            if parts == ["v1", "sweeps"]:
                specs = parse_sweep_request(self._read_json_body())
                job = self.service.manager.submit(specs)
                self._send_json(202, {
                    "v": API_VERSION,
                    "sweep": job.id,
                    "cells": len(job.cells),
                    "url": f"/v1/sweeps/{job.id}",
                })
            else:
                self._send_error(404, f"no such endpoint: {url.path}")
        except ApiError as exc:
            self._send_error(exc.status, exc.message)

    # -- endpoint bodies ------------------------------------------------

    def _get_sweep(self, job_id: str, query: dict) -> None:
        job = self.service.manager.get(job_id)
        if job is None:
            raise ApiError(404, f"no such sweep: {job_id}")
        if "wait" in query:
            try:
                timeout = float(query["wait"][0])
            except (TypeError, ValueError):
                raise ApiError(400, "wait must be a number of seconds") \
                    from None
            job.wait(min(max(timeout, 0.0), MAX_WAIT_SECONDS))
        include_stats = "stats" in query.get("include", [])
        self._send_json(200, job.to_dict(include_stats=include_stats))

    def _get_run(self, key: str) -> None:
        cache = self.service.engine.cache
        if cache is None:
            raise ApiError(404, "this server runs without a result cache")
        if not all(c in "0123456789abcdef" for c in key) or len(key) != 64:
            raise ApiError(400, "run id must be a 64-hex-digit spec hash")
        payload = cache.get_by_key(key)
        if payload is None:
            raise ApiError(404, f"no cached result for {key}")
        self._send_json(200, {"v": API_VERSION, "run": payload})


class ReproService:
    """The sweep service: one engine, one job manager, one HTTP server.

    Use as a context manager (tests) or call :meth:`serve_forever`
    (the ``repro serve`` CLI)::

        with ReproService(engine) as svc:
            print(svc.url)          # http://127.0.0.1:<ephemeral>
    """

    def __init__(
        self,
        engine: SweepEngine,
        host: str = "127.0.0.1",
        port: int = 0,
        verbose: bool = False,
    ) -> None:
        self.engine = engine
        self.manager = JobManager(engine)
        self.verbose = verbose
        self.started = time.time()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None

    # -- lifecycle ------------------------------------------------------

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "ReproService":
        """Serve on a daemon thread; returns self (for chaining)."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-service", daemon=True,
        )
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Serve on the calling thread (the ``repro serve`` path)."""
        self._httpd.serve_forever()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
        # flush buffered cache writes and stop the persistent worker
        # pool -- the service owns the process, so its shutdown is the
        # pool's shutdown.
        self.engine.close(shutdown_pool=True)

    def __enter__(self) -> "ReproService":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.close()

    # -- endpoint payloads ----------------------------------------------

    def health_payload(self) -> dict:
        jobs = self.manager.jobs()
        return {
            "v": API_VERSION,
            "status": "ok",
            "uptime": time.time() - self.started,
            "engine": self.engine.counters(),
            "jobs": {
                "total": len(jobs),
                "running": sum(1 for j in jobs if j.state == "running"),
            },
        }

    def cache_stats_payload(self) -> dict:
        cache = self.engine.cache
        return {
            "v": API_VERSION,
            "cache": cache.stats() if cache is not None else None,
            "engine": self.engine.counters(),
        }

    def sweeps_payload(self) -> dict:
        """Index of submitted sweeps (id + state, no cell detail)."""
        return {
            "v": API_VERSION,
            "sweeps": [
                {
                    "sweep": j.id,
                    "state": j.state,
                    "cells": len(j.cells),
                    "url": f"/v1/sweeps/{j.id}",
                }
                for j in self.manager.jobs()
            ],
        }


def create_service(
    host: str = "127.0.0.1",
    port: int = 0,
    cache_dir: str | None = None,
    max_cache_bytes: int | None = None,
    max_cache_entries: int | None = None,
    jobs: int = 1,
    verbose: bool = False,
    pool: str = "persistent",
    hot_cache_entries: int = 512,
    write_batch: int = 32,
) -> ReproService:
    """Build a service with its own engine + (optionally bounded) cache.

    The service defaults to the throughput configuration: persistent
    warm worker pool, a 512-entry hot tier over the result cache and
    32-way batched cache writes (flushed at the end of every sweep, so
    batching never defers durability across jobs).
    """
    cache = None
    if cache_dir is not None:
        cache = ResultCache(
            cache_dir,
            max_bytes=max_cache_bytes,
            max_entries=max_cache_entries,
            hot_entries=hot_cache_entries,
            write_batch=write_batch,
        )
    engine = SweepEngine(
        executor="process" if jobs > 1 else "serial",
        max_workers=jobs,
        cache=cache,
        pool=pool,
    )
    return ReproService(engine, host=host, port=port, verbose=verbose)
