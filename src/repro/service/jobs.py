"""Asynchronous sweep jobs over one shared :class:`SweepEngine`.

``POST /v1/sweeps`` maps to :meth:`JobManager.submit`: the batch is
validated, assigned a sweep id and handed to a worker thread that
pushes it through the engine.  Per-cell completion streams back
through the engine's per-call hook, so ``GET /v1/sweeps/<id>`` always
sees live progress -- which cells are done, where each result came
from (``sim``/``cache``/``dedup``) and the finished summaries --
without waiting for the batch.

Concurrency story: *all* jobs share one engine, so two clients
submitting overlapping matrices race neither the simulator nor the
cache -- the engine's in-flight table collapses duplicate hashes to a
single execution and everyone gets the same result object.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Iterable

from repro.api import RunSummary
from repro.service.schema import API_VERSION
from repro.sweep import ProgressEvent, RunResult, RunSpec, SweepEngine


class CellState:
    """Live status of one spec inside a sweep job."""

    __slots__ = ("index", "spec", "key", "status", "source", "wall_time",
                 "result")

    def __init__(self, index: int, spec: RunSpec) -> None:
        self.index = index
        self.spec = spec
        self.key = spec.key()
        self.status = "pending"          # "pending" | "done"
        self.source: str | None = None   # "sim" | "cache" | "dedup"
        self.wall_time = 0.0
        self.result: RunResult | None = None

    def to_dict(self, include_stats: bool = False) -> dict:
        d = {
            "index": self.index,
            "key": self.key,
            "label": self.spec.label(),
            "spec": self.spec.to_wire(),
            "status": self.status,
            "source": self.source,
            "wall_time": self.wall_time,
            "summary": None,
        }
        if self.result is not None:
            d["summary"] = RunSummary.from_result(self.result).to_dict(
                include_stats=include_stats
            )
        return d


class SweepJob:
    """One submitted batch: identity, cell states, lifecycle."""

    def __init__(self, job_id: str, specs: list[RunSpec]) -> None:
        self.id = job_id
        self.cells = [CellState(i, s) for i, s in enumerate(specs)]
        self.state = "queued"            # queued | running | done | failed
        self.error: str | None = None
        self.created = time.time()
        self.finished: float | None = None
        self.done_event = threading.Event()
        self._lock = threading.Lock()

    @property
    def specs(self) -> list[RunSpec]:
        return [c.spec for c in self.cells]

    def on_progress(self, event: ProgressEvent) -> None:
        """Engine per-call hook: record one completed cell."""
        cell = self.cells[event.index]
        with self._lock:
            cell.status = "done"
            cell.source = event.source
            cell.wall_time = event.wall_time
            cell.result = event.result
        # results arrive through the hook; a missing one (old-style
        # hook caller) is backfilled when the batch returns.

    def finish(self, results: list[RunResult] | None, error: str | None) -> None:
        with self._lock:
            if results is not None:
                for cell, result in zip(self.cells, results):
                    cell.result = result
                    cell.status = "done"
            self.error = error
            self.state = "failed" if error else "done"
            self.finished = time.time()
        self.done_event.set()

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job reaches a terminal state (or timeout)."""
        return self.done_event.wait(timeout)

    def to_dict(self, include_stats: bool = False) -> dict:
        """The ``GET /v1/sweeps/<id>`` body: status + per-cell detail."""
        with self._lock:
            done = sum(1 for c in self.cells if c.status == "done")
            sources = {"sim": 0, "cache": 0, "dedup": 0}
            for c in self.cells:
                if c.source in sources:
                    sources[c.source] += 1
            return {
                "v": API_VERSION,
                "sweep": self.id,
                "state": self.state,
                "error": self.error,
                "cells": len(self.cells),
                "done": done,
                "sources": sources,
                "created": self.created,
                "finished": self.finished,
                "results": [
                    c.to_dict(include_stats=include_stats)
                    for c in self.cells
                ],
            }


class JobManager:
    """Owns the shared engine and every job the service has accepted."""

    def __init__(self, engine: SweepEngine) -> None:
        self.engine = engine
        self._jobs: dict[str, SweepJob] = {}
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def submit(self, specs: Iterable[RunSpec]) -> SweepJob:
        """Accept a batch; returns the (already running) job."""
        specs = list(specs)
        with self._lock:
            job = SweepJob(f"sweep-{next(self._ids):06d}", specs)
            self._jobs[job.id] = job
        worker = threading.Thread(
            target=self._execute, args=(job,),
            name=f"repro-{job.id}", daemon=True,
        )
        worker.start()
        return job

    def get(self, job_id: str) -> SweepJob | None:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> list[SweepJob]:
        with self._lock:
            return list(self._jobs.values())

    def _execute(self, job: SweepJob) -> None:
        job.state = "running"
        try:
            results = self.engine.run(job.specs, on_result=job.on_progress)
        except Exception as exc:  # surfaced via the job, not the thread
            job.finish(None, f"{type(exc).__name__}: {exc}")
        else:
            job.finish(results, None)
