"""Wire protocol of the sweep service: versioned JSON envelopes.

Every request and response body is a JSON object carrying ``"v"``, the
API version.  Requests with a missing/unknown version are rejected
with 400 instead of being guessed at, exactly like
:meth:`RunSpec.from_wire` rejects stale spec payloads -- the two
version stamps travel together (an API envelope contains spec wire
forms) but are bumped independently.

Request shape for ``POST /v1/sweeps``::

    {"v": 1, "specs": [RunSpec.to_wire(), ...]}

Error shape (any endpoint)::

    {"v": 1, "error": {"status": 400, "message": "..."}}

Success shapes are produced by :mod:`repro.service.jobs`
(:meth:`SweepJob.to_dict`) and :mod:`repro.service.server`.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.sweep import RunSpec, SpecSchemaError

#: version of the HTTP API envelope (paths carry it too: ``/v1/...``).
API_VERSION = 1

#: refuse sweep batches larger than this -- a fat-fingered cross
#: product should fail fast, not occupy the engine for a week.
MAX_SWEEP_CELLS = 4096


class ApiError(ValueError):
    """A request the service refuses; carries the HTTP status to send."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


def error_payload(status: int, message: str) -> dict:
    """The JSON body sent with any non-2xx response."""
    return {
        "v": API_VERSION,
        "error": {"status": status, "message": message},
    }


def sweep_request(specs: list[RunSpec]) -> dict:
    """Client side: the ``POST /v1/sweeps`` body for a spec batch."""
    return {"v": API_VERSION, "specs": [s.to_wire() for s in specs]}


def parse_sweep_request(payload: Any) -> list[RunSpec]:
    """Server side: validate a sweep submission into concrete specs.

    Raises :class:`ApiError` (with an appropriate HTTP status) on any
    malformed, oversized or version-mismatched payload.
    """
    if not isinstance(payload, Mapping):
        raise ApiError(400, "request body must be a JSON object")
    version = payload.get("v")
    if version != API_VERSION:
        raise ApiError(
            400,
            f"unsupported api version {version!r} "
            f"(this server speaks v{API_VERSION})",
        )
    specs_raw = payload.get("specs")
    if not isinstance(specs_raw, list) or not specs_raw:
        raise ApiError(400, "'specs' must be a non-empty list")
    if len(specs_raw) > MAX_SWEEP_CELLS:
        raise ApiError(
            413,
            f"sweep of {len(specs_raw)} cells exceeds the per-request "
            f"limit of {MAX_SWEEP_CELLS}",
        )
    specs = []
    for n, raw in enumerate(specs_raw):
        try:
            specs.append(RunSpec.from_wire(raw))
        except SpecSchemaError as exc:
            raise ApiError(422, f"specs[{n}]: {exc}") from exc
    return specs
