"""Thin stdlib client for the sweep service.

Used by ``repro submit``, the CI service-smoke job and the end-to-end
tests; also a reasonable starting point for external tooling::

    from repro.service import ServiceClient
    from repro.sweep import RunSpec

    client = ServiceClient("http://127.0.0.1:8484")
    specs = [RunSpec.for_run("mp3d", protocol=p) for p in ("BASIC", "P+CW")]
    job = client.submit_and_wait(specs)
    for cell in job["results"]:
        print(cell["label"], cell["summary"]["execution_time"], cell["source"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.service.schema import sweep_request
from repro.sweep import RunSpec


class ServiceError(RuntimeError):
    """An HTTP error from the service, with the server's message."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking JSON-over-HTTP client (urllib, no dependencies)."""

    def __init__(self, base_url: str, timeout: float = 120.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport ------------------------------------------------------

    def _request(self, method: str, path: str, body: dict | None = None) -> dict:
        data = json.dumps(body).encode() if body is not None else None
        req = urllib.request.Request(
            self.base_url + path, data=data, method=method,
            headers={"Content-Type": "application/json"} if body else {},
        )
        try:
            with urllib.request.urlopen(req, timeout=self.timeout) as resp:
                return json.load(resp)
        except urllib.error.HTTPError as exc:
            try:
                message = json.load(exc)["error"]["message"]
            except Exception:
                message = exc.reason
            raise ServiceError(exc.code, message) from None

    def _get(self, path: str) -> dict:
        return self._request("GET", path)

    # -- endpoints ------------------------------------------------------

    def health(self) -> dict:
        return self._get("/v1/health")

    def cache_stats(self) -> dict:
        return self._get("/v1/cache/stats")

    def sweeps(self) -> dict:
        return self._get("/v1/sweeps")

    def submit(self, specs: list[RunSpec]) -> str:
        """POST a batch; returns the sweep id."""
        return self._request("POST", "/v1/sweeps", sweep_request(specs))["sweep"]

    def sweep(
        self,
        sweep_id: str,
        wait: float | None = None,
        include_stats: bool = False,
    ) -> dict:
        """One status snapshot (optionally long-polling up to ``wait`` s)."""
        query = []
        if wait is not None:
            query.append(f"wait={wait:g}")
        if include_stats:
            query.append("include=stats")
        tail = ("?" + "&".join(query)) if query else ""
        return self._get(f"/v1/sweeps/{sweep_id}{tail}")

    def run(self, key: str) -> dict:
        """The raw cache envelope for one spec hash."""
        return self._get(f"/v1/runs/{key}")["run"]

    # -- conveniences ---------------------------------------------------

    def wait_for(
        self,
        sweep_id: str,
        timeout: float = 3600.0,
        poll: float = 10.0,
        include_stats: bool = False,
    ) -> dict:
        """Long-poll until the sweep reaches a terminal state."""
        deadline = time.monotonic() + timeout
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError(
                    f"sweep {sweep_id} still running after {timeout:g}s"
                )
            job = self.sweep(
                sweep_id,
                wait=min(poll, remaining),
                include_stats=include_stats,
            )
            if job["state"] in ("done", "failed"):
                return job

    def submit_and_wait(
        self,
        specs: list[RunSpec],
        timeout: float = 3600.0,
        include_stats: bool = False,
    ) -> dict:
        """Submit a batch and block until its final status payload."""
        sweep_id = self.submit(specs)
        return self.wait_for(
            sweep_id, timeout=timeout, include_stats=include_stats
        )
