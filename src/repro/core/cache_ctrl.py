"""Lockup-free second-level cache controller.

This is the requester side of the **base write-invalidate protocol**:
it owns the FLC, the FLWB, the SLC and the SLWB, and implements the
paper's node behaviour:

* demand reads block the processor (blocking loads, §2); misses
  allocate an SLWB entry and go to the home node,
* writes drain from the FLWB into the SLC; writes to shared or invalid
  blocks send ownership requests,
* releases and barriers act as RCpc synchronization points: they wait
  for every write issued before them,
* incoming coherence traffic (invalidations, fetches) is serviced
  immediately, so the home never blocks on a cache.

Everything protocol-extension-specific -- prefetch fan-out (P), the
write cache and competitive updates (CW), migratory interrogations
(CW+M) -- lives in :mod:`repro.core.extensions` and is dispatched
through the node's :class:`~repro.core.extensions.ExtensionPipeline`
at the hook call sites below.  Extensions drive the controller through
its public surface (``send_home``, ``reply``, ``issue_prefetch``,
``hold_marker``, ``retry_read``, ...), never the other way around.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from heapq import heappush
from typing import Callable

from repro.config import SystemConfig
from repro.core.extensions import ExtensionPipeline, build_pipeline
from repro.core.messages import Message, MsgType
from repro.core.states import CacheState
from repro.mem.addrmap import WORD_SIZE, AddressMap
from repro.mem.flc import FirstLevelCache
from repro.mem.slc import CacheLine, SecondLevelCache
from repro.mem.write_buffers import Flwb, FlwbEntry, Slwb, SlwbKind
from repro.sim.engine import SimulationError, Simulator
from repro.sim.resource import FcfsResource
from repro.stats.classify import MissClassifier
from repro.stats.counters import CacheStats

SendFn = Callable[[Message, int], None]
DoneFn = Callable[[], None]


@dataclass(slots=True)
class _PendingRead:
    """An outstanding read (demand or prefetch) for one block."""

    block: int
    slwb_id: int
    is_prefetch: bool
    start: int
    demand_waiters: list[DoneFn] = field(default_factory=list)
    merged_prefetch: bool = False
    invalidated: bool = False
    deferred: list[Message] = field(default_factory=list)


@dataclass(slots=True)
class _PendingWrite:
    """An outstanding ownership request (OWN_REQ / RDX_REQ)."""

    block: int
    slwb_id: int
    start: int
    read_waiters: list[DoneFn] = field(default_factory=list)
    sc_waiter: DoneFn | None = None
    deferred: list[Message] = field(default_factory=list)


@dataclass(slots=True)
class SyncMarker:
    """A release or barrier waiting for prior writes to perform."""

    kind: str                      # 'release' | 'barrier'
    target: int                    # lock block or barrier id
    expected: int = 0              # barrier participant count
    outstanding: int = 0
    on_done: DoneFn | None = None  # barrier wake / SC release ack


#: historical name, kept for importers.
_SyncMarker = SyncMarker


class CacheController:
    """One node's FLC + SLC + write buffers + protocol requester FSM."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        cfg: SystemConfig,
        amap: AddressMap,
        slc_res: FcfsResource,
        send: SendFn,
        stats: CacheStats,
        placement=None,
        pipeline: ExtensionPipeline | None = None,
    ) -> None:
        self.node_id = node_id
        self.sim = sim
        self.cfg = cfg
        self._timing = cfg.timing
        # hot-path copies of the two timing parameters every reference
        # touches (one attribute hop instead of two)
        self._flc_hit = cfg.timing.flc_hit
        self._slc_access = cfg.timing.slc_access
        self._flc_fill = cfg.timing.flc_fill
        self._amap = amap
        # block/word arithmetic inlined on the reference path
        self._bsize = amap.block_size
        self._slc_res = slc_res
        self._send = send
        self.stats = stats
        #: page->home policy; None falls back to the address map's
        #: static round-robin placement
        self._placement = placement

        self.flc = FirstLevelCache(cfg.cache.flc_size, cfg.cache.block_size)
        self.slc = SecondLevelCache(cfg.cache.slc_size, cfg.cache.block_size)
        self.flwb = Flwb(cfg.effective_flwb_entries)
        self.slwb = Slwb(cfg.effective_slwb_entries)
        self.classifier = MissClassifier()

        #: the node's protocol-extension pipeline (shared with the home
        #: controller when built by :class:`repro.node.node.Node`).
        self.extensions = (
            pipeline if pipeline is not None else build_pipeline(cfg.protocol)
        )
        self.extensions.attach_cache(self)
        #: hot-path alias: the pipeline's extension tuple.  An empty
        #: pipeline is the common case (BASIC cells), and a falsy-tuple
        #: test is far cheaper than dispatching a no-op hook loop, so
        #: hook call sites below guard on this.
        self._exts = self.extensions.extensions
        # hot-path aliases into the FLC / FLWB internals (the dict and
        # deque are created once and only ever mutated in place)
        self._flc_sets = self.flc._sets
        self._flc_nsets = self.flc._n_sets
        self._flwb_fifo = self.flwb._fifo
        #: block -> home node.  Both placement policies are stable once
        #: a page's home is assigned (and every query here carries a
        #: toucher), so memoizing per block is exact.
        self._home_cache: dict[int, int] = {}

        self._pending_reads: dict[int, _PendingRead] = {}
        self._pending_writes: dict[int, _PendingWrite] = {}
        #: dirty victims awaiting WB_ACK (still service fetches)
        self._victims: dict[int, bool] = {}
        #: SLWB entry -> sync markers it holds back
        self._eid_markers: dict[int, list[SyncMarker]] = {}
        self._slwb_waiters: deque[Callable[[], None]] = deque()
        self._flwb_space_waiters: deque[Callable[[], None]] = deque()
        self._barrier_waiters: dict[int, DoneFn] = {}
        self._lock_waiters: dict[int, deque[DoneFn]] = {}
        self._release_acks: dict[int, deque[DoneFn]] = {}
        self._draining = False

        self._handlers = {
            MsgType.RD_RPL: self._on_rd_rpl,
            MsgType.RDX_RPL: self._on_write_reply,
            MsgType.OWN_ACK: self._on_write_reply,
            MsgType.INV: self._on_inv,
            MsgType.FETCH: self._on_fetch,
            MsgType.FETCH_INV: self._on_fetch,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.LOCK_GRANT: self._on_lock_grant,
            MsgType.LOCK_REL_ACK: self._on_lock_rel_ack,
            MsgType.BAR_WAKE: self._on_bar_wake,
        }

    # ------------------------------------------------------------------
    # processor-facing API
    # ------------------------------------------------------------------

    # Each op has an explicit-issue-time ``*_at`` form taking the issue
    # time ``t`` (>= ``sim.now``) as an argument: the processor's tight
    # issue loop runs ahead of the wall clock and issues ops at logical
    # times the heap has not reached yet.  Its crossing rule guarantees
    # no event fires in between, so performing the issue-time side
    # effects (FCFS reservations, buffer pushes, message sends,
    # scheduling) early preserves their exact order.  The classic
    # ``sim.now``-relative forms remain as thin wrappers.

    def read_at(self, addr: int, t: int, on_done: DoneFn) -> int:
        """Demand read issued at time ``t``.

        Returns the completion time when the reference resolves
        without needing ``on_done`` (FLC hit, FLWB store-to-load
        forward, or an SLC hit that no other event can interleave
        with) -- the caller continues synchronously, accounting for
        the elided completion event -- or ``-1`` after starting the
        SLC/miss path, which fires ``on_done`` when data is bound.
        """
        block = addr // self._bsize
        # FLC lookup and FLWB store-to-load probe, inlined (the two
        # checks every reference makes)
        if self._flc_sets.get(block % self._flc_nsets) == block:
            return t + self._flc_hit
        if self._flwb_fifo and self.flwb.contains_write_to(addr):
            # store-to-load forwarding: the word sits in the FLWB
            self.stats.flwb_forwards += 1
            return t + self._flc_hit
        sim = self.sim
        # SLC pipeline reservation (FcfsResource.finish_time, inlined)
        occ = self._slc_access
        res = self._slc_res
        ready = t + self._flc_hit
        free = res._free_at
        t1 = (ready if ready > free else free) + occ
        res._free_at = t1
        res.busy_cycles += occ
        res.reservations += 1
        heap = sim._heap
        if (heap and heap[0][0] <= t1) or t1 > sim._until:
            heappush(heap, (t1, sim._seq, self._slc_read, (block, on_done, t)))
            sim._seq += 1
            return -1
        # No event fires before the SLC lookup completes: run what the
        # scheduled ``_slc_read`` would have done now, with the clock
        # advanced, and credit the elided event.
        sim.now = t1
        sim._events_fired += 1
        exts = self._exts
        line = self.slc.lookup(block)
        if line is not None:
            if exts:
                self.extensions.on_read_hit(self, line)
            self.flc.fill(block)
        elif exts and self.extensions.absorbs_read(self, block):
            line = True  # resolved from the write cache, no FLC fill
        else:
            # miss path, exactly as the scheduled event would run it
            pr = self._pending_reads.get(block)
            if pr is not None:
                if exts:
                    self.extensions.on_read_merged(self, pr)
                pr.demand_waiters.append(on_done)
                return -1
            pw = self._pending_writes.get(block)
            if pw is not None:
                pw.read_waiters.append(on_done)
                return -1
            if exts and self.extensions.defers_read(self, block, on_done, t):
                return -1
            self._demand_miss(block, on_done, t)
            return -1
        t_done = t1 + self._flc_fill
        if (not heap or heap[0][0] > t_done) and t_done <= sim._until:
            # the completion event is elidable too; the caller accounts
            # for it (boundary credit or an explicit reschedule)
            sim.now = t_done
            return t_done
        heappush(heap, (t_done, sim._seq, on_done, ()))
        sim._seq += 1
        return -1

    def read(self, addr: int, on_done: DoneFn) -> None:
        """Demand read; ``on_done`` fires when the data is bound."""
        done = self.read_at(addr, self.sim.now, on_done)
        if done >= 0:
            self.sim.at(done, on_done)

    def _flwb_forwards(self, addr: int) -> bool:
        """True if a buffered write to the same word can satisfy a read."""
        return self.flwb.contains_write_to(addr)

    def can_buffer_write(self) -> bool:
        """True when the FLWB can accept a write without stalling."""
        return not self.flwb.full

    def buffer_write_at(self, addr: int, t: int) -> None:
        """RC write path: enqueue in the FLWB (at time ``t``) and go."""
        # Flwb.push inlined (the caller has already checked for room)
        flwb = self.flwb
        writes = flwb._writes + 1
        if writes > flwb.capacity:
            raise OverflowError("FLWB overflow")
        flwb._writes = writes
        if writes > flwb.peak_occupancy:
            flwb.peak_occupancy = writes
        self._flwb_fifo.append(FlwbEntry(addr, t))
        self._pump_drain(t)

    def buffer_write(self, addr: int) -> None:
        """RC write path: enqueue in the FLWB and keep going."""
        self.buffer_write_at(addr, self.sim.now)

    def when_write_space(self, cb: Callable[[], None]) -> None:
        """Call ``cb`` when the FLWB has room again (processor stall)."""
        self._flwb_space_waiters.append(cb)

    def write_blocking_at(self, addr: int, on_done: DoneFn, t: int) -> None:
        """SC write path issued at ``t``; ``on_done`` when performed."""
        t1 = self._slc_res.finish_time(t, self._slc_access)
        self.sim.at(t1, self._write_blocking_at_slc, addr, on_done)

    def write_blocking(self, addr: int, on_done: DoneFn) -> None:
        """SC write path: ``on_done`` when globally performed."""
        self.write_blocking_at(addr, on_done, self.sim.now)

    def acquire_at(self, addr: int, on_done: DoneFn, t: int) -> None:
        """Acquire a lock at time ``t``; ``on_done`` on LOCK_GRANT."""
        block = self._amap.block_of(addr)
        self._lock_waiters.setdefault(block, deque()).append(on_done)
        self.send_home(MsgType.LOCK_REQ, block, t=t)

    def acquire(self, addr: int, on_done: DoneFn) -> None:
        """Acquire a lock; ``on_done`` on LOCK_GRANT."""
        self.acquire_at(addr, on_done, self.sim.now)

    def release_at(
        self, addr: int, t: int, on_performed: DoneFn | None = None
    ) -> None:
        """Release a lock (issued at ``t``) after earlier writes perform.

        Under RC the processor continues immediately; pass
        ``on_performed`` (SC) to learn when the release completes.
        """
        block = self._amap.block_of(addr)
        marker = SyncMarker(kind="release", target=block, on_done=on_performed)
        self.flwb.push(FlwbEntry(addr=-1, issue_time=t, marker=marker))
        self._pump_drain(t)

    def release(self, addr: int, on_performed: DoneFn | None = None) -> None:
        """Release a lock after all earlier writes have performed."""
        self.release_at(addr, self.sim.now, on_performed)

    def barrier_at(
        self, bar_id: int, expected: int, on_done: DoneFn, t: int
    ) -> None:
        """Arrive at a barrier at time ``t``; ``on_done`` on wake."""
        marker = SyncMarker(
            kind="barrier", target=bar_id, expected=expected, on_done=on_done
        )
        self.flwb.push(FlwbEntry(addr=-1, issue_time=t, marker=marker))
        self._pump_drain(t)

    def barrier(self, bar_id: int, expected: int, on_done: DoneFn) -> None:
        """Arrive at a barrier once earlier writes performed; wait wake."""
        self.barrier_at(bar_id, expected, on_done, self.sim.now)

    # ------------------------------------------------------------------
    # extension-facing API
    # ------------------------------------------------------------------

    def slc_finish(self, t: int) -> int:
        """Completion time of an SLC access starting at ``t``."""
        return self._slc_res.finish_time(t, self._slc_access)

    def has_pending(self, block: int) -> bool:
        """A read or ownership request for ``block`` is in flight."""
        return block in self._pending_reads or block in self._pending_writes

    def has_pending_read(self, block: int) -> bool:
        """A read (demand or prefetch) for ``block`` is in flight."""
        return block in self._pending_reads

    def retry_read(self, block: int, on_done: DoneFn, t0: int) -> None:
        """Re-enter a read an extension parked (e.g. behind a flush)."""
        self._slc_read(block, on_done, t0)

    def issue_prefetch(self, block: int) -> None:
        """Allocate an SLWB entry and request ``block`` non-bindingly.

        The caller must have checked :meth:`Slwb.has_room`.
        """
        eid = self.slwb.alloc(SlwbKind.PREFETCH)
        self._pending_reads[block] = _PendingRead(
            block=block, slwb_id=eid, is_prefetch=True, start=self.sim.now
        )
        self.send_home(MsgType.RD_REQ, block, prefetch=True)
        self.stats.prefetches_issued += 1

    def hold_marker(self, eid: int, marker: SyncMarker) -> None:
        """Make SLWB entry ``eid`` hold back ``marker``.

        Bookkeeping only: the caller increments ``marker.outstanding``
        where it counts the entry (arm/queue time, never twice).
        """
        self._eid_markers.setdefault(eid, []).append(marker)

    def relinquish_ownership(self, block: int) -> None:
        """Give an (unwanted) exclusive grant straight back to the home."""
        self._victims[block] = False
        self.send_home(MsgType.WB, block)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _slc_read(self, block: int, on_done: DoneFn, t0: int) -> None:
        exts = self._exts
        line = self.slc.lookup(block)
        if line is not None:
            if exts:
                self.extensions.on_read_hit(self, line)
            self.flc.fill(block)
            self.sim.after(self._timing.flc_fill, on_done)
            return
        if exts and self.extensions.absorbs_read(self, block):
            self.sim.after(self._timing.flc_fill, on_done)
            return
        pr = self._pending_reads.get(block)
        if pr is not None:
            if exts:
                self.extensions.on_read_merged(self, pr)
            pr.demand_waiters.append(on_done)
            return
        pw = self._pending_writes.get(block)
        if pw is not None:
            pw.read_waiters.append(on_done)
            return
        if exts and self.extensions.defers_read(self, block, on_done, t0):
            return
        self._demand_miss(block, on_done, t0)

    def _demand_miss(self, block: int, on_done: DoneFn, t0: int) -> None:
        kind = self.classifier.classify(block)
        self.stats.demand_read_misses += 1
        if kind == MissClassifier.COLD:
            self.stats.cold_misses += 1
        elif kind == MissClassifier.COHERENCE:
            self.stats.coherence_misses += 1
        else:
            self.stats.replacement_misses += 1
        if self._exts:
            self.extensions.on_demand_miss(self, block)
        if self.slwb.has_room():
            # common case: issue straight away, no waiter closure
            self._issue_demand(block, on_done, t0)
        else:
            self._slwb_waiters.append(
                lambda: self._issue_demand(block, on_done, t0)
            )

    def _issue_demand(self, block: int, on_done: DoneFn, t0: int) -> None:
        # the state may have moved while we waited for SLWB room
        if self.slc.lookup(block) is not None:
            self.sim.after(0, on_done)
            return
        pr = self._pending_reads.get(block)
        if pr is not None:
            pr.demand_waiters.append(on_done)
            return
        pw = self._pending_writes.get(block)
        if pw is not None:
            pw.read_waiters.append(on_done)
            return
        if self._exts and self.extensions.defers_read(self, block, on_done, t0):
            return
        eid = self.slwb.alloc(SlwbKind.READ)
        entry = _PendingRead(
            block=block, slwb_id=eid, is_prefetch=False,
            start=t0, demand_waiters=[on_done],
        )
        self._pending_reads[block] = entry
        self.send_home(MsgType.RD_REQ, block)
        if self._exts:
            self.extensions.on_miss_issued(self, block)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _pump_drain(self, t: int) -> None:
        if self._draining or not self._flwb_fifo:
            return
        self._draining = True
        occ = self._slc_access
        res = self._slc_res
        free = res._free_at
        t1 = (t if t > free else free) + occ
        res._free_at = t1
        res.busy_cycles += occ
        res.reservations += 1
        sim = self.sim
        heappush(sim._heap, (t1, sim._seq, self._drain_head, ()))
        sim._seq += 1

    def _drain_head(self) -> None:
        sim = self.sim
        heap = sim._heap
        flwb = self.flwb
        fifo = self._flwb_fifo
        occ = self._slc_access
        res = self._slc_res
        while True:
            if not fifo:
                self._draining = False
                return
            head = fifo[0]
            if head.marker is not None:
                flwb.pop()
                self._arm_marker(head.marker)
            elif self._apply_write(head.addr):
                flwb.pop()
                self._notify_flwb_space()
            else:
                # SLWB full: retry when an entry retires.  The waiter
                # runs synchronously from ``release_slwb`` -- mid-event
                # -- so it must take the non-advancing resume path.
                self.when_slwb_room(self._drain_resume)
                return
            # continue the drain; scheduling the next step is this
            # event's last action, so when no other event can fire
            # before the SLC pipeline frees up, run the step now with
            # the clock advanced (credited, keeping ``events_fired``
            # identical to the one-event-per-step schedule)
            if not fifo:
                self._draining = False
                return
            now = sim.now
            free = res._free_at
            t1 = (now if now > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            if (heap and heap[0][0] <= t1) or t1 > sim._until:
                heappush(heap, (t1, sim._seq, self._drain_head, ()))
                sim._seq += 1
                return
            sim.now = t1
            sim._events_fired += 1

    def _drain_resume(self) -> None:
        """One drain step taken synchronously (SLWB-room waiter).

        Runs in the middle of whichever event retired the SLWB entry,
        so unlike ``_drain_head`` it never advances the clock: the next
        step is always a real scheduled event.
        """
        if self.flwb.empty:
            self._draining = False
            return
        head = self.flwb.peek()
        if head.marker is not None:
            self.flwb.pop()
            self._arm_marker(head.marker)
            self._continue_drain()
            return
        if self._apply_write(head.addr):
            self.flwb.pop()
            self._notify_flwb_space()
            self._continue_drain()
        else:
            self.when_slwb_room(self._drain_resume)

    def _continue_drain(self) -> None:
        if self.flwb.empty:
            self._draining = False
            return
        sim = self.sim
        t1 = self._slc_res.finish_time(sim.now, self._slc_access)
        heappush(sim._heap, (t1, sim._seq, self._drain_head, ()))
        sim._seq += 1

    def _notify_flwb_space(self) -> None:
        while self._flwb_space_waiters and not self.flwb.full:
            self._flwb_space_waiters.popleft()()

    def _apply_write(self, addr: int) -> bool:
        """Perform one write at the SLC; False = wait for SLWB room."""
        bs = self._bsize
        block = addr // bs
        word = (addr % bs) // WORD_SIZE
        line = self.slc.lookup(block)
        if line is not None and line.state is CacheState.DIRTY:
            line.modified_since_update = True
            return True
        if line is not None and line.state is CacheState.MIG_CLEAN:
            line.state = CacheState.DIRTY
            line.modified_since_update = True
            return True
        if self._exts:
            handled = self.extensions.on_write(self, block, word, line)
            if handled is not None:
                return handled
        # base write-invalidate ownership path
        if block in self._pending_writes:
            return True  # covered by the in-flight ownership request
        if not self.slwb.has_room():
            return False
        self._issue_ownership(block, line, sc_waiter=None)
        return True

    def _issue_ownership(
        self, block: int, line: CacheLine | None, sc_waiter: DoneFn | None
    ) -> None:
        eid = self.slwb.alloc(SlwbKind.OWNERSHIP)
        self.stats.ownership_requests += 1
        self._pending_writes[block] = _PendingWrite(
            block=block, slwb_id=eid, start=self.sim.now, sc_waiter=sc_waiter
        )
        if line is not None or block in self._pending_reads:
            self.send_home(MsgType.OWN_REQ, block)
        else:
            self.send_home(MsgType.RDX_REQ, block)

    def _write_blocking_at_slc(self, addr: int, on_done: DoneFn) -> None:
        """SC write: stall until ownership is granted."""
        block = self._amap.block_of(addr)
        line = self.slc.lookup(block)
        if line is not None and line.state is CacheState.DIRTY:
            on_done()
            return
        if line is not None and line.state is CacheState.MIG_CLEAN:
            line.state = CacheState.DIRTY
            line.modified_since_update = True
            on_done()
            return
        pw = self._pending_writes.get(block)
        if pw is not None:
            # merge with an earlier pending write to the same block
            if pw.sc_waiter is None:
                pw.sc_waiter = on_done
            else:
                pw.read_waiters.append(on_done)
            return

        def issue() -> None:
            ln = self.slc.lookup(block)
            if ln is not None and ln.state is CacheState.DIRTY:
                self.sim.after(0, on_done)
                return
            if ln is not None and ln.state is CacheState.MIG_CLEAN:
                ln.state = CacheState.DIRTY
                ln.modified_since_update = True
                self.sim.after(0, on_done)
                return
            merged = self._pending_writes.get(block)
            if merged is not None:
                merged.read_waiters.append(on_done)
                return
            self._issue_ownership(block, ln, sc_waiter=on_done)

        self.when_slwb_room(issue)

    # ------------------------------------------------------------------
    # synchronization markers
    # ------------------------------------------------------------------

    def _arm_marker(self, marker: SyncMarker) -> None:
        """Register everything the sync point must wait for."""
        for pw in self._pending_writes.values():
            self.hold_marker(pw.slwb_id, marker)
            marker.outstanding += 1
        if self._exts:
            self.extensions.on_release(self, marker)
        if marker.outstanding == 0:
            self._fire_marker(marker)

    def _fire_marker(self, marker: SyncMarker) -> None:
        if marker.kind == "release":
            if marker.on_done is not None:
                self._release_acks.setdefault(marker.target, deque()).append(
                    marker.on_done
                )
            self.send_home(MsgType.LOCK_REL, marker.target)
        else:
            self._barrier_waiters[marker.target] = marker.on_done or (lambda: None)
            self._send_barrier_arrive(marker.target, marker.expected)

    def _marker_progress(self, eid: int) -> None:
        for marker in self._eid_markers.pop(eid, []):
            marker.outstanding -= 1
            if marker.outstanding == 0:
                self._fire_marker(marker)

    # ------------------------------------------------------------------
    # message send helpers
    # ------------------------------------------------------------------

    def _home_of(self, block: int) -> int:
        if self._placement is None:
            return self._amap.home_of_block(block)
        page = self._amap.page_of(self._amap.block_base(block))
        return self._placement.home_of_page(page, toucher=self.node_id)

    def send_home(
        self, mtype: MsgType, block: int, t: int | None = None, **kw
    ) -> None:
        """Send a request for ``block`` to its home node at ``t`` (now)."""
        dst = self._home_cache.get(block)
        if dst is None:
            dst = self._home_of(block)
            self._home_cache[block] = dst
        self._send(
            Message(mtype, self.node_id, dst, block, **kw),
            self.sim.now if t is None else t,
        )

    def reply(self, mtype: MsgType, dst: int, block: int, t: int, **kw) -> None:
        """Send a reply/ack message to ``dst`` at time ``t``."""
        self._send(Message(mtype, self.node_id, dst, block, **kw), t)

    def _send_barrier_arrive(self, bar_id: int, expected: int) -> None:
        dst = bar_id % self.cfg.n_procs
        self._send(
            Message(
                MsgType.BAR_ARRIVE, src=self.node_id, dst=dst,
                block=bar_id, tag=expected,
            ),
            self.sim.now,
        )

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------

    def _fill(self, block: int, state: CacheState) -> CacheLine:
        line, victim = self.slc.insert(block, state)
        self.classifier.on_fill(block)
        if self._exts:
            self.extensions.on_fill(self, line)
        if victim is not None:
            self._evict(victim)
        return line

    def _evict(self, victim: CacheLine) -> None:
        self.classifier.on_eviction(victim.block)
        self.flc.invalidate(victim.block)  # inclusion
        if self._exts:
            self.extensions.on_evict(self, victim)
        if victim.state in (CacheState.DIRTY, CacheState.MIG_CLEAN):
            self.stats.writebacks += 1
            self._victims[victim.block] = victim.state is CacheState.DIRTY
            self.send_home(MsgType.WB, victim.block)
        else:
            self.send_home(MsgType.REPL, victim.block)

    # ------------------------------------------------------------------
    # network delivery
    # ------------------------------------------------------------------

    def deliver(self, msg: Message, t: int) -> None:
        """Handle a cache-bound message arriving at time ``t``."""
        handler = self._handlers.get(msg.mtype)
        if handler is not None:
            handler(msg, t)
            return
        if self.extensions.on_home_reply(self, msg, t):
            return
        raise SimulationError(
            f"cache {self.node_id}: unexpected {msg.mtype}"
        )

    def _on_rd_rpl(self, msg: Message, t: int) -> None:
        block = msg.block
        pr = self._pending_reads.pop(block, None)
        if pr is None:
            raise SimulationError(f"stray RD_RPL for block {block}")
        t1 = self.slc_finish(t)
        state = CacheState.MIG_CLEAN if msg.grant == "MC" else CacheState.SHARED
        demand = bool(pr.demand_waiters) or pr.merged_prefetch
        if pr.invalidated and state is not CacheState.MIG_CLEAN:
            # An invalidation raced the (shared) data: bind the value
            # to the waiting read but keep no line.  Whether the INV
            # was serialized before or after our read, ending up
            # line-less is safe -- the directory at worst
            # overestimates our copy.  An exclusive (MC) grant can
            # never be trailed by an INV (owners receive fetches, not
            # invalidations), so any recorded INV predates the grant
            # and is ignored.
            self.classifier.on_fill(block)
            self.classifier.on_coherence_loss(block)
        else:
            line = self._fill(block, state)
            line.prefetched = pr.is_prefetch and not demand
        if pr.demand_waiters:
            done = t1 + self._flc_fill
            if not pr.invalidated:
                self.flc.fill(block)
            self.stats.read_miss_latency_total += done - pr.start
            self.stats.read_miss_latency_count += 1
            sim = self.sim
            heap = sim._heap
            for cb in pr.demand_waiters:
                heappush(heap, (done, sim._seq, cb, ()))
                sim._seq += 1
        self.release_slwb(pr.slwb_id)
        for deferred in pr.deferred:
            self.sim.at(t1, self.deliver, deferred, t1)

    def _on_write_reply(self, msg: Message, t: int) -> None:
        block = msg.block
        pw = self._pending_writes.pop(block, None)
        if pw is None:
            raise SimulationError(f"stray {msg.mtype} for block {block}")
        t1 = self.slc_finish(t)
        line = self.slc.lookup(block)
        if line is None:
            line = self._fill(block, CacheState.DIRTY)
        else:
            line.state = CacheState.DIRTY
        line.modified_since_update = True
        line.prefetched = False
        if pw.read_waiters:
            self.flc.fill(block)
            for cb in pw.read_waiters:
                self.sim.at(t1 + self._timing.flc_fill, cb)
        if pw.sc_waiter is not None:
            self.sim.at(t1, pw.sc_waiter)
        self.release_slwb(pw.slwb_id)
        for deferred in pw.deferred:
            self.sim.at(t1, self.deliver, deferred, t1)

    def _on_inv(self, msg: Message, t: int) -> None:
        block = msg.block
        self.stats.invalidations_received += 1
        words = self.extensions.on_invalidate(self, block) if self._exts else 0
        line = self.slc.invalidate(block)
        if line is not None:
            self.classifier.on_coherence_loss(block)
            self.flc.invalidate(block)
        pr = self._pending_reads.get(block)
        if pr is not None:
            pr.invalidated = True
        t1 = self.slc_finish(t)
        self.reply(MsgType.INV_ACK, msg.src, block, t1, words=words)

    def _on_fetch(self, msg: Message, t: int) -> None:
        block = msg.block
        # Defer the fetch only when the data is genuinely still in
        # flight (no valid line, no victim-buffer copy).  A valid line
        # must answer immediately even with an ownership upgrade
        # pending, because that upgrade may be queued at the home
        # *behind* this very fetch.  A block in the victim buffer
        # always means the fetch targets the old, evicted copy (home
        # processed our WB before granting anything newer, and
        # per-pair FIFO would have delivered the WB_ACK first).
        line = self.slc.lookup(block)
        if line is None and block not in self._victims:
            pr = self._pending_reads.get(block)
            if pr is not None:
                pr.deferred.append(msg)
                return
            pw = self._pending_writes.get(block)
            if pw is not None:
                pw.deferred.append(msg)
                return
        t1 = self.slc_finish(t)
        if line is not None and block not in self._victims:
            was_modified = line.state is CacheState.DIRTY
            dropped = False
            if msg.mtype is MsgType.FETCH_INV:
                self.slc.invalidate(block)
                self.flc.invalidate(block)
                self.classifier.on_coherence_loss(block)
                dropped = True
            else:
                line.state = CacheState.SHARED
                line.modified_since_update = False
        elif block in self._victims:
            was_modified = self._victims[block]
            dropped = True
        else:
            raise SimulationError(
                f"cache {self.node_id}: FETCH for absent block {block}"
            )
        if msg.requester >= 0:
            reply = (
                MsgType.RDX_RPL if msg.grant == "X" else MsgType.RD_RPL
            )
            self.reply(
                reply, msg.requester, block, t1, grant=msg.grant
            )
        self.reply(
            MsgType.XFER_ACK, msg.src, block, t1,
            was_modified=was_modified, drop=dropped,
        )

    def _on_wb_ack(self, msg: Message, t: int) -> None:
        self._victims.pop(msg.block, None)

    def _on_lock_grant(self, msg: Message, t: int) -> None:
        waiters = self._lock_waiters.get(msg.block)
        if not waiters:
            raise SimulationError(f"stray LOCK_GRANT for {msg.block}")
        waiters.popleft()()
        if not waiters:
            del self._lock_waiters[msg.block]

    def _on_lock_rel_ack(self, msg: Message, t: int) -> None:
        acks = self._release_acks.get(msg.block)
        if acks:
            acks.popleft()()
            if not acks:
                del self._release_acks[msg.block]

    def _on_bar_wake(self, msg: Message, t: int) -> None:
        cb = self._barrier_waiters.pop(msg.block, None)
        if cb is None:
            raise SimulationError(f"stray BAR_WAKE for barrier {msg.block}")
        cb()

    # ------------------------------------------------------------------
    # SLWB bookkeeping
    # ------------------------------------------------------------------

    def when_slwb_room(self, cb: Callable[[], None]) -> None:
        """Run ``cb`` now if the SLWB has room, else when it does."""
        if self.slwb.has_room():
            cb()
        else:
            self._slwb_waiters.append(cb)

    def release_slwb(self, eid: int) -> None:
        """Retire SLWB entry ``eid``: markers progress, waiters run."""
        entries = self.slwb._entries
        del entries[eid]
        if self._eid_markers:
            self._marker_progress(eid)
        waiters = self._slwb_waiters
        if waiters:
            capacity = self.slwb.capacity
            while waiters and len(entries) < capacity:
                waiters.popleft()()

    # ------------------------------------------------------------------
    # introspection (tests, invariants)
    # ------------------------------------------------------------------

    @property
    def outstanding_requests(self) -> int:
        """Pending reads + writes + extension requests (quiescence)."""
        return (
            len(self._pending_reads)
            + len(self._pending_writes)
            + self.extensions.cache_outstanding(self)
        )

    @property
    def prefetcher(self):
        """The prefetch engine, when a prefetching extension is active."""
        for name in ("P", "PF"):
            ext = self.extensions.get(name)
            if ext is not None:
                return ext.engine
        return None

    @property
    def wcache(self):
        """The CW extension's write cache (None without CW)."""
        ext = self.extensions.get("CW")
        return ext.wcache if ext is not None else None
