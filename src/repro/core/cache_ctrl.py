"""Lockup-free second-level cache controller.

This is the requester side of the protocol: it owns the FLC, the FLWB,
the SLC, the SLWB, and -- depending on the protocol configuration --
the write cache (CW) and the adaptive prefetch engine (P).

The controller implements the paper's node behaviour:

* demand reads block the processor (blocking loads, §2); misses
  allocate an SLWB entry and go to the home node,
* writes drain from the FLWB into the SLC; writes to shared or invalid
  blocks either send ownership requests (BASIC/M) or combine in the
  write cache (CW),
* prefetches (P) are issued for the K sequential successors of every
  demand miss, pending in the SLWB,
* releases and barriers act as RCpc synchronization points: they wait
  for every ownership request and write-cache flush issued before them,
* incoming coherence traffic (invalidations, fetches, updates,
  interrogations) is serviced immediately, so the home never blocks on
  a cache.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable

from repro.config import SystemConfig
from repro.core.competitive import CompetitivePolicy
from repro.core.messages import Message, MsgType
from repro.core.prefetch import AdaptivePrefetcher
from repro.core.states import CacheState
from repro.mem.addrmap import AddressMap
from repro.mem.flc import FirstLevelCache
from repro.mem.slc import CacheLine, SecondLevelCache
from repro.mem.write_buffers import Flwb, FlwbEntry, Slwb, SlwbKind
from repro.mem.write_cache import WriteCache, WriteCacheEntry
from repro.sim.engine import SimulationError, Simulator
from repro.sim.resource import FcfsResource
from repro.stats.classify import MissClassifier
from repro.stats.counters import CacheStats

SendFn = Callable[[Message, int], None]
DoneFn = Callable[[], None]


@dataclass
class _PendingRead:
    """An outstanding read (demand or prefetch) for one block."""

    block: int
    slwb_id: int
    is_prefetch: bool
    start: int
    demand_waiters: list[DoneFn] = field(default_factory=list)
    merged_prefetch: bool = False
    invalidated: bool = False
    deferred: list[Message] = field(default_factory=list)


@dataclass
class _PendingWrite:
    """An outstanding ownership request (OWN_REQ / RDX_REQ)."""

    block: int
    slwb_id: int
    start: int
    read_waiters: list[DoneFn] = field(default_factory=list)
    sc_waiter: DoneFn | None = None
    deferred: list[Message] = field(default_factory=list)


@dataclass
class _SyncMarker:
    """A release or barrier waiting for prior writes to perform."""

    kind: str                      # 'release' | 'barrier'
    target: int                    # lock block or barrier id
    expected: int = 0              # barrier participant count
    outstanding: int = 0
    on_done: DoneFn | None = None  # barrier wake / SC release ack


class CacheController:
    """One node's FLC + SLC + write buffers + protocol requester FSM."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        cfg: SystemConfig,
        amap: AddressMap,
        slc_res: FcfsResource,
        send: SendFn,
        stats: CacheStats,
        placement=None,
    ) -> None:
        self.node_id = node_id
        self._sim = sim
        self._cfg = cfg
        self._timing = cfg.timing
        self._amap = amap
        self._slc_res = slc_res
        self._send = send
        self.stats = stats
        #: page->home policy; None falls back to the address map's
        #: static round-robin placement
        self._placement = placement

        self.flc = FirstLevelCache(cfg.cache.flc_size, cfg.cache.block_size)
        self.slc = SecondLevelCache(cfg.cache.slc_size, cfg.cache.block_size)
        self.flwb = Flwb(cfg.effective_flwb_entries)
        self.slwb = Slwb(cfg.effective_slwb_entries)
        self.classifier = MissClassifier()

        proto = cfg.protocol
        self.wcache: WriteCache | None = (
            WriteCache(cfg.cache.write_cache_blocks)
            if proto.competitive_update and proto.competitive_params.use_write_cache
            else None
        )
        self._cw = proto.competitive_update
        self._comp: CompetitivePolicy | None = (
            CompetitivePolicy(proto.competitive_params)
            if proto.competitive_update
            else None
        )
        self.prefetcher: AdaptivePrefetcher | None = (
            AdaptivePrefetcher(proto.prefetch_params) if proto.prefetch else None
        )

        self._pending_reads: dict[int, _PendingRead] = {}
        self._pending_writes: dict[int, _PendingWrite] = {}
        #: write-cache flushes in flight: block -> FIFO of SLWB ids
        self._pending_flushes: dict[int, deque[int]] = {}
        #: flush entries waiting for a free SLWB slot
        self._flush_queue: deque[tuple[WriteCacheEntry, list[_SyncMarker]]] = deque()
        #: dirty victims awaiting WB_ACK (still service fetches)
        self._victims: dict[int, bool] = {}
        #: SLWB entry -> sync markers it holds back
        self._eid_markers: dict[int, list[_SyncMarker]] = {}
        #: demand reads parked until a pending flush of the block acks
        self._flush_read_waiters: dict[int, list[tuple[DoneFn, int]]] = {}
        self._slwb_waiters: deque[Callable[[], None]] = deque()
        self._flwb_space_waiters: deque[Callable[[], None]] = deque()
        self._barrier_waiters: dict[int, DoneFn] = {}
        self._lock_waiters: dict[int, deque[DoneFn]] = {}
        self._release_acks: dict[int, deque[DoneFn]] = {}
        self._draining = False

    # ------------------------------------------------------------------
    # processor-facing API
    # ------------------------------------------------------------------

    def read(self, addr: int, on_done: DoneFn) -> None:
        """Demand read; ``on_done`` fires when the data is bound."""
        block = self._amap.block_of(addr)
        if self.flc.lookup(block):
            self._sim.after(self._timing.flc_hit, on_done)
            return
        if self._flwb_forwards(addr):
            # store-to-load forwarding: the word sits in the FLWB
            self.stats.flwb_forwards += 1
            self._sim.after(self._timing.flc_hit, on_done)
            return
        t1 = self._slc_res.finish_time(
            self._sim.now + self._timing.flc_hit, self._timing.slc_access
        )
        self._sim.at(t1, self._slc_read, block, on_done, self._sim.now)

    def _flwb_forwards(self, addr: int) -> bool:
        """True if a buffered write to the same word can satisfy a read."""
        return self.flwb.contains_write_to(addr)

    def can_buffer_write(self) -> bool:
        """True when the FLWB can accept a write without stalling."""
        return not self.flwb.full

    def buffer_write(self, addr: int) -> None:
        """RC write path: enqueue in the FLWB and keep going."""
        self.flwb.push(FlwbEntry(addr=addr, issue_time=self._sim.now))
        self._pump_drain()

    def when_write_space(self, cb: Callable[[], None]) -> None:
        """Call ``cb`` when the FLWB has room again (processor stall)."""
        self._flwb_space_waiters.append(cb)

    def write_blocking(self, addr: int, on_done: DoneFn) -> None:
        """SC write path: ``on_done`` when globally performed."""
        t1 = self._slc_res.finish_time(self._sim.now, self._timing.slc_access)
        self._sim.at(t1, self._write_blocking_at_slc, addr, on_done)

    def acquire(self, addr: int, on_done: DoneFn) -> None:
        """Acquire a lock; ``on_done`` on LOCK_GRANT."""
        block = self._amap.block_of(addr)
        self._lock_waiters.setdefault(block, deque()).append(on_done)
        self._send_msg(MsgType.LOCK_REQ, block)

    def release(self, addr: int, on_performed: DoneFn | None = None) -> None:
        """Release a lock after all earlier writes have performed.

        Under RC the processor continues immediately; pass
        ``on_performed`` (SC) to learn when the release completes.
        """
        block = self._amap.block_of(addr)
        marker = _SyncMarker(kind="release", target=block, on_done=on_performed)
        self.flwb.push(FlwbEntry(addr=-1, issue_time=self._sim.now, marker=marker))
        self._pump_drain()

    def barrier(self, bar_id: int, expected: int, on_done: DoneFn) -> None:
        """Arrive at a barrier once earlier writes performed; wait wake."""
        marker = _SyncMarker(
            kind="barrier", target=bar_id, expected=expected, on_done=on_done
        )
        self.flwb.push(FlwbEntry(addr=-1, issue_time=self._sim.now, marker=marker))
        self._pump_drain()

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------

    def _slc_read(self, block: int, on_done: DoneFn, t0: int) -> None:
        line = self.slc.lookup(block)
        if line is not None:
            self._on_local_read_hit(line)
            self.flc.fill(block)
            self._sim.after(self._timing.flc_fill, on_done)
            return
        if self.wcache is not None and self.wcache.lookup(block) is not None:
            # read hit in the write cache (§3.3)
            self._sim.after(self._timing.flc_fill, on_done)
            return
        pr = self._pending_reads.get(block)
        if pr is not None:
            if pr.is_prefetch and not pr.merged_prefetch:
                pr.merged_prefetch = True
                self.stats.late_prefetch_hits += 1
                if self.prefetcher is not None:
                    self.prefetcher.on_useful_prefetch()
            pr.demand_waiters.append(on_done)
            return
        pw = self._pending_writes.get(block)
        if pw is not None:
            pw.read_waiters.append(on_done)
            return
        if self._flush_in_flight(block):
            # wait for the write-cache flush to settle: its WC_ACK may
            # grant (or force relinquishing) exclusivity, which must be
            # ordered before a new read request to the home.
            self._flush_read_waiters.setdefault(block, []).append((on_done, t0))
            return
        self._demand_miss(block, on_done, t0)

    def _flush_in_flight(self, block: int) -> bool:
        if block in self._pending_flushes:
            return True
        return any(entry.block == block for entry, _m in self._flush_queue)

    def _on_local_read_hit(self, line: CacheLine) -> None:
        if line.prefetched:
            line.prefetched = False
            self.stats.useful_prefetches += 1
            if self.prefetcher is not None:
                self.prefetcher.on_useful_prefetch()
        if self._comp is not None:
            self._comp.on_local_access(line)

    def _demand_miss(self, block: int, on_done: DoneFn, t0: int) -> None:
        kind = self.classifier.classify(block)
        self.stats.demand_read_misses += 1
        if kind == MissClassifier.COLD:
            self.stats.cold_misses += 1
        elif kind == MissClassifier.COHERENCE:
            self.stats.coherence_misses += 1
        else:
            self.stats.replacement_misses += 1
        if self.prefetcher is not None:
            self.prefetcher.on_demand_miss(
                predecessor_cached=self.slc.lookup(block - 1) is not None
            )

        def issue() -> None:
            # the state may have moved while we waited for SLWB room
            if self.slc.lookup(block) is not None:
                self._sim.after(0, on_done)
                return
            pr = self._pending_reads.get(block)
            if pr is not None:
                pr.demand_waiters.append(on_done)
                return
            pw = self._pending_writes.get(block)
            if pw is not None:
                pw.read_waiters.append(on_done)
                return
            if self._flush_in_flight(block):
                self._flush_read_waiters.setdefault(block, []).append(
                    (on_done, t0)
                )
                return
            eid = self.slwb.alloc(SlwbKind.READ)
            entry = _PendingRead(
                block=block, slwb_id=eid, is_prefetch=False,
                start=t0, demand_waiters=[on_done],
            )
            self._pending_reads[block] = entry
            self._send_msg(MsgType.RD_REQ, block)
            self._maybe_prefetch(block)

        self._when_slwb_room(issue)

    def _maybe_prefetch(self, miss_block: int) -> None:
        if self.prefetcher is None or not self.prefetcher.enabled:
            return
        for cand in self.prefetcher.candidates(miss_block):
            if self.slc.lookup(cand) is not None:
                continue
            if cand in self._pending_reads or cand in self._pending_writes:
                continue
            if not self.slwb.has_room():
                break  # prefetches are hints: drop under pressure
            eid = self.slwb.alloc(SlwbKind.PREFETCH)
            self._pending_reads[cand] = _PendingRead(
                block=cand, slwb_id=eid, is_prefetch=True, start=self._sim.now
            )
            self._send_msg(MsgType.RD_REQ, cand, prefetch=True)
            self.prefetcher.on_prefetch_issued()
            self.stats.prefetches_issued += 1

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------

    def _pump_drain(self) -> None:
        if self._draining or self.flwb.empty:
            return
        self._draining = True
        t1 = self._slc_res.finish_time(self._sim.now, self._timing.slc_access)
        self._sim.at(t1, self._drain_head)

    def _drain_head(self) -> None:
        if self.flwb.empty:
            self._draining = False
            return
        head = self.flwb.peek()
        if head.marker is not None:
            self.flwb.pop()
            self._arm_marker(head.marker)
            self._continue_drain()
            return
        if self._apply_write(head.addr):
            self.flwb.pop()
            self._notify_flwb_space()
            self._continue_drain()
        else:
            # SLWB full: retry when an entry retires
            self._when_slwb_room(self._drain_head)

    def _continue_drain(self) -> None:
        if self.flwb.empty:
            self._draining = False
            return
        t1 = self._slc_res.finish_time(self._sim.now, self._timing.slc_access)
        self._sim.at(t1, self._drain_head)

    def _notify_flwb_space(self) -> None:
        while self._flwb_space_waiters and not self.flwb.full:
            self._flwb_space_waiters.popleft()()

    def _apply_write(self, addr: int) -> bool:
        """Perform one write at the SLC; False = wait for SLWB room."""
        block = self._amap.block_of(addr)
        word = self._amap.word_of(addr)
        line = self.slc.lookup(block)
        if line is not None and line.state is CacheState.DIRTY:
            line.modified_since_update = True
            return True
        if line is not None and line.state is CacheState.MIG_CLEAN:
            line.state = CacheState.DIRTY
            line.modified_since_update = True
            return True
        if self._cw:
            if self.wcache is not None:
                self._write_into_write_cache(block, word, line)
                return True
            # ref [10]'s protocol: no write cache, every write to a
            # shared/invalid block propagates as a single-word update
            if not self.slwb.has_room():
                return False
            self._touch_cw_line(line)
            self._issue_flush(
                WriteCacheEntry(
                    block=block, dirty_words={word},
                    had_copy=line is not None,
                ),
                markers=[],
            )
            return True
        # BASIC / M: write-invalidate ownership path
        if block in self._pending_writes:
            return True  # covered by the in-flight ownership request
        if not self.slwb.has_room():
            return False
        self._issue_ownership(block, line, sc_waiter=None)
        return True

    def _issue_ownership(
        self, block: int, line: CacheLine | None, sc_waiter: DoneFn | None
    ) -> None:
        eid = self.slwb.alloc(SlwbKind.OWNERSHIP)
        self.stats.ownership_requests += 1
        self._pending_writes[block] = _PendingWrite(
            block=block, slwb_id=eid, start=self._sim.now, sc_waiter=sc_waiter
        )
        if line is not None or block in self._pending_reads:
            self._send_msg(MsgType.OWN_REQ, block)
        else:
            self._send_msg(MsgType.RDX_REQ, block)

    def _touch_cw_line(self, line: CacheLine | None) -> None:
        if line is not None and self._comp is not None:
            self._comp.on_local_access(line, modifying=True)

    def _write_into_write_cache(
        self, block: int, word: int, line: CacheLine | None
    ) -> None:
        assert self.wcache is not None
        self._touch_cw_line(line)
        victim = self.wcache.write(block, word, had_copy=line is not None)
        if victim is not None:
            self._queue_flush(victim, markers=[])

    def _write_blocking_at_slc(self, addr: int, on_done: DoneFn) -> None:
        """SC write: stall until ownership is granted."""
        block = self._amap.block_of(addr)
        line = self.slc.lookup(block)
        if line is not None and line.state is CacheState.DIRTY:
            on_done()
            return
        if line is not None and line.state is CacheState.MIG_CLEAN:
            line.state = CacheState.DIRTY
            line.modified_since_update = True
            on_done()
            return
        pw = self._pending_writes.get(block)
        if pw is not None:
            # merge with an earlier pending write to the same block
            if pw.sc_waiter is None:
                pw.sc_waiter = on_done
            else:
                pw.read_waiters.append(on_done)
            return

        def issue() -> None:
            ln = self.slc.lookup(block)
            if ln is not None and ln.state is CacheState.DIRTY:
                self._sim.after(0, on_done)
                return
            if ln is not None and ln.state is CacheState.MIG_CLEAN:
                ln.state = CacheState.DIRTY
                ln.modified_since_update = True
                self._sim.after(0, on_done)
                return
            merged = self._pending_writes.get(block)
            if merged is not None:
                merged.read_waiters.append(on_done)
                return
            self._issue_ownership(block, ln, sc_waiter=on_done)

        self._when_slwb_room(issue)

    # ------------------------------------------------------------------
    # write-cache flushes
    # ------------------------------------------------------------------

    def _queue_flush(
        self, entry: WriteCacheEntry, markers: list[_SyncMarker]
    ) -> None:
        if self.slwb.has_room():
            self._issue_flush(entry, markers)
        else:
            self._flush_queue.append((entry, markers))
            self._when_slwb_room(self._drain_flush_queue)

    def _drain_flush_queue(self) -> None:
        while self._flush_queue and self.slwb.has_room():
            entry, markers = self._flush_queue.popleft()
            self._issue_flush(entry, markers)

    def _issue_flush(
        self, entry: WriteCacheEntry, markers: list[_SyncMarker]
    ) -> None:
        eid = self.slwb.alloc(SlwbKind.WC_FLUSH)
        self.stats.write_cache_flushes += 1
        self._pending_flushes.setdefault(entry.block, deque()).append(eid)
        if markers:
            self._eid_markers.setdefault(eid, []).extend(markers)
        self._send_msg(MsgType.WC_FLUSH, entry.block, words=len(entry.dirty_words))

    # ------------------------------------------------------------------
    # synchronization markers
    # ------------------------------------------------------------------

    def _arm_marker(self, marker: _SyncMarker) -> None:
        """Register everything the sync point must wait for."""
        waiting_eids: list[int] = []
        for pw in self._pending_writes.values():
            waiting_eids.append(pw.slwb_id)
        for fifo in self._pending_flushes.values():
            waiting_eids.extend(fifo)
        if self.wcache is not None:
            for entry in self.wcache.drain():
                self._queue_flush(entry, markers=[marker])
                marker.outstanding += 1
        for _entry, markers in self._flush_queue:
            if marker not in markers:
                markers.append(marker)
                marker.outstanding += 1
        for eid in waiting_eids:
            self._eid_markers.setdefault(eid, []).append(marker)
            marker.outstanding += 1
        if marker.outstanding == 0:
            self._fire_marker(marker)

    def _fire_marker(self, marker: _SyncMarker) -> None:
        if marker.kind == "release":
            if marker.on_done is not None:
                self._release_acks.setdefault(marker.target, deque()).append(
                    marker.on_done
                )
            self._send_msg(MsgType.LOCK_REL, marker.target)
        else:
            self._barrier_waiters[marker.target] = marker.on_done or (lambda: None)
            self._send_barrier_arrive(marker.target, marker.expected)

    def _marker_progress(self, eid: int) -> None:
        for marker in self._eid_markers.pop(eid, []):
            marker.outstanding -= 1
            if marker.outstanding == 0:
                self._fire_marker(marker)

    # ------------------------------------------------------------------
    # message send helpers
    # ------------------------------------------------------------------

    def _home_of(self, block: int) -> int:
        if self._placement is None:
            return self._amap.home_of_block(block)
        page = self._amap.page_of(self._amap.block_base(block))
        return self._placement.home_of_page(page, toucher=self.node_id)

    def _send_msg(self, mtype: MsgType, block: int, **kw) -> None:
        dst = self._home_of(block)
        self._send(
            Message(mtype, src=self.node_id, dst=dst, block=block, **kw),
            self._sim.now,
        )

    def _send_barrier_arrive(self, bar_id: int, expected: int) -> None:
        dst = bar_id % self._cfg.n_procs
        self._send(
            Message(
                MsgType.BAR_ARRIVE, src=self.node_id, dst=dst,
                block=bar_id, tag=expected,
            ),
            self._sim.now,
        )

    # ------------------------------------------------------------------
    # fills and evictions
    # ------------------------------------------------------------------

    def _fill(self, block: int, state: CacheState) -> CacheLine:
        line, victim = self.slc.insert(block, state)
        self.classifier.on_fill(block)
        if self._comp is not None:
            self._comp.on_fill(line)
        if victim is not None:
            self._evict(victim)
        return line

    def _evict(self, victim: CacheLine) -> None:
        self.classifier.on_eviction(victim.block)
        self.flc.invalidate(victim.block)  # inclusion
        if victim.state in (CacheState.DIRTY, CacheState.MIG_CLEAN):
            self.stats.writebacks += 1
            self._victims[victim.block] = victim.state is CacheState.DIRTY
            self._send_msg(MsgType.WB, victim.block)
        else:
            self._send_msg(MsgType.REPL, victim.block)

    # ------------------------------------------------------------------
    # network delivery
    # ------------------------------------------------------------------

    def deliver(self, msg: Message, t: int) -> None:
        """Handle a cache-bound message arriving at time ``t``."""
        handler = {
            MsgType.RD_RPL: self._on_rd_rpl,
            MsgType.RDX_RPL: self._on_write_reply,
            MsgType.OWN_ACK: self._on_write_reply,
            MsgType.INV: self._on_inv,
            MsgType.FETCH: self._on_fetch,
            MsgType.FETCH_INV: self._on_fetch,
            MsgType.UPD_PROP: self._on_update,
            MsgType.MIG_QUERY: self._on_mig_query,
            MsgType.WC_ACK: self._on_wc_ack,
            MsgType.WB_ACK: self._on_wb_ack,
            MsgType.LOCK_GRANT: self._on_lock_grant,
            MsgType.LOCK_REL_ACK: self._on_lock_rel_ack,
            MsgType.BAR_WAKE: self._on_bar_wake,
        }.get(msg.mtype)
        if handler is None:
            raise SimulationError(
                f"cache {self.node_id}: unexpected {msg.mtype}"
            )
        handler(msg, t)

    def _on_rd_rpl(self, msg: Message, t: int) -> None:
        block = msg.block
        pr = self._pending_reads.pop(block, None)
        if pr is None:
            raise SimulationError(f"stray RD_RPL for block {block}")
        t1 = self._slc_res.finish_time(t, self._timing.slc_access)
        state = CacheState.MIG_CLEAN if msg.grant == "MC" else CacheState.SHARED
        demand = bool(pr.demand_waiters) or pr.merged_prefetch
        if pr.invalidated and state is not CacheState.MIG_CLEAN:
            # An invalidation raced the (shared) data: bind the value
            # to the waiting read but keep no line.  Whether the INV
            # was serialized before or after our read, ending up
            # line-less is safe -- the directory at worst
            # overestimates our copy.  An exclusive (MC) grant can
            # never be trailed by an INV (owners receive fetches, not
            # invalidations), so any recorded INV predates the grant
            # and is ignored.
            self.classifier.on_fill(block)
            self.classifier.on_coherence_loss(block)
        else:
            line = self._fill(block, state)
            line.prefetched = pr.is_prefetch and not demand
        if pr.demand_waiters:
            done = t1 + self._timing.flc_fill
            if not pr.invalidated:
                self.flc.fill(block)
            self.stats.read_miss_latency_total += done - pr.start
            self.stats.read_miss_latency_count += 1
            for cb in pr.demand_waiters:
                self._sim.at(done, cb)
        self._release_slwb(pr.slwb_id)
        for deferred in pr.deferred:
            self._sim.at(t1, self.deliver, deferred, t1)

    def _on_write_reply(self, msg: Message, t: int) -> None:
        block = msg.block
        pw = self._pending_writes.pop(block, None)
        if pw is None:
            raise SimulationError(f"stray {msg.mtype} for block {block}")
        t1 = self._slc_res.finish_time(t, self._timing.slc_access)
        line = self.slc.lookup(block)
        if line is None:
            line = self._fill(block, CacheState.DIRTY)
        else:
            line.state = CacheState.DIRTY
        line.modified_since_update = True
        line.prefetched = False
        if pw.read_waiters:
            self.flc.fill(block)
            for cb in pw.read_waiters:
                self._sim.at(t1 + self._timing.flc_fill, cb)
        if pw.sc_waiter is not None:
            self._sim.at(t1, pw.sc_waiter)
        self._release_slwb(pw.slwb_id)
        for deferred in pw.deferred:
            self._sim.at(t1, self.deliver, deferred, t1)

    def _on_inv(self, msg: Message, t: int) -> None:
        block = msg.block
        self.stats.invalidations_received += 1
        words = 0
        if self.wcache is not None:
            entry = self.wcache.remove(block)
            if entry is not None:
                words = len(entry.dirty_words)
        line = self.slc.invalidate(block)
        if line is not None:
            self.classifier.on_coherence_loss(block)
            self.flc.invalidate(block)
        pr = self._pending_reads.get(block)
        if pr is not None:
            pr.invalidated = True
        t1 = self._slc_res.finish_time(t, self._timing.slc_access)
        self._send(
            Message(
                MsgType.INV_ACK, src=self.node_id, dst=msg.src,
                block=block, words=words,
            ),
            t1,
        )

    def _on_fetch(self, msg: Message, t: int) -> None:
        block = msg.block
        # Defer the fetch only when the data is genuinely still in
        # flight (no valid line, no victim-buffer copy).  A valid line
        # must answer immediately even with an ownership upgrade
        # pending, because that upgrade may be queued at the home
        # *behind* this very fetch.  A block in the victim buffer
        # always means the fetch targets the old, evicted copy (home
        # processed our WB before granting anything newer, and
        # per-pair FIFO would have delivered the WB_ACK first).
        line = self.slc.lookup(block)
        if line is None and block not in self._victims:
            pr = self._pending_reads.get(block)
            if pr is not None:
                pr.deferred.append(msg)
                return
            pw = self._pending_writes.get(block)
            if pw is not None:
                pw.deferred.append(msg)
                return
        t1 = self._slc_res.finish_time(t, self._timing.slc_access)
        if line is not None and block not in self._victims:
            was_modified = line.state is CacheState.DIRTY
            dropped = False
            if msg.mtype is MsgType.FETCH_INV:
                self.slc.invalidate(block)
                self.flc.invalidate(block)
                self.classifier.on_coherence_loss(block)
                dropped = True
            else:
                line.state = CacheState.SHARED
                line.modified_since_update = False
        elif block in self._victims:
            was_modified = self._victims[block]
            dropped = True
        else:
            raise SimulationError(
                f"cache {self.node_id}: FETCH for absent block {block}"
            )
        if msg.requester >= 0:
            reply = (
                MsgType.RDX_RPL if msg.grant == "X" else MsgType.RD_RPL
            )
            self._send(
                Message(
                    reply, src=self.node_id, dst=msg.requester,
                    block=block, grant=msg.grant,
                ),
                t1,
            )
        self._send(
            Message(
                MsgType.XFER_ACK, src=self.node_id, dst=msg.src, block=block,
                was_modified=was_modified, drop=dropped,
            ),
            t1,
        )

    def _on_update(self, msg: Message, t: int) -> None:
        block = msg.block
        self.stats.updates_received += 1
        t1 = self._slc_res.finish_time(t, self._timing.slc_access)
        line = self.slc.lookup(block)
        if line is None:
            drop = block not in self._pending_reads
        else:
            assert self._comp is not None
            drop = self._comp.on_update(line)
            # force the next local read through to the SLC so local
            # activity remains visible to the competitive counter
            self.flc.invalidate(block)
            if drop:
                self.slc.invalidate(block)
                self.classifier.on_coherence_loss(block)
                self.stats.updates_dropped += 1
        self._send(
            Message(
                MsgType.UPD_ACK, src=self.node_id, dst=msg.src,
                block=block, drop=drop,
            ),
            t1,
        )

    def _on_mig_query(self, msg: Message, t: int) -> None:
        block = msg.block
        t1 = self._slc_res.finish_time(t, self._timing.slc_access)
        line = self.slc.lookup(block)
        words = 0
        if line is None and block in self._pending_reads:
            # a fresh copy is already on its way to us: we are a
            # reader, not a modifier -- keep the (incoming) copy
            give_up = False
        elif line is None:
            give_up = True
        elif line.modified_since_update or (
            self.wcache is not None and self.wcache.lookup(block) is not None
        ):
            # modified since the last update from home: give up (§3.4)
            give_up = True
            if self.wcache is not None:
                entry = self.wcache.remove(block)
                if entry is not None:
                    words = len(entry.dirty_words)
            self.slc.invalidate(block)
            self.flc.invalidate(block)
            self.classifier.on_coherence_loss(block)
        else:
            give_up = False
        self._send(
            Message(
                MsgType.MIG_RPL, src=self.node_id, dst=msg.src,
                block=block, give_up=give_up, words=words,
            ),
            t1,
        )

    def _on_wc_ack(self, msg: Message, t: int) -> None:
        block = msg.block
        fifo = self._pending_flushes.get(block)
        if not fifo:
            raise SimulationError(f"stray WC_ACK for block {block}")
        eid = fifo.popleft()
        if not fifo:
            del self._pending_flushes[block]
        if msg.exclusive:
            line = self.slc.lookup(block)
            if line is not None:
                line.state = CacheState.DIRTY
                line.modified_since_update = True
            else:
                # the SLC copy was victimized while the flush was in
                # flight: relinquish the surprise ownership right away
                self._victims[block] = False
                self._send_msg(MsgType.WB, block)
        self._release_slwb(eid)
        if not self._flush_in_flight(block):
            for cb, t0 in self._flush_read_waiters.pop(block, []):
                self._slc_read(block, cb, t0)

    def _on_wb_ack(self, msg: Message, t: int) -> None:
        self._victims.pop(msg.block, None)

    def _on_lock_grant(self, msg: Message, t: int) -> None:
        waiters = self._lock_waiters.get(msg.block)
        if not waiters:
            raise SimulationError(f"stray LOCK_GRANT for {msg.block}")
        waiters.popleft()()
        if not waiters:
            del self._lock_waiters[msg.block]

    def _on_lock_rel_ack(self, msg: Message, t: int) -> None:
        acks = self._release_acks.get(msg.block)
        if acks:
            acks.popleft()()
            if not acks:
                del self._release_acks[msg.block]

    def _on_bar_wake(self, msg: Message, t: int) -> None:
        cb = self._barrier_waiters.pop(msg.block, None)
        if cb is None:
            raise SimulationError(f"stray BAR_WAKE for barrier {msg.block}")
        cb()

    # ------------------------------------------------------------------
    # SLWB bookkeeping
    # ------------------------------------------------------------------

    def _when_slwb_room(self, cb: Callable[[], None]) -> None:
        if self.slwb.has_room():
            cb()
        else:
            self._slwb_waiters.append(cb)

    def _release_slwb(self, eid: int) -> None:
        self.slwb.release(eid)
        self._marker_progress(eid)
        while self._slwb_waiters and self.slwb.has_room():
            self._slwb_waiters.popleft()()

    # ------------------------------------------------------------------
    # introspection (tests, invariants)
    # ------------------------------------------------------------------

    @property
    def outstanding_requests(self) -> int:
        """Pending reads + writes + flushes (for quiescence checks)."""
        return (
            len(self._pending_reads)
            + len(self._pending_writes)
            + sum(len(f) for f in self._pending_flushes.values())
            + len(self._flush_queue)
        )
