"""Adaptive sequential prefetching (paper §3.1, ref [3]).

On an SLC read miss to block *b*, the *K* consecutive blocks b+1..b+K
are looked up in the cache and a non-binding prefetch is issued for
each absent, non-pending one.  *K* (the degree of prefetching) adapts
to the measured usefulness of past prefetches:

* a **prefetch counter** counts issued prefetches modulo 16,
* a **useful counter** counts prefetched blocks later referenced by the
  processor (each counted once, via the per-line prefetched bit),
* every 16 issued prefetches the useful fraction is compared with the
  high/low marks: above the high mark K doubles (up to a maximum),
  below the low mark K halves (possibly down to zero, turning
  prefetching off),
* a third counter measures sequentiality while K == 0 -- misses to
  block *b* whose predecessor b-1 is cached would have been prefetch
  hits; enough of them turn prefetching back on.

This is the "three modulo-16 counters per cache and two extra bits per
cache line" budget of Table 1.
"""

from __future__ import annotations

from repro.config import PrefetchConfig


class AdaptivePrefetcher:
    """Per-cache adaptive sequential prefetch engine."""

    def __init__(self, cfg: PrefetchConfig) -> None:
        self._cfg = cfg
        self.degree = cfg.initial_degree
        self._issued_in_window = 0   # prefetch counter (mod window)
        self._useful_in_window = 0   # useful counter
        self._seq_in_window = 0      # re-enable counter (used when K == 0)
        self._misses_in_window = 0
        self.degree_increases = 0
        self.degree_decreases = 0

    @property
    def enabled(self) -> bool:
        """False when adaptation turned prefetching off (K == 0)."""
        return self.degree > 0

    def candidates(self, block: int) -> list[int]:
        """Blocks to consider prefetching after a demand miss on ``block``."""
        return [block + i for i in range(1, self.degree + 1)]

    def on_prefetch_issued(self) -> None:
        """A prefetch request left for the memory system."""
        if not self._cfg.adaptive:
            return  # fixed sequential prefetching: K never changes
        self._issued_in_window += 1
        if self._issued_in_window >= self._cfg.window:
            self._adapt()

    def on_useful_prefetch(self) -> None:
        """A prefetched block was referenced for the first time."""
        if self._useful_in_window < self._cfg.window:
            self._useful_in_window += 1

    def on_demand_miss(self, predecessor_cached: bool) -> None:
        """Track sequentiality so K can be turned back on from zero."""
        if self.degree > 0 or not self._cfg.adaptive:
            return
        self._misses_in_window += 1
        if predecessor_cached:
            self._seq_in_window += 1
        if self._misses_in_window >= self._cfg.window:
            fraction = self._seq_in_window / self._cfg.window
            if fraction >= self._cfg.high_mark:
                self.degree = 1
                self.degree_increases += 1
            self._misses_in_window = 0
            self._seq_in_window = 0

    def _adapt(self) -> None:
        fraction = self._useful_in_window / self._cfg.window
        if fraction >= self._cfg.high_mark:
            new_degree = min(max(self.degree * 2, 1), self._cfg.max_degree)
            if new_degree > self.degree:
                self.degree_increases += 1
            self.degree = new_degree
        elif fraction <= self._cfg.low_mark:
            new_degree = self.degree // 2
            if new_degree < self.degree:
                self.degree_decreases += 1
            self.degree = new_degree
        self._issued_in_window = 0
        self._useful_in_window = 0
