"""Hardware-cost model (paper Table 1).

Computes the storage and mechanism inventory of BASIC and of each
extension: state bits per SLC line, extra per-cache mechanisms, SLWB
requirements, and directory bits per memory line.  The numbers are
derived from the same configuration objects that drive the simulator,
so the cost table stays consistent with what is actually modelled.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.config import (
    Consistency,
    DirectoryConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.core.directory import make_directory_org


@dataclass(frozen=True)
class HardwareCost:
    """Per-protocol hardware budget, mirroring Table 1's rows."""

    protocol: str
    slc_state_bits_per_line: int
    extra_cache_mechanisms: tuple[str, ...]
    slwb_entries: int
    slwb_entry_holds_block: bool
    memory_state_bits_per_line: int

    def total_cache_line_bits(self) -> int:
        """State bits per SLC line including extension bits."""
        return self.slc_state_bits_per_line


def _cache_line_bits(proto: ProtocolConfig) -> int:
    bits = 2  # BASIC: 3 stable states -> 2 bits
    if proto.prefetch:
        bits += 2  # prefetched + counted-useful (Table 1: "2 bits")
    if proto.migratory:
        bits += 1  # the extra MIG_CLEAN state
    if proto.competitive_update:
        bits += max(1, math.ceil(math.log2(proto.competitive_params.threshold + 1)))
        bits += 1  # accessed-since-update
        if proto.migratory:
            bits += 1  # modified-since-update (§3.4)
    return bits


def _memory_line_bits(
    proto: ProtocolConfig, n_nodes: int, directory: DirectoryConfig | None = None
) -> int:
    # full map: 3 state bits + N presence bits; other organizations
    # price themselves (see repro.core.directory).  M adds 1 migratory
    # bit + a ceil(log2 N) last-writer pointer in every organization.
    org = make_directory_org(directory, n_nodes)
    return org.bits_per_block(migratory=proto.migratory)


def _mechanisms(proto: ProtocolConfig) -> tuple[str, ...]:
    out: list[str] = []
    if proto.prefetch:
        out.append("3 modulo-16 prefetch counters per cache")
    if proto.competitive_update and proto.competitive_params.use_write_cache:
        out.append("write cache with four blocks (per-word dirty bits)")
    return tuple(out)


def hardware_cost(cfg: SystemConfig) -> HardwareCost:
    """The hardware budget of ``cfg``'s protocol on ``cfg``'s machine."""
    proto = cfg.protocol
    return HardwareCost(
        protocol=proto.name,
        slc_state_bits_per_line=_cache_line_bits(proto),
        extra_cache_mechanisms=_mechanisms(proto),
        slwb_entries=cfg.effective_slwb_entries,
        slwb_entry_holds_block=proto.competitive_update,
        memory_state_bits_per_line=_memory_line_bits(
            proto, cfg.n_procs, cfg.directory
        ),
    )


def directory_overhead_fraction(cfg: SystemConfig) -> float:
    """Directory bits as a fraction of a memory block's data bits."""
    bits = _memory_line_bits(cfg.protocol, cfg.n_procs, cfg.directory)
    return bits / (cfg.cache.block_size * 8)


def cost_table(n_procs: int = 16, consistency: Consistency = Consistency.RC) -> list[HardwareCost]:
    """Table 1: the cost of BASIC, P, M and CW side by side."""
    rows = []
    for name in ("BASIC", "P", "M", "CW"):
        if consistency is Consistency.SC and name == "CW":
            continue
        cfg = SystemConfig(n_procs=n_procs, consistency=consistency).with_protocol(name)
        rows.append(hardware_cost(cfg))
    return rows
