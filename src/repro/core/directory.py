"""Directory state and pluggable directory organizations (paper §2).

The paper's machine keeps a **full-map** directory: a presence-flag
vector per memory block points to the nodes with a copy.  BASIC needs
N presence bits plus 3 state bits per block (Table 1); the migratory
optimization adds one migratory bit and a log2(N)-bit pointer.  That
linear-in-N cost is what stops a full map at production scale, so the
directory's *presence representation* is pluggable behind
:class:`DirectoryOrg`:

* :class:`FullMapOrg` -- exact presence bits (the paper's machine);
* :class:`LimitedPointerOrg` -- Dir_i-B: ``i`` exact node pointers,
  and once they overflow the entry degrades to a broadcast bit that
  stands for "any node may hold a copy" until the next invalidation
  round restores exact knowledge;
* :class:`CoarseVectorOrg` -- one presence bit per ``region_size``
  consecutive nodes, so each bit over-approximates its whole region.

The protocol machinery never sees the representation directly: every
entry's ``sharers`` is a set-like *believed-holder* view whose mutation
semantics encode what the hardware can actually record.  Inexact
organizations therefore keep the set a **superset** of the true
holders -- invalidations, updates and interrogations fan out to the
believed set, and nodes without a copy simply ack -- which is the
honest performance cost of shrinking the directory.

Entries are created lazily: a block never referenced is CLEAN with no
sharers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable

from repro.config import DirectoryConfig
from repro.core.states import MemoryState

# ----------------------------------------------------------------------
# believed-sharer sets
# ----------------------------------------------------------------------


class _LimitedSharers(set):
    """Dir_i-B presence view: ``i`` exact pointers, then broadcast.

    While at most ``pointers`` nodes are recorded, behaves exactly like
    a full map.  The overflowing ``add`` flips the broadcast bit and
    materializes *every* node into the believed set; from then on
    individual removals (replacement hints, update drops) are no-ops --
    the hardware has no pointer left to clear -- until an operation
    that restores exact knowledge (``clear`` or a completed
    invalidation round's ``&=``) resets the pointers.
    """

    __slots__ = ("_org", "overflowed")

    def __init__(self, org: "LimitedPointerOrg") -> None:
        super().__init__()
        self._org = org
        self.overflowed = False

    def add(self, node: int) -> None:
        if self.overflowed:
            return
        set.add(self, node)
        if len(self) > self._org.pointers:
            self.overflowed = True
            self._org.overflows += 1
            set.update(self, range(self._org.n_nodes))

    def discard(self, node: int) -> None:
        if not self.overflowed:
            set.discard(self, node)

    def __isub__(self, other):
        if not self.overflowed:
            set.__isub__(self, other)
        return self

    def __iand__(self, other):
        # the caller has interrogated/invalidated every believed holder
        # and knows exactly who kept a copy: back to exact pointers.
        set.__iand__(self, other)
        self.overflowed = False
        return self

    def clear(self) -> None:
        set.clear(self)
        self.overflowed = False


class _CoarseSharers(set):
    """Coarse-vector presence view: one bit per ``region_size`` nodes.

    Setting any node's bit materializes its whole region into the
    believed set.  A single node cannot be cleared from a multi-node
    region (the bit does not say which members hold copies), so
    replacement hints and update drops are no-ops unless the region is
    a single node -- with ``region_size == 1`` the coarse vector *is*
    a full map and behaves identically.
    """

    __slots__ = ("_org",)

    def __init__(self, org: "CoarseVectorOrg") -> None:
        super().__init__()
        self._org = org

    def add(self, node: int) -> None:
        k = self._org.region_size
        if k == 1:
            set.add(self, node)
            return
        lo = (node // k) * k
        set.update(self, range(lo, min(lo + k, self._org.n_nodes)))

    def discard(self, node: int) -> None:
        if self._org.region_size == 1:
            set.discard(self, node)

    def __isub__(self, other):
        if self._org.region_size == 1:
            set.__isub__(self, other)
        return self

    def __iand__(self, other):
        # exact knowledge of the survivors -- but the hardware can only
        # re-encode them as region bits, so region-mates of a surviving
        # holder become believed holders again.
        keep = [n for n in other if n in self]
        set.clear(self)
        for n in keep:
            self.add(n)
        return self


# ----------------------------------------------------------------------
# organizations
# ----------------------------------------------------------------------


class DirectoryOrg:
    """Presence-representation policy of one node's directory."""

    #: canonical organization name (matches DirectoryConfig.org).
    kind = "full_map"
    #: True when the believed-sharer set always equals the true set of
    #: copies the directory was told about (no over-approximation).
    exact = True

    def __init__(self, n_nodes: int) -> None:
        self.n_nodes = n_nodes

    def make_sharers(self) -> set:
        """A fresh believed-sharer set for one directory entry."""
        return set()

    def bits_per_block(self, migratory: bool = False) -> int:
        """Directory storage cost in bits per memory block."""
        raise NotImplementedError

    def representable(self, sharers: set) -> bool:
        """True when ``sharers`` is a state this hardware can encode
        (used by the invariant checker)."""
        return True

    @property
    def name(self) -> str:
        """Human-readable name for reports."""
        return self.kind

    def _migratory_bits(self) -> int:
        # Table 1: one migratory bit + a ceil(log2 N)-bit pointer.
        return 1 + math.ceil(math.log2(max(self.n_nodes, 2)))


class FullMapOrg(DirectoryOrg):
    """The paper's full-map presence vector: N bits, always exact."""

    kind = "full_map"
    exact = True

    def bits_per_block(self, migratory: bool = False) -> int:
        bits = 3 + self.n_nodes
        if migratory:
            bits += self._migratory_bits()
        return bits


class LimitedPointerOrg(DirectoryOrg):
    """Dir_i-B: ``pointers`` exact pointers + broadcast fallback."""

    kind = "limited"

    def __init__(self, n_nodes: int, pointers: int = 4) -> None:
        super().__init__(n_nodes)
        self.pointers = pointers
        #: entries that fell back to broadcast (scalability metric).
        self.overflows = 0

    @property
    def exact(self) -> bool:  # type: ignore[override]
        # with at least as many pointers as nodes the fallback can
        # never trigger, and the organization degenerates to a full map
        return self.pointers >= self.n_nodes

    def make_sharers(self) -> set:
        return _LimitedSharers(self)

    def bits_per_block(self, migratory: bool = False) -> int:
        ptr = math.ceil(math.log2(max(self.n_nodes, 2)))
        bits = 3 + 1 + self.pointers * ptr  # +1: the broadcast bit
        if migratory:
            bits += self._migratory_bits()
        return bits

    def representable(self, sharers: set) -> bool:
        if getattr(sharers, "overflowed", False):
            return len(sharers) == self.n_nodes
        return len(sharers) <= self.pointers

    @property
    def name(self) -> str:
        return f"limited:{self.pointers}"


class CoarseVectorOrg(DirectoryOrg):
    """Coarse vector: one presence bit per ``region_size`` nodes."""

    kind = "coarse"

    def __init__(self, n_nodes: int, region_size: int = 4) -> None:
        super().__init__(n_nodes)
        self.region_size = region_size

    @property
    def exact(self) -> bool:  # type: ignore[override]
        return self.region_size == 1

    def make_sharers(self) -> set:
        return _CoarseSharers(self)

    def bits_per_block(self, migratory: bool = False) -> int:
        bits = 3 + math.ceil(self.n_nodes / self.region_size)
        if migratory:
            bits += self._migratory_bits()
        return bits

    def representable(self, sharers: set) -> bool:
        k = self.region_size
        for node in sharers:
            lo = (node // k) * k
            region = range(lo, min(lo + k, self.n_nodes))
            if any(m not in sharers for m in region):
                return False
        return True

    @property
    def name(self) -> str:
        return f"coarse:{self.region_size}"


def make_directory_org(
    cfg: DirectoryConfig | None, n_nodes: int
) -> DirectoryOrg:
    """Build the organization described by ``cfg`` for ``n_nodes``."""
    if cfg is None or cfg.org == "full_map":
        return FullMapOrg(n_nodes)
    if cfg.org == "limited":
        return LimitedPointerOrg(n_nodes, pointers=cfg.pointers)
    if cfg.org == "coarse":
        return CoarseVectorOrg(n_nodes, region_size=cfg.region_size)
    raise ValueError(f"unknown directory organization {cfg.org!r}")


# ----------------------------------------------------------------------
# per-block state
# ----------------------------------------------------------------------


@dataclass
class DirectoryEntry:
    """Stable directory state of one memory block."""

    state: MemoryState = MemoryState.CLEAN
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None
    #: M: the block is currently deemed migratory (§3.2).
    migratory: bool = False
    #: M: pointer to the last node that obtained ownership.
    last_writer: int | None = None
    #: CW+M: last node whose write-cache flush updated this block.
    last_updater: int | None = None

    def holders(self) -> set[int]:
        """Every node the directory believes has a copy."""
        if self.state is MemoryState.MODIFIED:
            return {self.owner} if self.owner is not None else set()
        return set(self.sharers)

    def reset_sharers(self, nodes: Iterable[int] = ()) -> None:
        """Replace the believed set with exact knowledge of ``nodes``.

        ``clear`` is exact for every organization (write a zero
        vector); the re-adds go through the organization's ``add``, so
        an inexact representation may immediately re-over-approximate
        (a coarse bit covers the whole region).
        """
        self.sharers.clear()
        for node in nodes:
            self.sharers.add(node)


class Directory:
    """Lazy directory for the blocks homed at one node."""

    def __init__(self, org: DirectoryOrg | None = None) -> None:
        #: presence-representation policy (full map when not given;
        #: n_nodes=0 only affects storage-cost reporting, never the
        #: believed-set behavior of an exact full map).
        self.org = org if org is not None else FullMapOrg(0)
        self._entries: dict[int, DirectoryEntry] = {}
        self._make_sharers = self.org.make_sharers

    def entry(self, block: int) -> DirectoryEntry:
        """The (lazily created) entry for ``block``."""
        ent = self._entries.get(block)
        if ent is None:
            ent = DirectoryEntry(sharers=self._make_sharers())
            self._entries[block] = ent
        return ent

    def known_blocks(self) -> list[int]:
        """Blocks with directory state (for invariant checks)."""
        return list(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries


def directory_bits_per_block(n_nodes: int, migratory: bool = False) -> int:
    """Full-map directory overhead in bits per memory block (Table 1).

    BASIC: 3 state bits + N presence bits.  M adds 1 migratory bit and
    a ceil(log2 N)-bit pointer.  Other organizations compute their own
    cost via :meth:`DirectoryOrg.bits_per_block`.
    """
    return FullMapOrg(n_nodes).bits_per_block(migratory)
