"""Full-map directory (paper §2).

A presence-flag vector per memory block points to the nodes with a
copy.  BASIC needs N presence bits plus 3 state bits per block; the
migratory optimization adds one migratory bit and a log2(N)-bit
pointer (Table 1).  Entries are created lazily: a block never
referenced is CLEAN with no sharers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.core.states import MemoryState


@dataclass
class DirectoryEntry:
    """Stable directory state of one memory block."""

    state: MemoryState = MemoryState.CLEAN
    sharers: set[int] = field(default_factory=set)
    owner: int | None = None
    #: M: the block is currently deemed migratory (§3.2).
    migratory: bool = False
    #: M: pointer to the last node that obtained ownership.
    last_writer: int | None = None
    #: CW+M: last node whose write-cache flush updated this block.
    last_updater: int | None = None

    def holders(self) -> set[int]:
        """Every node the directory believes has a copy."""
        if self.state is MemoryState.MODIFIED:
            return {self.owner} if self.owner is not None else set()
        return set(self.sharers)


class Directory:
    """Lazy full-map directory for the blocks homed at one node."""

    def __init__(self) -> None:
        self._entries: dict[int, DirectoryEntry] = {}

    def entry(self, block: int) -> DirectoryEntry:
        """The (lazily created) entry for ``block``."""
        ent = self._entries.get(block)
        if ent is None:
            ent = DirectoryEntry()
            self._entries[block] = ent
        return ent

    def known_blocks(self) -> list[int]:
        """Blocks with directory state (for invariant checks)."""
        return list(self._entries)

    def __contains__(self, block: int) -> bool:
        return block in self._entries


def directory_bits_per_block(n_nodes: int, migratory: bool = False) -> int:
    """Directory overhead in bits per memory block (Table 1).

    BASIC: 3 state bits + N presence bits.  M adds 1 migratory bit and
    a ceil(log2 N)-bit pointer.
    """
    bits = 3 + n_nodes
    if migratory:
        bits += 1 + math.ceil(math.log2(max(n_nodes, 2)))
    return bits
