"""The paper's contribution: BASIC directory protocol + extensions.

The base write-invalidate protocol lives in :mod:`~repro.core.cache_ctrl`
(requester side) and :mod:`~repro.core.home` (directory side); the
paper's P / CW / M extensions are composable
:class:`~repro.core.extensions.ProtocolExtension` classes dispatched
through an :class:`~repro.core.extensions.ExtensionPipeline`.
"""

from repro.core.cache_ctrl import CacheController
from repro.core.directory import Directory, DirectoryEntry, directory_bits_per_block
from repro.core.extensions import (
    ExtensionPipeline,
    ProtocolExtension,
    build_pipeline,
    register_extension,
    registered_extensions,
)
from repro.core.home import HomeController
from repro.core.messages import Message, MsgType
from repro.core.prefetch import AdaptivePrefetcher
from repro.core.states import CacheState, MemoryState
from repro.core.transactions import Xact

__all__ = [
    "AdaptivePrefetcher",
    "CacheController",
    "CacheState",
    "Directory",
    "DirectoryEntry",
    "ExtensionPipeline",
    "HomeController",
    "MemoryState",
    "Message",
    "MsgType",
    "ProtocolExtension",
    "Xact",
    "build_pipeline",
    "directory_bits_per_block",
    "register_extension",
    "registered_extensions",
]
