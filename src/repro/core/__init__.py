"""The paper's contribution: BASIC directory protocol + P / M / CW."""

from repro.core.cache_ctrl import CacheController
from repro.core.directory import Directory, DirectoryEntry, directory_bits_per_block
from repro.core.home import HomeController
from repro.core.messages import Message, MsgType
from repro.core.prefetch import AdaptivePrefetcher
from repro.core.states import CacheState, MemoryState

__all__ = [
    "AdaptivePrefetcher",
    "CacheController",
    "CacheState",
    "Directory",
    "DirectoryEntry",
    "HomeController",
    "MemoryState",
    "Message",
    "MsgType",
    "directory_bits_per_block",
]
