"""Coherence-invariant checker.

Validates that a quiescent system (no in-flight transactions) is in a
globally coherent state.  Used by the test suite after every
integration run and by the hypothesis-based protocol fuzzer; it is
also a handy debugging aid for protocol extensions.

Checked invariants:

* **SWMR** -- at most one cache holds a block in an exclusive state
  (DIRTY / MIG_CLEAN), and then no other cache holds it at all;
* **directory-owner agreement** -- a MODIFIED directory entry names
  exactly the cache holding the exclusive copy;
* **directory-sharer conservativeness** -- every cached copy is known
  to the directory.  The believed-sharer set may be a *superset* of
  the true holders: exact full-map directories overestimate briefly
  (an invalidation racing a read reply drops the line after the home
  recorded the reader), and inexact organizations (Dir_i-B broadcast,
  coarse vector -- see :mod:`repro.core.directory`) overestimate by
  construction.  Only *missing* holders are a violation;
* **directory representability** -- the believed-sharer set is a state
  the configured directory hardware can actually encode (e.g. a
  non-overflowed Dir_i entry within its pointer budget, a coarse
  vector covering whole regions);
* **inclusion** -- every block valid in a node's FLC is valid in its
  SLC;
* **quiescence** -- no pending reads/writes/flushes remain in any
  cache controller and no transactions remain at any home.

Two granularities are exposed:

* :func:`check_all` -- the full battery, valid only at quiescence
  (directory agreement assumes no transaction is mid-flight);
* :func:`check_safety` -- the mid-flight-safe subset (SWMR +
  inclusion), which must hold *between any two simulator events*, even
  while transactions are in transit.  The model checker in
  :mod:`repro.verify` calls it after every event it steps through.
"""

from __future__ import annotations

from repro.core.states import CacheState, MemoryState
from repro.system import System


class InvariantViolation(AssertionError):
    """A coherence invariant does not hold."""


def check_quiescent(system: System) -> None:
    """All controllers idle: nothing pending anywhere."""
    for node in system.nodes:
        cache = node.cache
        if cache.outstanding_requests:
            raise InvariantViolation(
                f"node {node.node_id}: {cache.outstanding_requests} "
                "outstanding cache requests at quiescence"
            )
        if len(cache.flwb):
            raise InvariantViolation(
                f"node {node.node_id}: FLWB not drained at quiescence"
            )
        home = node.home
        if home._xacts:
            raise InvariantViolation(
                f"home {node.node_id}: transactions {list(home._xacts)} "
                "still active at quiescence"
            )


def check_inclusion(system: System) -> None:
    """FLC contents are a subset of SLC contents on every node."""
    for node in system.nodes:
        slc_blocks = {ln.block for ln in node.cache.slc.resident_lines()}
        for block in node.cache.flc.resident_blocks():
            if block not in slc_blocks:
                raise InvariantViolation(
                    f"node {node.node_id}: FLC holds block {block} "
                    "absent from the SLC (inclusion violated)"
                )


def _holders(system: System, block: int) -> dict[int, CacheState]:
    holders: dict[int, CacheState] = {}
    for node in system.nodes:
        line = node.cache.slc.lookup(block)
        if line is not None:
            holders[node.node_id] = line.state
    return holders


def _check_swmr_block(block: int, holders: dict[int, CacheState]) -> None:
    exclusive = [
        n for n, st in holders.items()
        if st in (CacheState.DIRTY, CacheState.MIG_CLEAN)
    ]
    if len(exclusive) > 1:
        raise InvariantViolation(
            f"block {block}: multiple exclusive holders {exclusive}"
        )
    if exclusive and len(holders) > 1:
        raise InvariantViolation(
            f"block {block}: exclusive holder {exclusive[0]} "
            f"coexists with copies at {sorted(holders)}"
        )


def check_swmr(system: System) -> None:
    """Single-writer/multiple-readers over every block cached anywhere.

    Unlike :func:`check_coherence` this sweeps the *caches*, not the
    directories, so it needs no directory state and holds at every
    instant of a run -- not just at quiescence.
    """
    holders_by_block: dict[int, dict[int, CacheState]] = {}
    for node in system.nodes:
        for line in node.cache.slc.resident_lines():
            holders_by_block.setdefault(line.block, {})[node.node_id] = (
                line.state
            )
    for block, holders in holders_by_block.items():
        _check_swmr_block(block, holders)


def check_safety(system: System) -> None:
    """The mid-flight-safe invariant subset (SWMR + inclusion).

    Both properties must hold between any two simulator events, even
    while coherence transactions are in flight; the directory-agreement
    and quiescence checks do not, so they stay in :func:`check_all`.
    """
    check_swmr(system)
    check_inclusion(system)


def check_coherence(system: System) -> None:
    """SWMR + directory agreement for every block with directory state,
    plus a reverse sweep: every resident SLC line is known to its home
    directory (a cached block the directory dropped -- or never
    recorded -- is a protocol bug the forward sweep cannot see)."""
    for node in system.nodes:
        cache = node.cache
        for line in cache.slc.resident_lines():
            home = system.nodes[cache._home_of(line.block)].home
            if line.block not in home.directory:
                raise InvariantViolation(
                    f"node {node.node_id}: SLC holds block {line.block} "
                    f"({line.state.value}) unknown to its home directory "
                    f"at node {home.node_id}"
                )
    for node in system.nodes:
        home = node.home
        for block in home.directory.known_blocks():
            entry = home.directory.entry(block)
            holders = _holders(system, block)
            exclusive = [
                n for n, st in holders.items()
                if st in (CacheState.DIRTY, CacheState.MIG_CLEAN)
            ]
            _check_swmr_block(block, holders)
            if entry.state is MemoryState.MODIFIED:
                if not exclusive or exclusive[0] != entry.owner:
                    raise InvariantViolation(
                        f"block {block}: directory says MODIFIED at "
                        f"{entry.owner} but exclusive holders are {exclusive}"
                    )
            else:
                if exclusive:
                    raise InvariantViolation(
                        f"block {block}: directory says CLEAN but node "
                        f"{exclusive[0]} holds it exclusively"
                    )
                unknown = set(holders) - entry.sharers
                if unknown:
                    raise InvariantViolation(
                        f"block {block}: caches {sorted(unknown)} hold "
                        f"copies unknown to the directory {sorted(entry.sharers)}"
                    )
                org = home.directory.org
                if not org.representable(entry.sharers):
                    raise InvariantViolation(
                        f"block {block}: believed sharers "
                        f"{sorted(entry.sharers)} are not representable "
                        f"by the {org.name} directory"
                    )


def check_all(system: System) -> None:
    """Run every invariant check (call after :meth:`System.run`)."""
    check_quiescent(system)
    check_inclusion(system)
    check_coherence(system)
