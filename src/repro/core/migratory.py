"""Migratory-sharing policy (paper §3.2 / §3.4, refs [2, 12]).

Pure decision functions used by the home controller; keeping them here
separates the *policy* (when is a block migratory? when does it stop
being migratory?) from the *mechanism* (transactions, messages) in
:mod:`repro.core.home`.

Detection (write-invalidate side, §3.2): "A block is deemed migratory
if the home node has detected a read/write sequence by one processor
followed by a read/write sequence by another processor."  At the home
this materializes as an *ownership request* (the write half of an RMW)
from a processor holding a shared copy, while exactly one other copy
exists -- belonging to the previous writer.

Detection (competitive-update side, §3.4): the home only sees update
requests, so it uses a heuristic -- an update from a different
processor than the previous one, with more than one copy cached, makes
the block a migratory *candidate*; the home then interrogates every
copy holder, and only if all of them modified the block since the last
update (and therefore give up their copies) is it deemed migratory.

Reversion: the extra MIG_CLEAN cache state lets the home detect that
the pattern stopped -- when a migratory block is fetched away from an
owner that never wrote it, or when a second reader shows up on a clean
migratory block, the migratory bit is cleared.
"""

from __future__ import annotations

from repro.config import ProtocolConfig
from repro.core.directory import DirectoryEntry
from repro.core.messages import Message, MsgType


def detects_on_ownership(
    protocol: ProtocolConfig, entry: DirectoryEntry, msg: Message
) -> bool:
    """§3.2 detection rule, applied when the home receives OWN_REQ.

    Only active for the pure write-invalidate M (under CW the home
    never sees ownership requests for shared data; §3.4 applies).
    """
    if not protocol.migratory or protocol.competitive_update:
        return False
    if msg.mtype is not MsgType.OWN_REQ:
        return False  # a write miss is not a read/write *sequence*
    others = entry.sharers - {msg.src}
    return len(others) == 1 and entry.last_writer in others


def wants_interrogation(
    protocol: ProtocolConfig, entry: DirectoryEntry, msg: Message
) -> bool:
    """§3.4 candidate rule, applied when the home receives WC_FLUSH.

    "If the number of cached copies is greater than one and the update
    request comes from another processor than the last update request,
    the block is potentially regarded as migratory."
    """
    if not (protocol.migratory and protocol.competitive_update):
        return False
    if len(entry.sharers) <= 1:
        return False
    if entry.last_updater is None or entry.last_updater == msg.src:
        return False
    return bool(entry.sharers - {msg.src})


def confirms_interrogation(targets: set[int], give_ups: set[int]) -> bool:
    """§3.4 confirmation: every interrogated holder gave up its copy."""
    return bool(targets) and give_ups == targets


def grants_exclusive_read(
    protocol: ProtocolConfig, entry: DirectoryEntry
) -> bool:
    """Serve a read miss to a clean migratory block with an exclusive
    copy (the core of the optimization: the later write needs no
    ownership transaction)."""
    return protocol.migratory and entry.migratory


def reverts_on_unmodified_transfer(was_modified: bool) -> bool:
    """A migratory block fetched away from an owner that never wrote
    it was mispredicted: revert (§3.2's extra cache state at work)."""
    return not was_modified


def reverts_on_second_reader(entry: DirectoryEntry, requester: int) -> bool:
    """A second reader on a *clean* migratory block means read sharing:
    stop handing out exclusive copies."""
    return bool(entry.sharers) and entry.sharers != {requester}
