"""Coherence-protocol messages.

Message sizes drive the network-traffic results (Figure 4) and mesh
contention (Table 3):

* control messages carry a header only (8 bytes),
* block-data messages carry header + a 32-byte block,
* partial-update messages (write-cache flushes and their propagation)
  carry header + 4 bytes per dirty word -- the selective-word
  transmission of §3.3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum, auto


class MsgType(IntEnum):
    """All message kinds exchanged between caches and homes.

    An :class:`~enum.IntEnum` rather than a plain ``Enum`` so that the
    hot-path dict dispatch and frozenset membership tests
    (``HOME_BOUND``, the controllers' handler tables) hash at C speed
    instead of through ``Enum.__hash__``.
    """

    # requester -> home
    RD_REQ = auto()        # read miss (``prefetch`` flag for P requests)
    RDX_REQ = auto()       # write miss: fetch block + ownership
    OWN_REQ = auto()       # upgrade: ownership for an already-SHARED copy
    WB = auto()            # dirty-block writeback (eviction / demotion)
    REPL = auto()          # replacement hint for a shared copy
    WC_FLUSH = auto()      # CW: write-cache flush with dirty words
    LOCK_REQ = auto()
    LOCK_REL = auto()
    BAR_ARRIVE = auto()

    # home -> cache
    RD_RPL = auto()        # data reply (``grant`` = SHARED or MIG_CLEAN)
    RDX_RPL = auto()       # data + ownership reply
    OWN_ACK = auto()       # ownership granted (no data needed)
    INV = auto()           # invalidate your copy
    FETCH = auto()         # dirty owner: send data to requester, demote
    FETCH_INV = auto()     # dirty owner: send data to requester, invalidate
    UPD_PROP = auto()      # CW: update propagation to a sharer
    MIG_QUERY = auto()     # CW+M: interrogation of copy holders (§3.4)
    WC_ACK = auto()        # CW: flush complete (``exclusive`` flag)
    WB_ACK = auto()
    LOCK_GRANT = auto()
    LOCK_REL_ACK = auto()  # release globally performed (SC accounting)
    BAR_WAKE = auto()

    # cache -> home (completions)
    INV_ACK = auto()
    UPD_ACK = auto()       # ``drop`` flag: copy self-invalidated
    MIG_RPL = auto()       # CW+M: ``give_up`` flag
    XFER_ACK = auto()      # owner finished a FETCH/FETCH_INV
                           # (``was_modified``, carries data when dirty)


#: messages the *home controller* of the destination node handles.
HOME_BOUND = frozenset(
    {
        MsgType.RD_REQ,
        MsgType.RDX_REQ,
        MsgType.OWN_REQ,
        MsgType.WB,
        MsgType.REPL,
        MsgType.WC_FLUSH,
        MsgType.LOCK_REQ,
        MsgType.LOCK_REL,
        MsgType.BAR_ARRIVE,
        MsgType.INV_ACK,
        MsgType.UPD_ACK,
        MsgType.MIG_RPL,
        MsgType.XFER_ACK,
    }
)

HEADER_BYTES = 8
BLOCK_BYTES = 32
WORD_BYTES = 4

#: message kinds that carry a whole data block (FETCH / FETCH_INV are
#: control-only forwards; the data travels in the owner's RD_RPL and
#: in its XFER_ACK writeback when dirty).
_BLOCK_CARRIERS = frozenset(
    {MsgType.RD_RPL, MsgType.RDX_RPL, MsgType.WB}
)

#: per-type message size, indexed by ``int(mtype)``; -1 marks the
#: kinds whose size depends on the payload (dirty-word count, carried
#: writeback) and must go through the ``size_bytes`` property.  The
#: transport hot path reads this table directly.
_VARIABLE_SIZE = frozenset(
    {MsgType.WC_FLUSH, MsgType.UPD_PROP, MsgType.XFER_ACK, MsgType.INV_ACK}
)
SIZE_BY_TYPE: list[int] = [HEADER_BYTES] * (max(MsgType) + 1)
#: per-type message name, indexed by ``int(mtype)`` (the network
#: accounting keys); avoids the enum ``_name_`` descriptor on the
#: transport hot path.
MSG_NAMES: list[str] = [""] * (max(MsgType) + 1)
for _mt in MsgType:
    MSG_NAMES[_mt] = _mt._name_
    if _mt in _VARIABLE_SIZE:
        SIZE_BY_TYPE[_mt] = -1
    elif _mt in _BLOCK_CARRIERS:
        SIZE_BY_TYPE[_mt] = HEADER_BYTES + BLOCK_BYTES
del _mt


@dataclass(slots=True)
class Message:
    """One protocol message in flight.

    ``size_bytes`` involves a couple of set-membership tests; the
    transport layer (``System._send``) evaluates it once per message
    and threads the value through, so keep new hot paths doing the
    same.
    """

    mtype: MsgType
    src: int
    dst: int
    block: int = -1
    #: node that originated the transaction (forwards keep it).
    requester: int = -1
    #: P: this read request is a (non-binding) prefetch.
    prefetch: bool = False
    #: CW: number of dirty words carried (WC_FLUSH / UPD_PROP / INV_ACK).
    words: int = 0
    #: grant for RD_RPL: "S" (shared) or "MC" (exclusive / migratory).
    grant: str = "S"
    #: XFER_ACK: the owner had modified the block since receiving it.
    was_modified: bool = False
    #: UPD_ACK: the sharer dropped its copy (competitive counter expired).
    drop: bool = False
    #: MIG_RPL: the interrogated cache gave up its copy.
    give_up: bool = False
    #: WC_ACK: the home granted exclusivity to the flusher.
    exclusive: bool = False
    #: generic small-integer payload (barrier ids, lock cookies).
    tag: int = field(default=0)

    @property
    def size_bytes(self) -> int:
        """Bytes this message occupies on the network."""
        size = SIZE_BY_TYPE[self.mtype]
        if size >= 0:
            return size
        if self.mtype is MsgType.XFER_ACK:
            return (
                HEADER_BYTES + BLOCK_BYTES if self.was_modified else HEADER_BYTES
            )
        # WC_FLUSH / UPD_PROP / INV_ACK: selective-word transmission
        return HEADER_BYTES + WORD_BYTES * self.words

    @property
    def carries_data(self) -> bool:
        """True if this message carries any payload beyond the header."""
        return self.size_bytes > HEADER_BYTES
