"""Cache-line and memory-block (directory) states.

Paper §2: BASIC needs three stable cache states (INVALID, SHARED, DIRTY)
and two stable memory states (CLEAN, MODIFIED) plus transients.  The
migratory optimization (§3.2) adds one extra cache state, modelled here
as ``MIG_CLEAN``: an exclusive copy granted by a migratory read miss
that has not been written yet.  A write upgrades it to DIRTY with no
global traffic; if the block is fetched away while still MIG_CLEAN the
home learns the block stopped being migratory and reverts it.
"""

from __future__ import annotations

from enum import Enum


class CacheState(Enum):
    """Stable states of a second-level cache line."""

    INVALID = "I"
    SHARED = "S"
    DIRTY = "D"
    #: exclusive copy obtained through the migratory optimization,
    #: not modified yet (the extra state of §3.2 / ref [12]).
    MIG_CLEAN = "MC"

    @property
    def is_exclusive(self) -> bool:
        """True if no other cache may hold this block."""
        return self in (CacheState.DIRTY, CacheState.MIG_CLEAN)

    @property
    def is_valid(self) -> bool:
        """True if the line holds usable data."""
        return self is not CacheState.INVALID


class MemoryState(Enum):
    """Stable states of a memory block in the directory."""

    CLEAN = "C"
    MODIFIED = "M"
