"""Home-node (directory) controller.

Implements the **base write-invalidate protocol** of paper §2: read
misses served from memory or fetched from the owner, ownership
requests that invalidate the sharers, writebacks and replacement
hints, plus the lock and barrier tables.

Transient directory states are realized as per-block
:class:`~repro.core.transactions.Xact` records; requests that hit a
busy block are queued and replayed in order, which makes the home the
serialization point exactly as in the paper.

The home-side halves of the protocol extensions -- migratory detection
and exclusive read grants (M), write-cache flush/update/interrogation
transactions (CW) -- live in :mod:`repro.core.extensions` and are
dispatched through the node's
:class:`~repro.core.extensions.ExtensionPipeline` at the hook call
sites below.  Extensions drive the controller through its public
surface (``mem_access``, ``reply``, ``open_xact``, ``close_xact``,
``process_request``, ``drain_pending``).
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.config import DirectoryConfig, ProtocolConfig, TimingConfig
from repro.core.directory import Directory, DirectoryEntry, make_directory_org
from repro.core.extensions import ExtensionPipeline, build_pipeline
from repro.core.messages import Message, MsgType
from repro.core.states import MemoryState
from repro.core.transactions import Xact
from repro.sim.engine import SimulationError, Simulator
from repro.sync.barriers import BarrierTable
from repro.sync.locks import LockTable

if TYPE_CHECKING:  # pragma: no cover -- avoids a core <-> node cycle
    from repro.node.memory import InterleavedMemory

SendFn = Callable[[Message, int], None]

#: historical name, kept for importers.
_Xact = Xact


class HomeController:
    """Directory, lock and barrier controller for one node's memory."""

    _REQUESTS = frozenset(
        {
            MsgType.RD_REQ,
            MsgType.RDX_REQ,
            MsgType.OWN_REQ,
            MsgType.WB,
            MsgType.REPL,
        }
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        timing: TimingConfig,
        protocol: ProtocolConfig,
        memory: "InterleavedMemory",
        send: SendFn,
        n_nodes: int,
        pipeline: ExtensionPipeline | None = None,
        directory: DirectoryConfig | None = None,
    ) -> None:
        self.node_id = node_id
        self._sim = sim
        self._timing = timing
        self._protocol = protocol
        self._memory = memory
        self._send = send
        self._n_nodes = n_nodes
        # hot-path caches for ``mem_access`` (one reservation per
        # directory operation): the module's bank ledgers and geometry
        self._banks = memory._banks
        self._n_banks = memory.n_banks
        self._mem_occ = memory.access_pclocks
        self.directory = Directory(make_directory_org(directory, n_nodes))
        self._dir_entries = self.directory._entries
        self._make_sharers = self.directory._make_sharers
        self.locks = LockTable()
        self.barriers = BarrierTable()
        #: the node's protocol-extension pipeline (shared with the
        #: cache controller when built by :class:`repro.node.node.Node`).
        self.extensions = (
            pipeline if pipeline is not None else build_pipeline(protocol)
        )
        self.extensions.attach_home(self)
        #: hot-path alias: the pipeline's extension tuple.  An empty
        #: pipeline (BASIC cells) makes every hook a no-op, and the
        #: falsy-tuple test below is far cheaper than the dispatch loop.
        self._exts = self.extensions.extensions
        self._ext_requests = self.extensions.home_request_types()
        #: base + extension request kinds, merged so ``deliver`` pays a
        #: single membership test per message.
        self._request_types = frozenset(self._REQUESTS | self._ext_requests)
        self._xacts: dict[int, Xact] = {}
        self._pending: dict[int, deque[Message]] = {}
        self.memory_accesses = 0
        self.migratory_detections = 0
        self.migratory_reversions = 0

    # -- helpers --------------------------------------------------------

    def mem_access(self, t: int, block: int) -> int:
        """Charge one memory/directory access; returns completion time.

        The module is fully interleaved (§4): the bank serving
        ``block`` is occupied for the full access latency, but other
        banks keep serving in parallel.  (InterleavedMemory.access,
        inlined: every directory operation pays this.)
        """
        self.memory_accesses += 1
        occ = self._mem_occ
        res = self._banks[block % self._n_banks]
        free = res._free_at
        start = t if t > free else free
        end = start + occ
        res._free_at = end
        res.busy_cycles += occ
        res.reservations += 1
        return end

    def reply(self, mtype: MsgType, dst: int, block: int, t: int, **kw) -> None:
        """Send a protocol message to cache ``dst`` at time ``t``."""
        self._send(Message(mtype, self.node_id, dst, block, **kw), t)

    def busy(self, block: int) -> bool:
        """True if the block is in a transient state."""
        return block in self._xacts

    def open_xact(self, block: int, xact: Xact) -> None:
        """Put ``block`` into a transient state."""
        self._xacts[block] = xact

    def close_xact(self, block: int) -> None:
        """End ``block``'s transient state (callers drain the queue)."""
        del self._xacts[block]

    # -- entry point ----------------------------------------------------

    def deliver(self, msg: Message, t: int) -> None:
        """Handle a home-bound message arriving at time ``t``."""
        if msg.mtype in self._request_types:
            self._deliver_request(msg, t)
        elif msg.mtype is MsgType.LOCK_REQ:
            self._handle_lock_req(msg, t)
        elif msg.mtype is MsgType.LOCK_REL:
            self._handle_lock_rel(msg, t)
        elif msg.mtype is MsgType.BAR_ARRIVE:
            self._handle_barrier(msg, t)
        else:
            # anything else must be an ack completing a transaction
            self._handle_ack(msg, t)

    def handler_for(self, mtype: MsgType) -> Callable[[Message, int], None]:
        """The direct handler for a home-bound message type.

        The transport resolves the handler once at send time, skipping
        the per-delivery type dispatch of :meth:`deliver` (which stays
        as the generic entry point for tests and replayed messages).
        """
        if mtype in self._request_types:
            return self._deliver_request
        if mtype is MsgType.LOCK_REQ:
            return self._handle_lock_req
        if mtype is MsgType.LOCK_REL:
            return self._handle_lock_rel
        if mtype is MsgType.BAR_ARRIVE:
            return self._handle_barrier
        return self._handle_ack

    def _deliver_request(self, msg: Message, t: int) -> None:
        if msg.block in self._xacts:
            self._pending.setdefault(msg.block, deque()).append(msg)
            return
        self.process_request(msg, t)

    # -- stable-state request processing ---------------------------------

    def process_request(self, msg: Message, t: int) -> None:
        """Process a request against a stable (non-busy) block."""
        entry = self._dir_entries.get(msg.block)
        if entry is None:
            entry = DirectoryEntry(sharers=self._make_sharers())
            self._dir_entries[msg.block] = entry
        if msg.mtype is MsgType.RD_REQ:
            self._handle_read(msg, entry, t)
        elif msg.mtype in (MsgType.RDX_REQ, MsgType.OWN_REQ):
            self._handle_write(msg, entry, t)
        elif msg.mtype is MsgType.WB:
            self._handle_writeback(msg, entry, t)
        elif msg.mtype is MsgType.REPL:
            entry.sharers.discard(msg.src)
        elif not (
            self._exts and self.extensions.on_home_request(self, msg, entry, t)
        ):
            raise SimulationError(
                f"home {self.node_id}: unhandled request {msg.mtype}"
            )

    def _handle_read(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        req = msg.src
        if entry.state is MemoryState.CLEAN:
            t2 = self.mem_access(t, msg.block)
            if self._exts and self.extensions.grants_exclusive_read(
                self, entry, msg
            ):
                # exclusive grant straight from memory (§3.2)
                entry.state = MemoryState.MODIFIED
                entry.owner = req
                entry.sharers.clear()
                self.reply(
                    MsgType.RD_RPL, req, msg.block, t2,
                    grant="MC", prefetch=msg.prefetch,
                )
                return
            entry.sharers.add(req)
            self.reply(
                MsgType.RD_RPL, req, msg.block, t2,
                grant="S", prefetch=msg.prefetch,
            )
            return
        # MODIFIED: fetch from the owner (4-transfer miss)
        owner = entry.owner
        if owner is None:
            raise SimulationError(f"MODIFIED block {msg.block} with no owner")
        if owner == req:
            raise SimulationError(
                f"node {req} read-missed block {msg.block} it owns"
            )
        t2 = self.mem_access(t, msg.block)
        if self._exts and self.extensions.grants_exclusive_read(
            self, entry, msg
        ):
            self.open_xact(
                msg.block, Xact(kind="fetchinv_read", orig=msg, old_owner=owner)
            )
            self.reply(
                MsgType.FETCH_INV, owner, msg.block, t2,
                requester=req, grant="MC", prefetch=msg.prefetch,
            )
        else:
            self.open_xact(
                msg.block, Xact(kind="fetch_read", orig=msg, old_owner=owner)
            )
            self.reply(MsgType.FETCH, owner, msg.block, t2, requester=req)

    def _handle_write(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        req = msg.src
        if entry.state is MemoryState.MODIFIED:
            owner = entry.owner
            if owner == req:
                # stale upgrade after an exclusivity grant raced it
                self.reply(
                    MsgType.OWN_ACK, req, msg.block, self.mem_access(t, msg.block)
                )
                return
            t2 = self.mem_access(t, msg.block)
            self.open_xact(
                msg.block, Xact(kind="fetchinv_write", orig=msg, old_owner=owner)
            )
            self.reply(
                MsgType.FETCH_INV, owner, msg.block, t2, requester=req, grant="X"
            )
            return
        # CLEAN
        others = entry.sharers - {req}
        if self._exts:
            self.extensions.on_ownership_requested(self, entry, msg)
        needs_data = msg.mtype is MsgType.RDX_REQ or req not in entry.sharers
        t2 = self.mem_access(t, msg.block)
        if others:
            self.open_xact(
                msg.block,
                Xact(
                    kind="inv", orig=msg, acks_left=len(others),
                    needs_data=needs_data, targets=set(others),
                ),
            )
            for node in sorted(others):
                self.reply(MsgType.INV, node, msg.block, t2, requester=req)
            return
        self._grant_ownership(msg.block, entry, req, needs_data, t2)

    def _grant_ownership(
        self, block: int, entry: DirectoryEntry, req: int, needs_data: bool, t: int
    ) -> None:
        entry.state = MemoryState.MODIFIED
        entry.owner = req
        entry.sharers.clear()
        entry.last_writer = req
        if self._exts:
            self.extensions.on_ownership_granted(self, entry, req)
        if needs_data:
            self.reply(MsgType.RDX_RPL, req, block, t)
        else:
            self.reply(MsgType.OWN_ACK, req, block, t)

    def _handle_writeback(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        t2 = self.mem_access(t, msg.block)
        if entry.state is MemoryState.MODIFIED and entry.owner == msg.src:
            entry.state = MemoryState.CLEAN
            entry.owner = None
        # stale writebacks (the block was fetched away first) still
        # update memory harmlessly.
        self.reply(MsgType.WB_ACK, msg.src, msg.block, t2)

    # -- synchronization ---------------------------------------------------

    def _handle_lock_req(self, msg: Message, t: int) -> None:
        t2 = self.mem_access(t, msg.block)
        if self.locks.request(msg.block, msg.src):
            self.reply(MsgType.LOCK_GRANT, msg.src, msg.block, t2)

    def _handle_lock_rel(self, msg: Message, t: int) -> None:
        t2 = self.mem_access(t, msg.block)
        nxt = self.locks.release(msg.block, msg.src)
        if nxt is not None:
            self.reply(MsgType.LOCK_GRANT, nxt, msg.block, t2)
        self.reply(MsgType.LOCK_REL_ACK, msg.src, msg.block, t2)

    def _handle_barrier(self, msg: Message, t: int) -> None:
        t2 = self.mem_access(t, msg.block)
        wake = self.barriers.arrive(msg.block, msg.src, msg.tag)
        if wake is not None:
            for node in wake:
                self.reply(MsgType.BAR_WAKE, node, msg.block, t2)

    # -- transaction completion -------------------------------------------

    _FETCH_KINDS = ("fetch_read", "fetchinv_read", "fetchinv_write")

    def _handle_ack(self, msg: Message, t: int) -> None:
        xact = self._xacts.get(msg.block)
        if xact is None:
            raise SimulationError(
                f"home {self.node_id}: stray {msg.mtype} for block {msg.block}"
            )
        entry = self.directory.entry(msg.block)
        if msg.mtype is MsgType.XFER_ACK and xact.kind in self._FETCH_KINDS:
            self._finish_fetch(msg, xact, entry, t)
            return
        if msg.mtype is MsgType.INV_ACK:
            if self._exts:
                t = self.extensions.absorb_ack_payload(self, msg, t)
            xact.acks_left -= 1
            if xact.acks_left == 0:
                self._finish_invalidation(msg.block, xact, entry, t)
            return
        if self._exts and self.extensions.on_home_ack(self, msg, xact, entry, t):
            return
        raise SimulationError(
            f"home {self.node_id}: unexpected {msg.mtype} for "
            f"{xact.kind} transaction on block {msg.block}"
        )

    def _finish_fetch(
        self, msg: Message, xact: Xact, entry: DirectoryEntry, t: int
    ) -> None:
        if msg.was_modified:
            t = self.mem_access(t, msg.block)  # absorb the carried writeback
        req = xact.orig.src
        block = msg.block
        if xact.kind == "fetch_read":
            entry.state = MemoryState.CLEAN
            entry.owner = None
            entry.reset_sharers((req,))
            if not msg.drop and xact.old_owner is not None:
                entry.sharers.add(xact.old_owner)
        elif xact.kind == "fetchinv_read":
            entry.owner = req  # stays MODIFIED, exclusivity migrates
            if self._exts:
                self.extensions.on_exclusive_read_transfer(self, entry, msg)
        else:  # fetchinv_write
            entry.owner = req
            entry.last_writer = req
        self.close_xact(block)
        self.drain_pending(block)

    def _finish_invalidation(
        self, block: int, xact: Xact, entry: DirectoryEntry, t: int
    ) -> None:
        req = xact.orig.src
        entry.sharers &= {req}
        if xact.needs_data:
            t = self.mem_access(t, block)
        self._grant_ownership(block, entry, req, xact.needs_data, t)
        self.close_xact(block)
        self.drain_pending(block)

    def drain_pending(self, block: int) -> None:
        """Replay requests queued while ``block`` was in transit."""
        queue = self._pending.get(block)
        while queue and not self.busy(block):
            self.process_request(queue.popleft(), self._sim.now)
        if queue is not None and not queue:
            del self._pending[block]
