"""Home-node (directory) controller.

Implements the BASIC write-invalidate protocol of paper §2 and the
home-side halves of the three extensions:

* **P** (§3.1) -- prefetch read requests are ordinary read misses; under
  P+M a prefetch to a migratory block returns an exclusive copy
  (hardware read-exclusive prefetching).
* **M** (§3.2) -- migratory detection on ownership requests, exclusive
  grants on read misses to migratory blocks, and reversion when an
  exclusively-granted copy is fetched away unmodified.
* **CW** (§3.3/§3.4) -- write-cache flushes update memory and propagate
  selective-word updates to the sharers; exclusivity is granted to a
  sole sharer; under CW+M migratory blocks are detected by
  interrogating copy holders on suspicious update sequences.

Transient directory states are realized as per-block transactions;
requests that hit a busy block are queued and replayed in order, which
makes the home the serialization point exactly as in the paper.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.config import ProtocolConfig, TimingConfig
from repro.core import competitive, migratory
from repro.core.directory import Directory, DirectoryEntry
from repro.core.messages import Message, MsgType
from repro.core.states import MemoryState
from repro.sim.engine import SimulationError, Simulator
from repro.sync.barriers import BarrierTable
from repro.sync.locks import LockTable

if TYPE_CHECKING:  # pragma: no cover -- avoids a core <-> node cycle
    from repro.node.memory import InterleavedMemory

SendFn = Callable[[Message, int], None]


@dataclass
class _Xact:
    """One in-flight (transient-state) transaction on a block."""

    kind: str                     # 'fetch_read' | 'fetchinv_read' |
                                  # 'fetchinv_write' | 'inv' | 'upd' |
                                  # 'migq' | 'fetch_flush'
    orig: Message
    acks_left: int = 0
    needs_data: bool = False
    old_owner: int | None = None
    droppers: set[int] = field(default_factory=set)
    give_ups: set[int] = field(default_factory=set)
    targets: set[int] = field(default_factory=set)


class HomeController:
    """Directory, lock and barrier controller for one node's memory."""

    _REQUESTS = frozenset(
        {
            MsgType.RD_REQ,
            MsgType.RDX_REQ,
            MsgType.OWN_REQ,
            MsgType.WC_FLUSH,
            MsgType.WB,
            MsgType.REPL,
        }
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        timing: TimingConfig,
        protocol: ProtocolConfig,
        memory: "InterleavedMemory",
        send: SendFn,
        n_nodes: int,
    ) -> None:
        self.node_id = node_id
        self._sim = sim
        self._timing = timing
        self._protocol = protocol
        self._memory = memory
        self._send = send
        self._n_nodes = n_nodes
        self.directory = Directory()
        self.locks = LockTable()
        self.barriers = BarrierTable()
        self._xacts: dict[int, _Xact] = {}
        self._pending: dict[int, deque[Message]] = {}
        self.memory_accesses = 0
        self.migratory_detections = 0
        self.migratory_reversions = 0

    # -- helpers --------------------------------------------------------

    def _mem(self, t: int, block: int) -> int:
        """Charge one memory/directory access; returns completion time.

        The module is fully interleaved (§4): the bank serving
        ``block`` is occupied for the full access latency, but other
        banks keep serving in parallel.
        """
        self.memory_accesses += 1
        return self._memory.access(t, block)

    def _reply(self, mtype: MsgType, dst: int, block: int, t: int, **kw) -> None:
        self._send(Message(mtype, src=self.node_id, dst=dst, block=block, **kw), t)

    def busy(self, block: int) -> bool:
        """True if the block is in a transient state."""
        return block in self._xacts

    # -- entry point ----------------------------------------------------

    def deliver(self, msg: Message, t: int) -> None:
        """Handle a home-bound message arriving at time ``t``."""
        if msg.mtype in self._REQUESTS:
            if self.busy(msg.block):
                self._pending.setdefault(msg.block, deque()).append(msg)
                return
            self._process_request(msg, t)
        elif msg.mtype is MsgType.LOCK_REQ:
            self._handle_lock_req(msg, t)
        elif msg.mtype is MsgType.LOCK_REL:
            self._handle_lock_rel(msg, t)
        elif msg.mtype is MsgType.BAR_ARRIVE:
            self._handle_barrier(msg, t)
        elif msg.mtype in (
            MsgType.INV_ACK,
            MsgType.UPD_ACK,
            MsgType.MIG_RPL,
            MsgType.XFER_ACK,
        ):
            self._handle_ack(msg, t)
        else:
            raise SimulationError(f"home {self.node_id}: unexpected {msg.mtype}")

    # -- stable-state request processing ---------------------------------

    def _process_request(self, msg: Message, t: int) -> None:
        entry = self.directory.entry(msg.block)
        if msg.mtype is MsgType.RD_REQ:
            self._handle_read(msg, entry, t)
        elif msg.mtype in (MsgType.RDX_REQ, MsgType.OWN_REQ):
            self._handle_write(msg, entry, t)
        elif msg.mtype is MsgType.WC_FLUSH:
            self._handle_wc_flush(msg, entry, t)
        elif msg.mtype is MsgType.WB:
            self._handle_writeback(msg, entry, t)
        elif msg.mtype is MsgType.REPL:
            entry.sharers.discard(msg.src)

    def _handle_read(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        req = msg.src
        if entry.state is MemoryState.CLEAN:
            t2 = self._mem(t, msg.block)
            if migratory.grants_exclusive_read(self._protocol, entry):
                if not migratory.reverts_on_second_reader(entry, req):
                    # exclusive grant straight from memory (§3.2)
                    entry.state = MemoryState.MODIFIED
                    entry.owner = req
                    entry.sharers.clear()
                    self._reply(
                        MsgType.RD_RPL, req, msg.block, t2,
                        grant="MC", prefetch=msg.prefetch,
                    )
                    return
                # a second reader on a clean migratory block: the
                # pattern is no longer migratory.
                entry.migratory = False
                self.migratory_reversions += 1
            entry.sharers.add(req)
            self._reply(
                MsgType.RD_RPL, req, msg.block, t2,
                grant="S", prefetch=msg.prefetch,
            )
            return
        # MODIFIED: fetch from the owner (4-transfer miss)
        owner = entry.owner
        if owner is None:
            raise SimulationError(f"MODIFIED block {msg.block} with no owner")
        if owner == req:
            raise SimulationError(
                f"node {req} read-missed block {msg.block} it owns"
            )
        t2 = self._mem(t, msg.block)
        if migratory.grants_exclusive_read(self._protocol, entry):
            self._xacts[msg.block] = _Xact(
                kind="fetchinv_read", orig=msg, old_owner=owner
            )
            self._reply(
                MsgType.FETCH_INV, owner, msg.block, t2,
                requester=req, grant="MC", prefetch=msg.prefetch,
            )
        else:
            self._xacts[msg.block] = _Xact(
                kind="fetch_read", orig=msg, old_owner=owner
            )
            self._reply(MsgType.FETCH, owner, msg.block, t2, requester=req)

    def _handle_write(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        req = msg.src
        if entry.state is MemoryState.MODIFIED:
            owner = entry.owner
            if owner == req:
                # stale upgrade after an exclusivity grant raced it
                self._reply(MsgType.OWN_ACK, req, msg.block, self._mem(t, msg.block))
                return
            t2 = self._mem(t, msg.block)
            self._xacts[msg.block] = _Xact(
                kind="fetchinv_write", orig=msg, old_owner=owner
            )
            self._reply(
                MsgType.FETCH_INV, owner, msg.block, t2, requester=req, grant="X"
            )
            return
        # CLEAN
        others = entry.sharers - {req}
        if migratory.detects_on_ownership(self._protocol, entry, msg):
            # read/write by last_writer followed by read/write by req:
            # the block migrates (§3.2, refs [2, 12]).
            entry.migratory = True
            self.migratory_detections += 1
        needs_data = msg.mtype is MsgType.RDX_REQ or req not in entry.sharers
        t2 = self._mem(t, msg.block)
        if others:
            xact = _Xact(
                kind="inv", orig=msg, acks_left=len(others),
                needs_data=needs_data, targets=set(others),
            )
            self._xacts[msg.block] = xact
            for node in sorted(others):
                self._reply(MsgType.INV, node, msg.block, t2, requester=req)
            return
        self._grant_ownership(msg.block, entry, req, needs_data, t2)

    def _grant_ownership(
        self, block: int, entry: DirectoryEntry, req: int, needs_data: bool, t: int
    ) -> None:
        entry.state = MemoryState.MODIFIED
        entry.owner = req
        entry.sharers.clear()
        entry.last_writer = req
        if needs_data:
            self._reply(MsgType.RDX_RPL, req, block, t)
        else:
            self._reply(MsgType.OWN_ACK, req, block, t)

    def _handle_writeback(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        t2 = self._mem(t, msg.block)
        if entry.state is MemoryState.MODIFIED and entry.owner == msg.src:
            entry.state = MemoryState.CLEAN
            entry.owner = None
        # stale writebacks (the block was fetched away first) still
        # update memory harmlessly.
        self._reply(MsgType.WB_ACK, msg.src, msg.block, t2)

    # -- competitive update (CW) -----------------------------------------

    def _handle_wc_flush(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        src = msg.src
        if entry.state is MemoryState.MODIFIED:
            if entry.owner == src:
                # flusher already owns the block exclusively
                self._reply(
                    MsgType.WC_ACK, src, msg.block, self._mem(t, msg.block), exclusive=True
                )
                return
            # another node holds it dirty: demote it first, then replay
            t2 = self._mem(t, msg.block)
            self._xacts[msg.block] = _Xact(
                kind="fetch_flush", orig=msg, old_owner=entry.owner
            )
            # requester=-1: demote and ack home, no data forwarding
            self._reply(MsgType.FETCH, entry.owner, msg.block, t2, requester=-1)
            return
        t2 = self._mem(t, msg.block)
        others = entry.sharers - {src}
        wants_migq = migratory.wants_interrogation(self._protocol, entry, msg)
        entry.last_updater = src
        if wants_migq:
            # §3.4: interrogate every other copy holder
            xact = _Xact(
                kind="migq", orig=msg, acks_left=len(others), targets=set(others)
            )
            self._xacts[msg.block] = xact
            for node in sorted(others):
                self._reply(MsgType.MIG_QUERY, node, msg.block, t2)
            return
        if not others:
            self._finish_flush_sole(msg, entry, t2)
            return
        xact = _Xact(
            kind="upd", orig=msg, acks_left=len(others), targets=set(others)
        )
        self._xacts[msg.block] = xact
        for node in sorted(others):
            self._reply(MsgType.UPD_PROP, node, msg.block, t2, words=msg.words)

    def _finish_flush_sole(self, msg: Message, entry: DirectoryEntry, t: int) -> None:
        """No other sharer remains: maybe grant exclusivity (§3.3)."""
        src = msg.src
        # migratory blocks (CW+M, §3.4) always migrate to the writer so
        # that update propagation stops; otherwise exclusivity is an
        # optional traffic optimization (see CompetitiveConfig).
        exclusive = competitive.grants_exclusivity_on_flush(
            self._protocol.competitive_params.exclusive_grant, entry, src
        )
        if exclusive:
            entry.state = MemoryState.MODIFIED
            entry.owner = src
            entry.sharers.clear()
            entry.last_writer = src
        self._reply(MsgType.WC_ACK, src, msg.block, t, exclusive=exclusive)

    # -- synchronization ---------------------------------------------------

    def _handle_lock_req(self, msg: Message, t: int) -> None:
        t2 = self._mem(t, msg.block)
        if self.locks.request(msg.block, msg.src):
            self._reply(MsgType.LOCK_GRANT, msg.src, msg.block, t2)

    def _handle_lock_rel(self, msg: Message, t: int) -> None:
        t2 = self._mem(t, msg.block)
        nxt = self.locks.release(msg.block, msg.src)
        if nxt is not None:
            self._reply(MsgType.LOCK_GRANT, nxt, msg.block, t2)
        self._reply(MsgType.LOCK_REL_ACK, msg.src, msg.block, t2)

    def _handle_barrier(self, msg: Message, t: int) -> None:
        t2 = self._mem(t, msg.block)
        wake = self.barriers.arrive(msg.block, msg.src, msg.tag)
        if wake is not None:
            for node in wake:
                self._reply(MsgType.BAR_WAKE, node, msg.block, t2)

    # -- transaction completion -------------------------------------------

    def _handle_ack(self, msg: Message, t: int) -> None:
        xact = self._xacts.get(msg.block)
        if xact is None:
            raise SimulationError(
                f"home {self.node_id}: stray {msg.mtype} for block {msg.block}"
            )
        entry = self.directory.entry(msg.block)
        if msg.mtype is MsgType.XFER_ACK:
            self._finish_fetch(msg, xact, entry, t)
            return
        if msg.mtype is MsgType.INV_ACK:
            if msg.words:
                t = self._mem(t, msg.block)  # apply piggybacked write-cache words
            xact.acks_left -= 1
            if xact.acks_left == 0:
                self._finish_invalidation(msg.block, xact, entry, t)
            return
        if msg.mtype is MsgType.UPD_ACK:
            xact.acks_left -= 1
            if msg.drop:
                xact.droppers.add(msg.src)
            if xact.acks_left == 0:
                self._finish_update(msg.block, xact, entry, t)
            return
        if msg.mtype is MsgType.MIG_RPL:
            if msg.words:
                t = self._mem(t, msg.block)
            xact.acks_left -= 1
            if msg.give_up:
                xact.give_ups.add(msg.src)
            if xact.acks_left == 0:
                self._finish_interrogation(msg.block, xact, entry, t)
            return
        raise SimulationError(f"unexpected ack {msg.mtype}")

    def _finish_fetch(
        self, msg: Message, xact: _Xact, entry: DirectoryEntry, t: int
    ) -> None:
        if msg.was_modified:
            t = self._mem(t, msg.block)  # absorb the carried writeback
        req = xact.orig.src
        block = msg.block
        if xact.kind == "fetch_read":
            entry.state = MemoryState.CLEAN
            entry.owner = None
            entry.sharers = {req}
            if not msg.drop and xact.old_owner is not None:
                entry.sharers.add(xact.old_owner)
        elif xact.kind == "fetchinv_read":
            entry.owner = req  # stays MODIFIED, exclusivity migrates
            if migratory.reverts_on_unmodified_transfer(msg.was_modified):
                # the previous owner never wrote: revert (§3.2)
                entry.migratory = False
                self.migratory_reversions += 1
        elif xact.kind == "fetchinv_write":
            entry.owner = req
            entry.last_writer = req
        elif xact.kind == "fetch_flush":
            entry.state = MemoryState.CLEAN
            entry.owner = None
            entry.sharers = set()
            if not msg.drop and xact.old_owner is not None:
                entry.sharers.add(xact.old_owner)
            del self._xacts[block]
            self._process_request(xact.orig, t)
            self._drain_pending(block)
            return
        else:
            raise SimulationError(f"XFER_ACK for xact kind {xact.kind}")
        del self._xacts[block]
        self._drain_pending(block)

    def _finish_invalidation(
        self, block: int, xact: _Xact, entry: DirectoryEntry, t: int
    ) -> None:
        req = xact.orig.src
        entry.sharers &= {req}
        if xact.needs_data:
            t = self._mem(t, block)
        self._grant_ownership(block, entry, req, xact.needs_data, t)
        del self._xacts[block]
        self._drain_pending(block)

    def _finish_update(
        self, block: int, xact: _Xact, entry: DirectoryEntry, t: int
    ) -> None:
        entry.sharers -= xact.droppers
        self._finish_flush_sole_or_shared(block, xact, entry, t)

    def _finish_interrogation(
        self, block: int, xact: _Xact, entry: DirectoryEntry, t: int
    ) -> None:
        src = xact.orig.src
        if migratory.confirms_interrogation(xact.targets, xact.give_ups):
            # every other holder gave up its copy: migratory (§3.4)
            entry.sharers -= xact.give_ups
            entry.migratory = True
            self.migratory_detections += 1
            self._finish_flush_sole_or_shared(block, xact, entry, t)
            return
        entry.sharers -= xact.give_ups
        remaining = entry.sharers - {src}
        if not remaining:
            self._finish_flush_sole_or_shared(block, xact, entry, t)
            return
        # not migratory: continue as a normal update propagation
        xact.kind = "upd"
        xact.acks_left = len(remaining)
        xact.targets = set(remaining)
        xact.droppers = set()
        for node in sorted(remaining):
            self._reply(
                MsgType.UPD_PROP, node, block, t, words=xact.orig.words
            )

    def _finish_flush_sole_or_shared(
        self, block: int, xact: _Xact, entry: DirectoryEntry, t: int
    ) -> None:
        src = xact.orig.src
        others = entry.sharers - {src}
        if not others:
            self._finish_flush_sole(xact.orig, entry, t)
        else:
            self._reply(MsgType.WC_ACK, src, block, t, exclusive=False)
        del self._xacts[block]
        self._drain_pending(block)

    def _drain_pending(self, block: int) -> None:
        queue = self._pending.get(block)
        while queue and not self.busy(block):
            self._process_request(queue.popleft(), self._sim.now)
        if queue is not None and not queue:
            del self._pending[block]
