"""Competitive-update policy (paper §3.3, refs [4, 10]).

The counter discipline of the competitive-update mechanism, factored
out of the cache controller:

* on every *local access* (and on load) the per-line counter is preset
  to the competitive threshold,
* an incoming update decrements the counter **only if no local access
  intervened since the previous update** -- "if a number of global
  updates equal to the competitive threshold reach the cache with no
  intervening local access, the block is invalidated locally";
  actively used copies therefore survive indefinitely,
* at zero the copy self-invalidates and the home stops sending it
  updates.

The module also decides home-side exclusivity: a flusher that is the
sole remaining sharer may be granted ownership, which stops update
traffic for effectively-private data at the cost of re-creating
dirty-at-cache blocks (longer misses for the next remote reader).
That trade-off is the ``exclusive_grant`` knob of
:class:`~repro.config.CompetitiveConfig`; migratory blocks under CW+M
always migrate to the writer so that update propagation stops (§3.4).
"""

from __future__ import annotations

from repro.config import CompetitiveConfig
from repro.core.directory import DirectoryEntry
from repro.mem.slc import CacheLine


class CompetitivePolicy:
    """Per-cache competitive-counter discipline."""

    def __init__(self, cfg: CompetitiveConfig) -> None:
        self.threshold = cfg.threshold
        self.exclusive_grant = cfg.exclusive_grant

    def on_fill(self, line: CacheLine) -> None:
        """A copy was just loaded: full tolerance."""
        line.comp_count = self.threshold
        line.accessed_since_update = True

    def on_local_access(self, line: CacheLine, modifying: bool = False) -> None:
        """The processor touched the block: reset the tolerance."""
        line.comp_count = self.threshold
        line.accessed_since_update = True
        if modifying:
            line.modified_since_update = True

    def on_update(self, line: CacheLine) -> bool:
        """An update arrived from the home; returns True to self-invalidate."""
        if line.accessed_since_update:
            line.comp_count = self.threshold
        else:
            line.comp_count -= 1
        line.accessed_since_update = False
        line.modified_since_update = False
        return line.comp_count <= 0


def grants_exclusivity_on_flush(
    policy_exclusive: bool, entry: DirectoryEntry, flusher: int
) -> bool:
    """Home-side rule: may the flusher take the block exclusively?

    Requires the flusher to actually hold a copy; migratory blocks
    (CW+M) always migrate, otherwise the knob decides.
    """
    if flusher not in entry.sharers:
        return False
    return policy_exclusive or entry.migratory
