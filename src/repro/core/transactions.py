"""Transient directory-state transactions.

The home controller realizes transient directory states as per-block
:class:`Xact` records; requests that hit a busy block are queued and
replayed in order, which makes the home the serialization point
exactly as in the paper.  The record lives in its own module so that
protocol extensions (:mod:`repro.core.extensions`) can open their own
transactions without importing the home controller.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.messages import Message


@dataclass(slots=True)
class Xact:
    """One in-flight (transient-state) transaction on a block."""

    kind: str                     # 'fetch_read' | 'fetchinv_read' |
                                  # 'fetchinv_write' | 'inv' | 'upd' |
                                  # 'migq' | 'fetch_flush'
    orig: Message
    acks_left: int = 0
    needs_data: bool = False
    old_owner: int | None = None
    droppers: set[int] = field(default_factory=set)
    give_ups: set[int] = field(default_factory=set)
    targets: set[int] = field(default_factory=set)
