"""Composable protocol extensions (the paper's P, CW and M).

Importing this package registers the built-in extensions; everything
user-facing re-exports from here:

* :class:`ProtocolExtension` / :class:`ExtensionPipeline` -- the hook
  interface and its dispatcher (see :mod:`repro.core.extensions.base`
  for the full hook catalogue),
* the registry -- :func:`register_extension`, :func:`extension_info`,
  :func:`registered_extensions`, :func:`resolve_names`,
  :func:`build_pipeline`, :class:`UnknownExtensionError`,
* the built-in extensions -- :class:`PrefetchExtension` (P),
  :class:`CompetitiveExtension` (CW), :class:`MigratoryExtension` (M)
  and the drop-in :class:`FixedPrefetchExtension` (PF).

``docs/protocol.md`` walks through writing a new extension.
"""

from repro.core.extensions.base import ExtensionPipeline, ProtocolExtension
from repro.core.extensions.registry import (
    KNOWN_TRAITS,
    ExtensionInfo,
    RegistryError,
    UnknownExtensionError,
    build_pipeline,
    extension_info,
    register_extension,
    registered_extensions,
    resolve_names,
    validate_registry,
)

# importing the built-in extension modules registers them
from repro.core.extensions.prefetch_ext import PrefetchExtension
from repro.core.extensions.fixed_prefetch import FixedPrefetchExtension
from repro.core.extensions.competitive_ext import CompetitiveExtension
from repro.core.extensions.migratory_ext import MigratoryExtension

# lint the assembled registry: conflict symmetry can only be judged
# once every built-in has registered (P conflicts with PF, which
# registers later), so the check lives here rather than in
# ``register_extension``.
validate_registry()

__all__ = [
    "KNOWN_TRAITS",
    "CompetitiveExtension",
    "ExtensionInfo",
    "ExtensionPipeline",
    "FixedPrefetchExtension",
    "MigratoryExtension",
    "PrefetchExtension",
    "ProtocolExtension",
    "RegistryError",
    "UnknownExtensionError",
    "build_pipeline",
    "extension_info",
    "register_extension",
    "registered_extensions",
    "resolve_names",
    "validate_registry",
]
