"""Protocol-extension interface: :class:`ProtocolExtension` and
:class:`ExtensionPipeline`.

The paper's thesis is that P, M and CW are *modular* extensions of one
BASIC write-invalidate protocol whose gains compose.  This module is
that thesis as an architecture: the base protocol lives in
:mod:`repro.core.cache_ctrl` (requester side) and :mod:`repro.core.home`
(directory side), and every extension touchpoint is a *lifecycle hook*
dispatched through a per-node :class:`ExtensionPipeline`.

An extension subclasses :class:`ProtocolExtension` and overrides only
the hooks it needs; every default is a no-op, so the base protocol with
an empty pipeline behaves (and costs) exactly like a hard-wired BASIC
controller.  Hooks never schedule simulator events themselves unless
the equivalent inline code did, which keeps event counts identical and
simulations deterministic.

Hook catalogue
--------------

Cache side (first argument is the
:class:`~repro.core.cache_ctrl.CacheController`):

===========================  ====================================================
``attach_cache(ctrl)``       create per-cache state (engines, write caches)
``on_read_hit(ctrl, line)``  a demand read hit a valid SLC line
``absorbs_read(...)``        may the extension satisfy this read itself?
``defers_read(...)``         park a read until extension traffic settles
``on_read_merged(...)``      a demand read joined an in-flight request
``on_demand_miss(...)``      a demand read missed (before SLWB allocation)
``on_miss_issued(...)``      the miss request left for the home node
``on_write(...)``            may the extension absorb this write?
``on_fill(ctrl, line)``      a line was just inserted into the SLC
``on_evict(ctrl, victim)``   a line is being victimized
``on_invalidate(...)``       an INV arrived; return dirty words to piggyback
``on_release(ctrl, marker)`` a release/barrier is arming (RCpc sync point)
``on_home_reply(...)``       handle a home-originated message type of yours
``cache_outstanding(ctrl)``  in-flight extension requests (quiescence checks)
===========================  ====================================================

Home side (first argument is the
:class:`~repro.core.home.HomeController`):

==================================  =============================================
``attach_home(home)``               create per-home state
``home_request_types()``            extra request MsgTypes you own (queueable)
``on_home_request(...)``            consume one of your request messages
``grants_exclusive_read(...)``      serve this read miss with an exclusive copy?
``on_ownership_requested(...)``     an OWN_REQ/RDX_REQ reached a CLEAN block
``on_ownership_granted(...)``       ownership was just granted to a requester
``on_exclusive_read_transfer(...)`` an exclusive read grant completed (XFER_ACK)
``on_home_ack(...)``                consume an ack for one of your transactions
``absorb_ack_payload(...)``         charge memory for piggybacked payload
==================================  =============================================

``stats_hooks()`` reports extension-private *counters* (summable ints)
for CLI/report surfaces.

Dispatch is deterministic: extensions run in registry order (see
:mod:`repro.core.extensions.registry`), and decision hooks
(``on_write``, ``absorbs_read``, ...) are first-non-default-wins.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator, Sequence

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids cycles
    from repro.core.cache_ctrl import CacheController, SyncMarker, _PendingRead
    from repro.core.directory import DirectoryEntry
    from repro.core.home import HomeController, Xact
    from repro.core.messages import Message, MsgType
    from repro.mem.slc import CacheLine


class ProtocolExtension:
    """One protocol extension; every hook defaults to a no-op.

    Subclasses set :attr:`name` (the registry key, e.g. ``"P"``) and
    override the hooks they need.  One instance serves one node: it is
    attached to that node's cache controller and home controller and
    may keep per-node state on ``self``.
    """

    #: canonical registry name, e.g. ``"P"``, ``"M"``, ``"CW"``.
    name: str = "?"

    # -- wiring ---------------------------------------------------------

    def attach_cache(self, ctrl: "CacheController") -> None:
        """The node's cache controller adopted this extension."""

    def attach_home(self, home: "HomeController") -> None:
        """The node's home controller adopted this extension."""

    # -- cache (requester) side -----------------------------------------

    def on_read_hit(self, ctrl: "CacheController", line: "CacheLine") -> None:
        """A demand read hit ``line`` in the SLC."""

    def absorbs_read(self, ctrl: "CacheController", block: int) -> bool:
        """Return True to satisfy a demand read from extension state."""
        return False

    def defers_read(
        self,
        ctrl: "CacheController",
        block: int,
        on_done: Callable[[], None],
        t0: int,
    ) -> bool:
        """Return True to park a demand read until extension traffic
        for ``block`` settles; the extension must later re-enter it via
        :meth:`CacheController.retry_read`."""
        return False

    def on_read_merged(
        self, ctrl: "CacheController", pending: "_PendingRead"
    ) -> None:
        """A demand read joined the in-flight request ``pending``."""

    def on_demand_miss(self, ctrl: "CacheController", block: int) -> None:
        """A demand read missed (called before SLWB allocation)."""

    def on_miss_issued(self, ctrl: "CacheController", block: int) -> None:
        """The demand-miss request for ``block`` left for the home."""

    def on_write(
        self,
        ctrl: "CacheController",
        block: int,
        word: int,
        line: "CacheLine | None",
    ) -> bool | None:
        """Offer the extension a draining write to a non-exclusive block.

        Return True when absorbed, False to retry when the SLWB has
        room, or None to let the base ownership path (or the next
        extension) handle it.
        """
        return None

    def on_fill(self, ctrl: "CacheController", line: "CacheLine") -> None:
        """``line`` was just inserted into the SLC."""

    def on_evict(self, ctrl: "CacheController", victim: "CacheLine") -> None:
        """``victim`` is being removed from the SLC."""

    def on_invalidate(self, ctrl: "CacheController", block: int) -> int:
        """An INV for ``block`` arrived; drop extension state and return
        the number of dirty words to piggyback on the INV_ACK."""
        return 0

    def on_release(self, ctrl: "CacheController", marker: "SyncMarker") -> None:
        """A release/barrier is arming: register (and count, via
        ``marker.outstanding``) everything it must wait for."""

    def on_home_reply(
        self, ctrl: "CacheController", msg: "Message", t: int
    ) -> bool:
        """Handle a cache-bound message type owned by this extension;
        return True when consumed."""
        return False

    def cache_outstanding(self, ctrl: "CacheController") -> int:
        """In-flight extension requests (for quiescence checks)."""
        return 0

    # -- home (directory) side ------------------------------------------

    def home_request_types(self) -> "frozenset[MsgType]":
        """Extra home-bound request types this extension owns.  They
        share the base queue-on-busy serialization discipline."""
        return frozenset()

    def on_home_request(
        self, home: "HomeController", msg: "Message", entry: "DirectoryEntry", t: int
    ) -> bool:
        """Consume a stable-state request of an owned type."""
        return False

    def grants_exclusive_read(
        self, home: "HomeController", entry: "DirectoryEntry", msg: "Message"
    ) -> bool:
        """Serve this read miss with an exclusive (MIG_CLEAN) copy?"""
        return False

    def on_ownership_requested(
        self, home: "HomeController", entry: "DirectoryEntry", msg: "Message"
    ) -> None:
        """An ownership request reached a CLEAN directory entry."""

    def on_ownership_granted(
        self, home: "HomeController", entry: "DirectoryEntry", req: int
    ) -> None:
        """Ownership of the block was just granted to node ``req``."""

    def on_exclusive_read_transfer(
        self, home: "HomeController", entry: "DirectoryEntry", msg: "Message"
    ) -> None:
        """An exclusive read grant completed (XFER_ACK from the old
        owner); ``msg.was_modified`` tells whether the owner wrote."""

    def on_home_ack(
        self,
        home: "HomeController",
        msg: "Message",
        xact: "Xact",
        entry: "DirectoryEntry",
        t: int,
    ) -> bool:
        """Consume an ack that completes an extension transaction."""
        return False

    def absorb_ack_payload(
        self, home: "HomeController", msg: "Message", t: int
    ) -> int:
        """Charge memory for payload piggybacked on a base ack; return
        the (possibly later) time processing resumes at."""
        return t

    # -- reporting ------------------------------------------------------

    def stats_hooks(self) -> dict[str, int]:
        """Extension-private counters for reporting surfaces.  Values
        must be summable across nodes (counters, not gauges)."""
        return {}


#: hooks specialized per pipeline: dispatch walks only the extensions
#: that actually override the hook.  Defaults are pure no-ops (and
#: decision hooks return their first-non-default-wins identity), so
#: skipping non-overriders is behaviour-preserving while making the
#: common "no extension cares" case a walk over an empty tuple.
_SPECIALIZED_HOOKS = (
    "on_read_hit",
    "absorbs_read",
    "defers_read",
    "on_read_merged",
    "on_demand_miss",
    "on_miss_issued",
    "on_write",
    "on_fill",
    "on_evict",
    "on_invalidate",
    "on_release",
    "on_home_reply",
    "cache_outstanding",
    "on_home_request",
    "grants_exclusive_read",
    "on_ownership_requested",
    "on_ownership_granted",
    "on_exclusive_read_transfer",
    "on_home_ack",
    "absorb_ack_payload",
)


class ExtensionPipeline:
    """Dispatches lifecycle hooks to extensions in deterministic order.

    The pipeline is per node: one instance is shared by the node's
    cache controller and home controller.  Iteration order equals
    construction order, which the registry fixes globally, so hook
    dispatch is deterministic and identical on every node.
    """

    __slots__ = ("extensions", "_by_name") + tuple(
        "_" + hook for hook in _SPECIALIZED_HOOKS
    )

    def __init__(self, extensions: Sequence[ProtocolExtension] = ()) -> None:
        self.extensions: tuple[ProtocolExtension, ...] = tuple(extensions)
        self._by_name = {ext.name: ext for ext in self.extensions}
        if len(self._by_name) != len(self.extensions):
            raise ValueError(
                "duplicate extension names in pipeline: "
                f"{[e.name for e in self.extensions]}"
            )
        for hook in _SPECIALIZED_HOOKS:
            default = getattr(ProtocolExtension, hook)
            setattr(
                self,
                "_" + hook,
                tuple(
                    ext
                    for ext in self.extensions
                    if getattr(type(ext), hook, default) is not default
                ),
            )

    def __iter__(self) -> Iterator[ProtocolExtension]:
        return iter(self.extensions)

    def __len__(self) -> int:
        return len(self.extensions)

    def __bool__(self) -> bool:
        return bool(self.extensions)

    def get(self, name: str) -> ProtocolExtension | None:
        """The registered extension called ``name``, or None."""
        return self._by_name.get(name)

    # -- wiring ---------------------------------------------------------

    def attach_cache(self, ctrl: "CacheController") -> None:
        for ext in self.extensions:
            ext.attach_cache(ctrl)

    def attach_home(self, home: "HomeController") -> None:
        for ext in self.extensions:
            ext.attach_home(home)

    # -- cache-side dispatch --------------------------------------------

    def on_read_hit(self, ctrl, line) -> None:
        for ext in self._on_read_hit:
            ext.on_read_hit(ctrl, line)

    def absorbs_read(self, ctrl, block) -> bool:
        for ext in self._absorbs_read:
            if ext.absorbs_read(ctrl, block):
                return True
        return False

    def defers_read(self, ctrl, block, on_done, t0) -> bool:
        for ext in self._defers_read:
            if ext.defers_read(ctrl, block, on_done, t0):
                return True
        return False

    def on_read_merged(self, ctrl, pending) -> None:
        for ext in self._on_read_merged:
            ext.on_read_merged(ctrl, pending)

    def on_demand_miss(self, ctrl, block) -> None:
        for ext in self._on_demand_miss:
            ext.on_demand_miss(ctrl, block)

    def on_miss_issued(self, ctrl, block) -> None:
        for ext in self._on_miss_issued:
            ext.on_miss_issued(ctrl, block)

    def on_write(self, ctrl, block, word, line) -> bool | None:
        for ext in self._on_write:
            handled = ext.on_write(ctrl, block, word, line)
            if handled is not None:
                return handled
        return None

    def on_fill(self, ctrl, line) -> None:
        for ext in self._on_fill:
            ext.on_fill(ctrl, line)

    def on_evict(self, ctrl, victim) -> None:
        for ext in self._on_evict:
            ext.on_evict(ctrl, victim)

    def on_invalidate(self, ctrl, block) -> int:
        words = 0
        for ext in self._on_invalidate:
            words += ext.on_invalidate(ctrl, block)
        return words

    def on_release(self, ctrl, marker) -> None:
        for ext in self._on_release:
            ext.on_release(ctrl, marker)

    def on_home_reply(self, ctrl, msg, t) -> bool:
        for ext in self._on_home_reply:
            if ext.on_home_reply(ctrl, msg, t):
                return True
        return False

    def cache_outstanding(self, ctrl) -> int:
        return sum(ext.cache_outstanding(ctrl) for ext in self._cache_outstanding)

    # -- home-side dispatch ---------------------------------------------

    def home_request_types(self) -> frozenset:
        types: frozenset = frozenset()
        for ext in self.extensions:
            types |= ext.home_request_types()
        return types

    def on_home_request(self, home, msg, entry, t) -> bool:
        for ext in self._on_home_request:
            if ext.on_home_request(home, msg, entry, t):
                return True
        return False

    def grants_exclusive_read(self, home, entry, msg) -> bool:
        for ext in self._grants_exclusive_read:
            if ext.grants_exclusive_read(home, entry, msg):
                return True
        return False

    def on_ownership_requested(self, home, entry, msg) -> None:
        for ext in self._on_ownership_requested:
            ext.on_ownership_requested(home, entry, msg)

    def on_ownership_granted(self, home, entry, req) -> None:
        for ext in self._on_ownership_granted:
            ext.on_ownership_granted(home, entry, req)

    def on_exclusive_read_transfer(self, home, entry, msg) -> None:
        for ext in self._on_exclusive_read_transfer:
            ext.on_exclusive_read_transfer(home, entry, msg)

    def on_home_ack(self, home, msg, xact, entry, t) -> bool:
        for ext in self._on_home_ack:
            if ext.on_home_ack(home, msg, xact, entry, t):
                return True
        return False

    def absorb_ack_payload(self, home, msg, t) -> int:
        for ext in self._absorb_ack_payload:
            t = ext.absorb_ack_payload(home, msg, t)
        return t

    # -- reporting ------------------------------------------------------

    def stats(self) -> dict[str, int]:
        """Merged ``stats_hooks`` of every extension, keys prefixed
        with the extension name (``"P.degree_increases"``)."""
        out: dict[str, int] = {}
        for ext in self.extensions:
            for key, value in ext.stats_hooks().items():
                out[f"{ext.name}.{key}"] = value
        return out
