"""Name-keyed registry of protocol extensions.

Every composable protocol extension (the paper's P, CW and M, plus any
drop-ins) registers here under its canonical short name.  The registry
is the single source of truth for

* which extension names exist (``registered_extensions``),
* their deterministic pipeline order (``ExtensionInfo.order``),
* how a :class:`~repro.config.ProtocolConfig` maps to live extension
  instances (``build_pipeline``),
* parsing/canonicalizing user-facing combination strings such as
  ``"p,cw,m"`` or ``"P+CW+M"`` (``resolve_names``).

Adding a new extension is a one-file affair: subclass
:class:`~repro.core.extensions.base.ProtocolExtension`, call
:func:`register_extension` at import time, and import the module from
:mod:`repro.core.extensions`.  ``ProtocolConfig.from_name``, the CLI
``--extensions`` flag, ``RunSpec`` hashing and ``api.compare_protocols``
all pick it up from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.extensions.base import ExtensionPipeline, ProtocolExtension

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids cycles
    from repro.config import ProtocolConfig


class UnknownExtensionError(ValueError):
    """A protocol/extension name is not in the registry."""

    def __init__(self, name: str) -> None:
        known = ", ".join(sorted(_REGISTRY))
        super().__init__(
            f"unknown protocol extension {name!r}; registered extensions: {known}"
        )
        self.name = name


@dataclass(frozen=True)
class ExtensionInfo:
    """Registry record for one protocol extension."""

    #: canonical short name, e.g. ``"P"`` (case-insensitive on input).
    name: str
    #: pipeline position; extensions dispatch in ascending (order, name).
    order: int
    #: one-line human description for ``repro list-extensions``.
    description: str
    #: builds one per-node extension instance for a machine config.
    factory: Callable[["ProtocolConfig"], ProtocolExtension]
    #: is the extension enabled under this protocol config?
    enabled: Callable[["ProtocolConfig"], bool]
    #: dataclass holding the extension's tunables (None when none).
    config_cls: type | None = None
    #: names that cannot be combined with this extension.
    conflicts: frozenset[str] = frozenset()
    #: capability tags consulted by config/timing code, e.g.
    #: ``"prefetch"`` (uses the deeper SLWB) or ``"requires_rc"``
    #: (invalid under sequential consistency).
    traits: frozenset[str] = field(default_factory=frozenset)


_REGISTRY: dict[str, ExtensionInfo] = {}


def register_extension(info: ExtensionInfo) -> ExtensionInfo:
    """Add ``info`` to the registry (module-import time)."""
    key = info.name.upper()
    if key in _REGISTRY:
        raise ValueError(f"extension {info.name!r} registered twice")
    _REGISTRY[key] = info
    return info


def extension_info(name: str) -> ExtensionInfo:
    """The registry record for ``name`` (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise UnknownExtensionError(name) from None


def registered_extensions() -> tuple[ExtensionInfo, ...]:
    """All registered extensions in deterministic pipeline order."""
    return tuple(sorted(_REGISTRY.values(), key=lambda i: (i.order, i.name)))


def resolve_names(names: Iterable[str]) -> tuple[str, ...]:
    """Canonicalize a collection of extension names.

    Case-insensitive, deduplicating, conflict-checking; the result is
    in registry (pipeline) order, so ``resolve_names(["m", "P"])``
    yields ``("P", "M")`` and hashes/cache-keys stay stable regardless
    of how the user spelled the combination.
    """
    chosen: dict[str, ExtensionInfo] = {}
    for raw in names:
        info = extension_info(raw)
        chosen[info.name] = info
    for info in chosen.values():
        hit = chosen.keys() & {c.upper() for c in info.conflicts}
        if hit:
            raise ValueError(
                f"extension {info.name!r} cannot be combined with "
                f"{sorted(hit)}"
            )
    return tuple(i.name for i in registered_extensions() if i.name in chosen)


def build_pipeline(protocol: "ProtocolConfig") -> ExtensionPipeline:
    """One fresh per-node pipeline for ``protocol``.

    Instantiates every registered extension whose ``enabled`` predicate
    accepts the config, in deterministic registry order.  Each node
    gets its own pipeline (extensions hold per-node state).
    """
    return ExtensionPipeline(
        tuple(
            info.factory(protocol)
            for info in registered_extensions()
            if info.enabled(protocol)
        )
    )
