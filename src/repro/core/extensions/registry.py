"""Name-keyed registry of protocol extensions.

Every composable protocol extension (the paper's P, CW and M, plus any
drop-ins) registers here under its canonical short name.  The registry
is the single source of truth for

* which extension names exist (``registered_extensions``),
* their deterministic pipeline order (``ExtensionInfo.order``),
* how a :class:`~repro.config.ProtocolConfig` maps to live extension
  instances (``build_pipeline``),
* parsing/canonicalizing user-facing combination strings such as
  ``"p,cw,m"`` or ``"P+CW+M"`` (``resolve_names``).

Adding a new extension is a one-file affair: subclass
:class:`~repro.core.extensions.base.ProtocolExtension`, call
:func:`register_extension` at import time, and import the module from
:mod:`repro.core.extensions`.  ``ProtocolConfig.from_name``, the CLI
``--extensions`` flag, ``RunSpec`` hashing and ``api.compare_protocols``
all pick it up from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Iterable

from repro.core.extensions.base import ExtensionPipeline, ProtocolExtension

if TYPE_CHECKING:  # pragma: no cover - type hints only, avoids cycles
    from repro.config import ProtocolConfig


class UnknownExtensionError(ValueError):
    """A protocol/extension name is not in the registry."""

    def __init__(self, name: str) -> None:
        known = ", ".join(sorted(_REGISTRY))
        super().__init__(
            f"unknown protocol extension {name!r}; registered extensions: {known}"
        )
        self.name = name


class RegistryError(ValueError):
    """The extension registry's metadata is inconsistent (lint failure)."""


#: the machine-readable capability/verification traits an extension may
#: declare.  ``validate_registry`` rejects unknown names, so a typo in a
#: drop-in's metadata fails at import time instead of silently disabling
#: the behavior keyed on the trait.
#:
#: * ``prefetch`` -- uses the deeper SLWB budget (timing/config code);
#: * ``requires_rc`` -- invalid under sequential consistency;
#: * ``sync_sensitive`` -- has release/acquire-coupled behavior, so the
#:   model checker (:mod:`repro.verify`) adds lock/unlock operations to
#:   its alphabet when the combination is verified;
#: * ``speculative_reads`` -- issues non-demand read requests
#:   (prefetches), so verified state spaces include blocks the driving
#:   operations never named.
KNOWN_TRAITS = frozenset(
    {"prefetch", "requires_rc", "sync_sensitive", "speculative_reads"}
)


@dataclass(frozen=True)
class ExtensionInfo:
    """Registry record for one protocol extension."""

    #: canonical short name, e.g. ``"P"`` (case-insensitive on input).
    name: str
    #: pipeline position; extensions dispatch in ascending (order, name).
    order: int
    #: one-line human description for ``repro list-extensions``.
    description: str
    #: builds one per-node extension instance for a machine config.
    factory: Callable[["ProtocolConfig"], ProtocolExtension]
    #: is the extension enabled under this protocol config?
    enabled: Callable[["ProtocolConfig"], bool]
    #: dataclass holding the extension's tunables (None when none).
    config_cls: type | None = None
    #: names that cannot be combined with this extension.
    conflicts: frozenset[str] = frozenset()
    #: capability tags consulted by config/timing code, e.g.
    #: ``"prefetch"`` (uses the deeper SLWB) or ``"requires_rc"``
    #: (invalid under sequential consistency).
    traits: frozenset[str] = field(default_factory=frozenset)


_REGISTRY: dict[str, ExtensionInfo] = {}


def register_extension(info: ExtensionInfo) -> ExtensionInfo:
    """Add ``info`` to the registry (module-import time)."""
    key = info.name.upper()
    if key in _REGISTRY:
        raise ValueError(f"extension {info.name!r} registered twice")
    _REGISTRY[key] = info
    return info


def extension_info(name: str) -> ExtensionInfo:
    """The registry record for ``name`` (case-insensitive)."""
    try:
        return _REGISTRY[name.upper()]
    except KeyError:
        raise UnknownExtensionError(name) from None


def registered_extensions() -> tuple[ExtensionInfo, ...]:
    """All registered extensions in deterministic pipeline order."""
    return tuple(sorted(_REGISTRY.values(), key=lambda i: (i.order, i.name)))


def resolve_names(names: Iterable[str]) -> tuple[str, ...]:
    """Canonicalize a collection of extension names.

    Case-insensitive, deduplicating, conflict-checking; the result is
    in registry (pipeline) order, so ``resolve_names(["m", "P"])``
    yields ``("P", "M")`` and hashes/cache-keys stay stable regardless
    of how the user spelled the combination.
    """
    chosen: dict[str, ExtensionInfo] = {}
    for raw in names:
        info = extension_info(raw)
        chosen[info.name] = info
    for info in chosen.values():
        hit = chosen.keys() & {c.upper() for c in info.conflicts}
        if hit:
            raise ValueError(
                f"extension {info.name!r} cannot be combined with "
                f"{sorted(hit)}"
            )
    return tuple(i.name for i in registered_extensions() if i.name in chosen)


def validate_registry(
    registry: "dict[str, ExtensionInfo] | None" = None,
) -> None:
    """Lint the extension metadata; raise :class:`RegistryError` on rot.

    Checked properties (each with a dedicated unit test):

    * every ``conflicts`` name resolves to a registered extension;
    * conflict declarations are symmetric (A conflicts B ⇒ B conflicts
      A), so ``resolve_names`` rejects a bad combination no matter
      which member the user names first;
    * ``order`` values are unique, so the pipeline dispatch order never
      depends on the alphabetical tiebreak;
    * every declared trait is in :data:`KNOWN_TRAITS`.

    Runs against the live registry at the end of
    :mod:`repro.core.extensions` import (after every built-in has
    registered), so a drop-in with rotten metadata fails fast.  Tests
    pass an explicit ``registry`` mapping to exercise violation
    classes without touching the global one.
    """
    reg = _REGISTRY if registry is None else registry
    problems: list[str] = []
    by_order: dict[int, list[str]] = {}
    for key, info in reg.items():
        by_order.setdefault(info.order, []).append(key)
        for trait in sorted(info.traits):
            if trait not in KNOWN_TRAITS:
                problems.append(
                    f"extension {key!r} declares unknown trait {trait!r}; "
                    f"known traits: {sorted(KNOWN_TRAITS)}"
                )
        for conflict in sorted(info.conflicts):
            other = reg.get(conflict.upper())
            if other is None:
                problems.append(
                    f"extension {key!r} declares a conflict with "
                    f"unregistered extension {conflict!r}"
                )
            elif key not in {c.upper() for c in other.conflicts}:
                problems.append(
                    f"conflict between {key!r} and {conflict.upper()!r} "
                    f"is not symmetric: {conflict.upper()!r} does not "
                    f"declare {key!r} back"
                )
    for order, keys in sorted(by_order.items()):
        if len(keys) > 1:
            problems.append(
                f"extensions {sorted(keys)} share pipeline order {order}"
            )
    if problems:
        raise RegistryError(
            "extension registry metadata is inconsistent:\n  - "
            + "\n  - ".join(problems)
        )


def build_pipeline(protocol: "ProtocolConfig") -> ExtensionPipeline:
    """One fresh per-node pipeline for ``protocol``.

    Instantiates every registered extension whose ``enabled`` predicate
    accepts the config, in deterministic registry order.  Each node
    gets its own pipeline (extensions hold per-node state).
    """
    return ExtensionPipeline(
        tuple(
            info.factory(protocol)
            for info in registered_extensions()
            if info.enabled(protocol)
        )
    )
