"""PF: fixed-degree sequential prefetching (ref [3]'s baseline).

The drop-in extension the registry exists for: ref [3] compares
*fixed* sequential prefetching (a constant degree K) against the
adaptive scheme that became the paper's P.  The engine already
supports it (``PrefetchConfig.adaptive=False`` freezes the degree);
this one-file extension exposes it as a first-class protocol name, so

    python -m repro run --app mp3d --extensions pf

simulates fixed-degree prefetching, composable with CW and M like any
other extension.  It conflicts with P (two prefetchers would race for
the same SLWB entries and issue duplicate requests).

Enable it by listing ``PF`` in ``ProtocolConfig.extra`` -- exactly
what ``ProtocolConfig.from_name("PF")`` and the ``--extensions`` CLI
flag do.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import PrefetchConfig
from repro.core.extensions.prefetch_ext import PrefetchExtension
from repro.core.extensions.registry import ExtensionInfo, register_extension


class FixedPrefetchExtension(PrefetchExtension):
    """Sequential prefetching with a constant degree K."""

    name = "PF"

    def __init__(self, params: PrefetchConfig) -> None:
        super().__init__(replace(params, adaptive=False))


register_extension(
    ExtensionInfo(
        name="PF",
        order=15,
        description="fixed-degree sequential prefetching (ref [3])",
        factory=lambda proto: FixedPrefetchExtension(proto.prefetch_params),
        enabled=lambda proto: "PF" in proto.extra,
        config_cls=PrefetchConfig,
        conflicts=frozenset({"P"}),
        traits=frozenset({"prefetch", "speculative_reads"}),
    )
)
