"""P: adaptive sequential prefetching as a protocol extension (§3.1).

Requester-side only.  The numeric policy (degree adaptation, the three
modulo-16 counters of Table 1) stays in
:class:`repro.core.prefetch.AdaptivePrefetcher`; this extension is the
protocol glue that was previously hard-wired into the cache
controller:

* a demand miss trains the engine and fans out prefetch requests for
  the K sequential successor blocks (``on_miss_issued``),
* the first reference to a prefetched line counts it useful
  (``on_read_hit``), as does a demand read merging into an in-flight
  prefetch (``on_read_merged``, a "late prefetch hit"),
* prefetches are hints: they are dropped when the SLWB is under
  pressure, never queued.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import PrefetchConfig
from repro.core.extensions.base import ProtocolExtension
from repro.core.extensions.registry import ExtensionInfo, register_extension
from repro.core.prefetch import AdaptivePrefetcher

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cache_ctrl import CacheController, _PendingRead
    from repro.mem.slc import CacheLine


class PrefetchExtension(ProtocolExtension):
    """Protocol glue for (adaptive) sequential prefetching."""

    name = "P"

    def __init__(self, params: PrefetchConfig) -> None:
        self.params = params
        #: the adaptation engine; built per cache in :meth:`attach_cache`.
        self.engine: AdaptivePrefetcher | None = None

    # -- cache side -----------------------------------------------------

    def attach_cache(self, ctrl: "CacheController") -> None:
        self.engine = AdaptivePrefetcher(self.params)

    def on_read_hit(self, ctrl: "CacheController", line: "CacheLine") -> None:
        if line.prefetched:
            line.prefetched = False
            ctrl.stats.useful_prefetches += 1
            self.engine.on_useful_prefetch()

    def on_read_merged(
        self, ctrl: "CacheController", pending: "_PendingRead"
    ) -> None:
        if pending.is_prefetch and not pending.merged_prefetch:
            pending.merged_prefetch = True
            ctrl.stats.late_prefetch_hits += 1
            self.engine.on_useful_prefetch()

    def on_demand_miss(self, ctrl: "CacheController", block: int) -> None:
        self.engine.on_demand_miss(
            predecessor_cached=ctrl.slc.lookup(block - 1) is not None
        )

    def on_miss_issued(self, ctrl: "CacheController", block: int) -> None:
        engine = self.engine
        if not engine.enabled:
            return
        for cand in engine.candidates(block):
            if ctrl.slc.lookup(cand) is not None:
                continue
            if ctrl.has_pending(cand):
                continue
            if not ctrl.slwb.has_room():
                break  # prefetches are hints: drop under pressure
            ctrl.issue_prefetch(cand)
            engine.on_prefetch_issued()

    # -- reporting ------------------------------------------------------

    def stats_hooks(self) -> dict[str, int]:
        if self.engine is None:
            return {}
        return {
            "degree": self.engine.degree,
            "degree_increases": self.engine.degree_increases,
            "degree_decreases": self.engine.degree_decreases,
        }


register_extension(
    ExtensionInfo(
        name="P",
        order=10,
        description="adaptive sequential prefetching (paper §3.1)",
        factory=lambda proto: PrefetchExtension(proto.prefetch_params),
        enabled=lambda proto: proto.prefetch,
        config_cls=PrefetchConfig,
        conflicts=frozenset({"PF"}),
        traits=frozenset({"prefetch", "speculative_reads"}),
    )
)
