"""M: migratory-sharing optimization as a protocol extension
(§3.2 / §3.4).

Home-side only.  The detection/reversion *policy* stays in
:mod:`repro.core.migratory`; this extension wires it into the base
write-invalidate protocol:

* an ownership request from a sharer, with exactly one other copy
  belonging to the previous writer, marks the block migratory
  (``on_ownership_requested``, §3.2),
* a read miss to a migratory block is served with an exclusive
  (MIG_CLEAN) copy so the later write needs no ownership transaction
  (``grants_exclusive_read``); a *second* reader on a clean migratory
  block means read sharing and reverts the prediction,
* an exclusive grant fetched away from an owner that never wrote it
  was mispredicted and reverts too (``on_exclusive_read_transfer``).

Under CW+M the home never sees ownership requests for shared data;
detection then runs on update sequences inside the CW extension's
flush transactions (§3.4), still via the policy functions of
:mod:`repro.core.migratory`, and still counted in the home's
``migratory_detections`` / ``migratory_reversions`` counters.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.config import ProtocolConfig
from repro.core import migratory
from repro.core.extensions.base import ProtocolExtension
from repro.core.extensions.registry import ExtensionInfo, register_extension
from repro.core.states import MemoryState

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.directory import DirectoryEntry
    from repro.core.home import HomeController
    from repro.core.messages import Message


class MigratoryExtension(ProtocolExtension):
    """Migratory detection, exclusive read grants and reversion."""

    name = "M"

    def __init__(self, protocol: ProtocolConfig) -> None:
        self._protocol = protocol
        self._home: "HomeController | None" = None

    def attach_home(self, home: "HomeController") -> None:
        self._home = home

    def grants_exclusive_read(
        self, home: "HomeController", entry: "DirectoryEntry", msg: "Message"
    ) -> bool:
        if not migratory.grants_exclusive_read(self._protocol, entry):
            return False
        if entry.state is MemoryState.CLEAN and migratory.reverts_on_second_reader(
            entry, msg.src
        ):
            # a second reader on a clean migratory block: the pattern
            # is no longer migratory.
            entry.migratory = False
            home.migratory_reversions += 1
            return False
        return True

    def on_ownership_requested(
        self, home: "HomeController", entry: "DirectoryEntry", msg: "Message"
    ) -> None:
        if migratory.detects_on_ownership(self._protocol, entry, msg):
            # read/write by last_writer followed by read/write by
            # msg.src: the block migrates (§3.2, refs [2, 12]).
            entry.migratory = True
            home.migratory_detections += 1

    def on_exclusive_read_transfer(
        self, home: "HomeController", entry: "DirectoryEntry", msg: "Message"
    ) -> None:
        if migratory.reverts_on_unmodified_transfer(msg.was_modified):
            # the previous owner never wrote: revert (§3.2)
            entry.migratory = False
            home.migratory_reversions += 1

    def stats_hooks(self) -> dict[str, int]:
        if self._home is None:
            return {}
        return {
            "detections": self._home.migratory_detections,
            "reversions": self._home.migratory_reversions,
        }


register_extension(
    ExtensionInfo(
        name="M",
        order=30,
        description="migratory-sharing optimization (paper §3.2/§3.4)",
        factory=MigratoryExtension,
        enabled=lambda proto: proto.migratory,
    )
)
