"""CW: competitive update + write cache as a protocol extension
(§3.3 / §3.4).

Both halves of the mechanism live here:

**Requester side** -- writes to shared or invalid blocks are absorbed by
the per-node write cache (or, in ref [10]'s classic variant, sent as
single-word updates); full write-cache entries flush to the home as
``WC_FLUSH`` requests; releases drain the write cache and wait for
every in-flight flush; incoming ``UPD_PROP`` messages run the
competitive-counter discipline of
:class:`repro.core.competitive.CompetitivePolicy`, and ``MIG_QUERY``
interrogations (§3.4, only sent when M is also enabled) answer whether
this node modified the block since the last update.

**Home side** -- ``WC_FLUSH`` requests update memory and propagate
selective-word updates to the other sharers (transaction kind
``upd``); a flusher that is the sole remaining sharer may be granted
exclusivity; a flush to a dirty-elsewhere block first demotes the
owner (``fetch_flush``); under CW+M suspicious update sequences
trigger copy-holder interrogation (``migq``) and, when every holder
gave up its copy, migratory detection.

The update/invalidate *policy* stays in
:mod:`repro.core.competitive`; the migratory-candidate heuristics stay
in :mod:`repro.core.migratory`.  This module is the protocol mechanism
that used to be hard-wired into the cache and home controllers.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.config import CompetitiveConfig, ProtocolConfig
from repro.core import competitive, migratory
from repro.core.competitive import CompetitivePolicy
from repro.core.extensions.base import ProtocolExtension
from repro.core.extensions.registry import ExtensionInfo, register_extension
from repro.core.messages import Message, MsgType
from repro.core.states import CacheState, MemoryState
from repro.core.transactions import Xact
from repro.mem.write_buffers import SlwbKind
from repro.mem.write_cache import WriteCache, WriteCacheEntry
from repro.sim.engine import SimulationError

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.cache_ctrl import CacheController, SyncMarker
    from repro.core.directory import DirectoryEntry
    from repro.core.home import HomeController
    from repro.mem.slc import CacheLine


class CompetitiveExtension(ProtocolExtension):
    """Competitive update with a per-node write cache."""

    name = "CW"

    def __init__(self, protocol: ProtocolConfig) -> None:
        self._protocol = protocol
        self._params = protocol.competitive_params
        self.policy = CompetitivePolicy(self._params)
        self.wcache: WriteCache | None = None
        self._ctrl: "CacheController | None" = None
        #: write-cache flushes in flight: block -> FIFO of SLWB ids
        self._pending_flushes: dict[int, deque[int]] = {}
        #: flush entries waiting for a free SLWB slot
        self._flush_queue: deque[tuple[WriteCacheEntry, list]] = deque()
        #: demand reads parked until a pending flush of the block acks
        self._read_waiters: dict[int, list[tuple[Callable[[], None], int]]] = {}

    # ==================================================================
    # requester side
    # ==================================================================

    def attach_cache(self, ctrl: "CacheController") -> None:
        self._ctrl = ctrl
        if self._params.use_write_cache:
            self.wcache = WriteCache(ctrl.cfg.cache.write_cache_blocks)

    def _flush_in_flight(self, block: int) -> bool:
        if block in self._pending_flushes:
            return True
        return any(entry.block == block for entry, _m in self._flush_queue)

    # -- reads ----------------------------------------------------------

    def on_read_hit(self, ctrl: "CacheController", line: "CacheLine") -> None:
        self.policy.on_local_access(line)

    def absorbs_read(self, ctrl: "CacheController", block: int) -> bool:
        # read hit in the write cache (§3.3)
        return self.wcache is not None and self.wcache.lookup(block) is not None

    def defers_read(self, ctrl, block, on_done, t0) -> bool:
        if not self._flush_in_flight(block):
            return False
        # wait for the write-cache flush to settle: its WC_ACK may
        # grant (or force relinquishing) exclusivity, which must be
        # ordered before a new read request to the home.
        self._read_waiters.setdefault(block, []).append((on_done, t0))
        return True

    # -- writes ---------------------------------------------------------

    def on_write(self, ctrl, block, word, line) -> bool | None:
        if self.wcache is not None:
            self._touch(line)
            victim = self.wcache.write(block, word, had_copy=line is not None)
            if victim is not None:
                self._queue_flush(victim, markers=[])
            return True
        # ref [10]'s protocol: no write cache, every write to a
        # shared/invalid block propagates as a single-word update
        if not ctrl.slwb.has_room():
            return False
        self._touch(line)
        self._issue_flush(
            WriteCacheEntry(
                block=block, dirty_words={word}, had_copy=line is not None
            ),
            markers=[],
        )
        return True

    def _touch(self, line: "CacheLine | None") -> None:
        if line is not None:
            self.policy.on_local_access(line, modifying=True)

    def on_fill(self, ctrl: "CacheController", line: "CacheLine") -> None:
        self.policy.on_fill(line)

    def on_invalidate(self, ctrl: "CacheController", block: int) -> int:
        if self.wcache is not None:
            entry = self.wcache.remove(block)
            if entry is not None:
                return len(entry.dirty_words)
        return 0

    # -- flushes --------------------------------------------------------

    def _queue_flush(self, entry: WriteCacheEntry, markers: list) -> None:
        ctrl = self._ctrl
        if ctrl.slwb.has_room():
            self._issue_flush(entry, markers)
        else:
            self._flush_queue.append((entry, markers))
            ctrl.when_slwb_room(self._drain_flush_queue)

    def _drain_flush_queue(self) -> None:
        while self._flush_queue and self._ctrl.slwb.has_room():
            entry, markers = self._flush_queue.popleft()
            self._issue_flush(entry, markers)

    def _issue_flush(self, entry: WriteCacheEntry, markers: list) -> None:
        ctrl = self._ctrl
        eid = ctrl.slwb.alloc(SlwbKind.WC_FLUSH)
        ctrl.stats.write_cache_flushes += 1
        self._pending_flushes.setdefault(entry.block, deque()).append(eid)
        for marker in markers:
            ctrl.hold_marker(eid, marker)
        ctrl.send_home(
            MsgType.WC_FLUSH, entry.block, words=len(entry.dirty_words)
        )

    # -- synchronization ------------------------------------------------

    def on_release(self, ctrl: "CacheController", marker: "SyncMarker") -> None:
        waiting_eids: list[int] = []
        for fifo in self._pending_flushes.values():
            waiting_eids.extend(fifo)
        if self.wcache is not None:
            for entry in self.wcache.drain():
                self._queue_flush(entry, markers=[marker])
                marker.outstanding += 1
        for _entry, markers in self._flush_queue:
            if marker not in markers:
                markers.append(marker)
                marker.outstanding += 1
        for eid in waiting_eids:
            ctrl.hold_marker(eid, marker)
            marker.outstanding += 1

    def cache_outstanding(self, ctrl: "CacheController") -> int:
        return (
            sum(len(f) for f in self._pending_flushes.values())
            + len(self._flush_queue)
        )

    # -- home-originated messages ---------------------------------------

    def on_home_reply(self, ctrl, msg: Message, t: int) -> bool:
        if msg.mtype is MsgType.UPD_PROP:
            self._on_update(ctrl, msg, t)
            return True
        if msg.mtype is MsgType.MIG_QUERY:
            self._on_mig_query(ctrl, msg, t)
            return True
        if msg.mtype is MsgType.WC_ACK:
            self._on_wc_ack(ctrl, msg, t)
            return True
        return False

    def _on_update(self, ctrl: "CacheController", msg: Message, t: int) -> None:
        block = msg.block
        ctrl.stats.updates_received += 1
        t1 = ctrl.slc_finish(t)
        line = ctrl.slc.lookup(block)
        if line is None:
            drop = not ctrl.has_pending_read(block)
        else:
            drop = self.policy.on_update(line)
            # force the next local read through to the SLC so local
            # activity remains visible to the competitive counter
            ctrl.flc.invalidate(block)
            if drop:
                ctrl.slc.invalidate(block)
                ctrl.classifier.on_coherence_loss(block)
                ctrl.stats.updates_dropped += 1
        ctrl.reply(MsgType.UPD_ACK, msg.src, block, t1, drop=drop)

    def _on_mig_query(self, ctrl: "CacheController", msg: Message, t: int) -> None:
        block = msg.block
        t1 = ctrl.slc_finish(t)
        line = ctrl.slc.lookup(block)
        words = 0
        if line is None and ctrl.has_pending_read(block):
            # a fresh copy is already on its way to us: we are a
            # reader, not a modifier -- keep the (incoming) copy
            give_up = False
        elif line is None:
            give_up = True
        elif line.modified_since_update or (
            self.wcache is not None and self.wcache.lookup(block) is not None
        ):
            # modified since the last update from home: give up (§3.4)
            give_up = True
            if self.wcache is not None:
                entry = self.wcache.remove(block)
                if entry is not None:
                    words = len(entry.dirty_words)
            ctrl.slc.invalidate(block)
            ctrl.flc.invalidate(block)
            ctrl.classifier.on_coherence_loss(block)
        else:
            give_up = False
        ctrl.reply(
            MsgType.MIG_RPL, msg.src, block, t1, give_up=give_up, words=words
        )

    def _on_wc_ack(self, ctrl: "CacheController", msg: Message, t: int) -> None:
        block = msg.block
        fifo = self._pending_flushes.get(block)
        if not fifo:
            raise SimulationError(f"stray WC_ACK for block {block}")
        eid = fifo.popleft()
        if not fifo:
            del self._pending_flushes[block]
        if msg.exclusive:
            line = ctrl.slc.lookup(block)
            if line is not None:
                line.state = CacheState.DIRTY
                line.modified_since_update = True
            else:
                # the SLC copy was victimized while the flush was in
                # flight: relinquish the surprise ownership right away
                ctrl.relinquish_ownership(block)
        ctrl.release_slwb(eid)
        if not self._flush_in_flight(block):
            for cb, t0 in self._read_waiters.pop(block, []):
                ctrl.retry_read(block, cb, t0)

    # ==================================================================
    # home side
    # ==================================================================

    def home_request_types(self) -> frozenset:
        return frozenset({MsgType.WC_FLUSH})

    def on_home_request(
        self, home: "HomeController", msg: Message, entry: "DirectoryEntry", t: int
    ) -> bool:
        if msg.mtype is not MsgType.WC_FLUSH:
            return False
        src = msg.src
        block = msg.block
        if entry.state is MemoryState.MODIFIED:
            if entry.owner == src:
                # flusher already owns the block exclusively
                home.reply(
                    MsgType.WC_ACK, src, block,
                    home.mem_access(t, block), exclusive=True,
                )
                return True
            # another node holds it dirty: demote it first, then replay
            t2 = home.mem_access(t, block)
            home.open_xact(
                block, Xact(kind="fetch_flush", orig=msg, old_owner=entry.owner)
            )
            # requester=-1: demote and ack home, no data forwarding
            home.reply(MsgType.FETCH, entry.owner, block, t2, requester=-1)
            return True
        t2 = home.mem_access(t, block)
        others = entry.sharers - {src}
        wants_migq = migratory.wants_interrogation(self._protocol, entry, msg)
        entry.last_updater = src
        if wants_migq:
            # §3.4: interrogate every other copy holder
            home.open_xact(
                block,
                Xact(kind="migq", orig=msg, acks_left=len(others),
                     targets=set(others)),
            )
            for node in sorted(others):
                home.reply(MsgType.MIG_QUERY, node, block, t2)
            return True
        if not others:
            self._finish_flush_sole(home, msg, entry, t2)
            return True
        home.open_xact(
            block,
            Xact(kind="upd", orig=msg, acks_left=len(others),
                 targets=set(others)),
        )
        for node in sorted(others):
            home.reply(MsgType.UPD_PROP, node, block, t2, words=msg.words)
        return True

    def on_home_ack(
        self, home: "HomeController", msg: Message, xact: Xact,
        entry: "DirectoryEntry", t: int,
    ) -> bool:
        if msg.mtype is MsgType.UPD_ACK and xact.kind == "upd":
            xact.acks_left -= 1
            if msg.drop:
                xact.droppers.add(msg.src)
            if xact.acks_left == 0:
                self._finish_update(home, msg.block, xact, entry, t)
            return True
        if msg.mtype is MsgType.MIG_RPL and xact.kind == "migq":
            if msg.words:
                t = home.mem_access(t, msg.block)  # piggybacked words
            xact.acks_left -= 1
            if msg.give_up:
                xact.give_ups.add(msg.src)
            if xact.acks_left == 0:
                self._finish_interrogation(home, msg.block, xact, entry, t)
            return True
        if msg.mtype is MsgType.XFER_ACK and xact.kind == "fetch_flush":
            self._finish_fetch_flush(home, msg, xact, entry, t)
            return True
        return False

    def absorb_ack_payload(
        self, home: "HomeController", msg: Message, t: int
    ) -> int:
        if msg.words:
            # apply write-cache words piggybacked on the INV_ACK
            return home.mem_access(t, msg.block)
        return t

    # -- transaction completion -----------------------------------------

    def _finish_fetch_flush(
        self, home: "HomeController", msg: Message, xact: Xact,
        entry: "DirectoryEntry", t: int,
    ) -> None:
        if msg.was_modified:
            t = home.mem_access(t, msg.block)  # absorb the writeback
        entry.state = MemoryState.CLEAN
        entry.owner = None
        entry.reset_sharers()
        if not msg.drop and xact.old_owner is not None:
            entry.sharers.add(xact.old_owner)
        home.close_xact(msg.block)
        home.process_request(xact.orig, t)
        home.drain_pending(msg.block)

    def _finish_update(
        self, home: "HomeController", block: int, xact: Xact,
        entry: "DirectoryEntry", t: int,
    ) -> None:
        entry.sharers -= xact.droppers
        self._finish_flush_sole_or_shared(home, block, xact, entry, t)

    def _finish_interrogation(
        self, home: "HomeController", block: int, xact: Xact,
        entry: "DirectoryEntry", t: int,
    ) -> None:
        src = xact.orig.src
        if migratory.confirms_interrogation(xact.targets, xact.give_ups):
            # every other holder gave up its copy: migratory (§3.4)
            entry.sharers -= xact.give_ups
            entry.migratory = True
            home.migratory_detections += 1
            self._finish_flush_sole_or_shared(home, block, xact, entry, t)
            return
        entry.sharers -= xact.give_ups
        remaining = entry.sharers - {src}
        if not remaining:
            self._finish_flush_sole_or_shared(home, block, xact, entry, t)
            return
        # not migratory: continue as a normal update propagation
        xact.kind = "upd"
        xact.acks_left = len(remaining)
        xact.targets = set(remaining)
        xact.droppers = set()
        for node in sorted(remaining):
            home.reply(MsgType.UPD_PROP, node, block, t, words=xact.orig.words)

    def _finish_flush_sole_or_shared(
        self, home: "HomeController", block: int, xact: Xact,
        entry: "DirectoryEntry", t: int,
    ) -> None:
        src = xact.orig.src
        others = entry.sharers - {src}
        if not others:
            self._finish_flush_sole(home, xact.orig, entry, t)
        else:
            home.reply(MsgType.WC_ACK, src, block, t, exclusive=False)
        home.close_xact(block)
        home.drain_pending(block)

    def _finish_flush_sole(
        self, home: "HomeController", msg: Message,
        entry: "DirectoryEntry", t: int,
    ) -> None:
        """No other sharer remains: maybe grant exclusivity (§3.3).

        Migratory blocks (CW+M, §3.4) always migrate to the writer so
        that update propagation stops; otherwise exclusivity is an
        optional traffic optimization (see CompetitiveConfig).
        """
        src = msg.src
        exclusive = competitive.grants_exclusivity_on_flush(
            self._params.exclusive_grant, entry, src
        )
        if exclusive:
            entry.state = MemoryState.MODIFIED
            entry.owner = src
            entry.sharers.clear()
            entry.last_writer = src
        home.reply(MsgType.WC_ACK, src, msg.block, t, exclusive=exclusive)

    # -- reporting ------------------------------------------------------

    def stats_hooks(self) -> dict[str, int]:
        return {
            "pending_flushes": sum(
                len(f) for f in self._pending_flushes.values()
            ),
            "queued_flushes": len(self._flush_queue),
        }


register_extension(
    ExtensionInfo(
        name="CW",
        order=20,
        description="competitive update + write cache (paper §3.3/§3.4)",
        factory=CompetitiveExtension,
        enabled=lambda proto: proto.competitive_update,
        config_cls=CompetitiveConfig,
        traits=frozenset({"requires_rc", "sync_sensitive"}),
    )
)
