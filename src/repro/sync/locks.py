"""Queue-based lock mechanism at memory (paper §4).

"Synchronization is based on a queue-based lock mechanism at memory
similar to the one implemented in DASH, with a single lock variable per
memory block."  The lock state lives at the home node of the lock
variable: a request to a held lock is queued there, and the grant is
sent directly to the next waiter when the holder releases.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field


@dataclass
class LockState:
    """State of one lock variable at its home memory module."""

    held: bool = False
    holder: int | None = None
    queue: deque[int] = field(default_factory=deque)


class LockTable:
    """All lock variables homed at one node."""

    def __init__(self) -> None:
        self._locks: dict[int, LockState] = {}
        self.grants = 0
        self.queued_requests = 0

    def _lock(self, addr: int) -> LockState:
        state = self._locks.get(addr)
        if state is None:
            state = LockState()
            self._locks[addr] = state
        return state

    def request(self, addr: int, node: int) -> bool:
        """Try to take the lock for ``node``; False means queued."""
        lock = self._lock(addr)
        if not lock.held:
            lock.held = True
            lock.holder = node
            self.grants += 1
            return True
        lock.queue.append(node)
        self.queued_requests += 1
        return False

    def release(self, addr: int, node: int) -> int | None:
        """Release the lock; returns the next node to grant to, if any."""
        lock = self._lock(addr)
        if not lock.held or lock.holder != node:
            raise ValueError(
                f"node {node} released lock {addr:#x} held by {lock.holder}"
            )
        if lock.queue:
            nxt = lock.queue.popleft()
            lock.holder = nxt
            self.grants += 1
            return nxt
        lock.held = False
        lock.holder = None
        return None

    def holder_of(self, addr: int) -> int | None:
        """Current holder (for invariant checks)."""
        lock = self._locks.get(addr)
        return lock.holder if lock else None
