"""Synchronization hardware: queue-based locks and barriers at memory."""

from repro.sync.barriers import BarrierTable
from repro.sync.locks import LockTable

__all__ = ["BarrierTable", "LockTable"]
