"""Centralized sense-reversing barriers.

Each barrier id is served by a counter at a home node.  Arrivals
accumulate; when the expected count is reached every waiter receives a
wake-up message and the episode counter advances so the barrier can be
reused immediately.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class BarrierState:
    """One barrier's counter and waiter list."""

    expected: int
    arrived: list[int] = field(default_factory=list)
    episode: int = 0


class BarrierTable:
    """All barriers homed at one node."""

    def __init__(self) -> None:
        self._barriers: dict[int, BarrierState] = {}
        self.episodes_completed = 0

    def arrive(self, bar_id: int, node: int, expected: int) -> list[int] | None:
        """Register an arrival; returns the wake list when complete."""
        state = self._barriers.get(bar_id)
        if state is None:
            state = BarrierState(expected=expected)
            self._barriers[bar_id] = state
        if state.expected != expected:
            raise ValueError(
                f"barrier {bar_id}: expected-count mismatch "
                f"({state.expected} vs {expected})"
            )
        state.arrived.append(node)
        if len(state.arrived) >= state.expected:
            wake = list(state.arrived)
            state.arrived.clear()
            state.episode += 1
            self.episodes_completed += 1
            return wake
        return None

    def waiting(self, bar_id: int) -> int:
        """Number of processors currently parked at ``bar_id``."""
        state = self._barriers.get(bar_id)
        return len(state.arrived) if state else 0
