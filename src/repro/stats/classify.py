"""Cold / replacement / coherence miss classification.

The classic per-cache rule the paper's methodology (ref [3]) relies on:

* **cold** -- the cache has never held the block,
* **coherence** -- the copy was removed by a coherence action
  (invalidation, fetch-away, competitive-update self-invalidation),
* **replacement** -- the copy was victimized by a conflict/capacity
  eviction.
"""

from __future__ import annotations


class MissClassifier:
    """Tracks why each block is absent from one cache."""

    COLD = "cold"
    REPLACEMENT = "replacement"
    COHERENCE = "coherence"

    def __init__(self) -> None:
        self._ever_cached: set[int] = set()
        self._lost_to_coherence: set[int] = set()
        self._lost_to_eviction: set[int] = set()

    def on_fill(self, block: int) -> None:
        """The cache gained a copy of ``block``."""
        self._ever_cached.add(block)
        self._lost_to_coherence.discard(block)
        self._lost_to_eviction.discard(block)

    def on_coherence_loss(self, block: int) -> None:
        """The copy was invalidated / fetched away / update-dropped."""
        self._lost_to_coherence.add(block)
        self._lost_to_eviction.discard(block)

    def on_eviction(self, block: int) -> None:
        """The copy was victimized by a replacement."""
        self._lost_to_eviction.add(block)
        self._lost_to_coherence.discard(block)

    def classify(self, block: int) -> str:
        """Why a miss to ``block`` occurred (call before :meth:`on_fill`)."""
        if block not in self._ever_cached:
            return self.COLD
        if block in self._lost_to_coherence:
            return self.COHERENCE
        return self.REPLACEMENT

    def ever_cached(self, block: int) -> bool:
        """True if the cache has ever held ``block``."""
        return block in self._ever_cached
