"""Sharing-pattern analysis of reference streams.

Classifies every shared block by how the processors use it -- the
taxonomy the protocol extensions are built around (paper §3, refs
[2, 12]):

* ``PRIVATE``           -- touched by one processor only,
* ``READ_ONLY``         -- multiple readers, no writer,
* ``MIGRATORY``         -- several processors both read *and* write
  it, in read-modify-write bursts (the §3.2 target),
* ``PRODUCER_CONSUMER`` -- written by few processors, read by a
  (mostly) disjoint, larger reader set (what CW keeps alive),
* ``READ_WRITE``        -- everything else (irregular read-write
  sharing, including false sharing).

The analysis is static (over the reference streams, before timing
simulation), which makes it ideal for validating that a synthetic
workload carries the sharing signature it claims.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Sequence

from repro.mem.addrmap import AddressMap


class Pattern(Enum):
    """Block-level sharing pattern."""

    PRIVATE = "private"
    READ_ONLY = "read-only"
    MIGRATORY = "migratory"
    PRODUCER_CONSUMER = "producer-consumer"
    READ_WRITE = "read-write"


@dataclass
class BlockUsage:
    """Per-block access facts gathered from the streams."""

    readers: set[int] = field(default_factory=set)
    writers: set[int] = field(default_factory=set)
    reads: int = 0
    writes: int = 0
    #: per processor: number of read->write bursts (a write following
    #: a read by the same processor with no other access in between
    #: *in its own stream*)
    rmw_bursts: Counter = field(default_factory=Counter)

    @property
    def sharers(self) -> set[int]:
        """All processors that touch the block."""
        return self.readers | self.writers


def collect_usage(
    streams: Sequence[Iterable[tuple]], amap: AddressMap
) -> dict[int, BlockUsage]:
    """Gather per-block usage facts from per-processor op streams."""
    usage: dict[int, BlockUsage] = {}
    for pid, ops in enumerate(streams):
        last_read_block: int | None = None
        for op in ops:
            kind = op[0]
            if kind not in ("read", "write"):
                if kind in ("acquire", "release", "barrier"):
                    last_read_block = None
                continue
            block = amap.block_of(op[1])
            info = usage.get(block)
            if info is None:
                info = BlockUsage()
                usage[block] = info
            if kind == "read":
                info.readers.add(pid)
                info.reads += 1
                last_read_block = block
            else:
                info.writers.add(pid)
                info.writes += 1
                if last_read_block == block:
                    info.rmw_bursts[pid] += 1
                last_read_block = None
    return usage


def classify_block(info: BlockUsage) -> Pattern:
    """Assign one of the five patterns to a block."""
    if len(info.sharers) <= 1:
        return Pattern.PRIVATE
    if not info.writers:
        return Pattern.READ_ONLY
    rw_procs = info.readers & info.writers
    if len(rw_procs) >= 2 and sum(info.rmw_bursts.values()) >= info.writes * 0.5:
        return Pattern.MIGRATORY
    pure_readers = info.readers - info.writers
    if info.writers and len(pure_readers) >= max(1, len(info.writers)):
        return Pattern.PRODUCER_CONSUMER
    return Pattern.READ_WRITE


@dataclass
class SharingProfile:
    """Machine-wide sharing census of one workload."""

    blocks: dict[int, Pattern]
    usage: dict[int, BlockUsage]

    def census(self) -> Counter:
        """Blocks per pattern."""
        return Counter(self.blocks.values())

    def reference_census(self) -> Counter:
        """References (reads+writes) per pattern -- what the memory
        system actually sees."""
        refs: Counter = Counter()
        for block, pattern in self.blocks.items():
            info = self.usage[block]
            refs[pattern] += info.reads + info.writes
        return refs

    def fraction_of_refs(self, pattern: Pattern) -> float:
        """Share of all references going to blocks of ``pattern``."""
        refs = self.reference_census()
        total = sum(refs.values())
        return refs[pattern] / total if total else 0.0

    def blocks_of(self, pattern: Pattern) -> list[int]:
        """All blocks classified as ``pattern``."""
        return [b for b, p in self.blocks.items() if p is pattern]


def analyze(
    streams: Sequence[Iterable[tuple]], amap: AddressMap
) -> SharingProfile:
    """Classify every block touched by the streams."""
    usage = collect_usage(streams, amap)
    blocks = {block: classify_block(info) for block, info in usage.items()}
    return SharingProfile(blocks=blocks, usage=usage)
