"""Statistics: time decomposition, miss classification, traffic,
epoch sampling, and sharing-pattern analysis."""

from repro.stats.classify import MissClassifier
from repro.stats.counters import (
    CacheStats,
    MachineStats,
    NetworkStats,
    ProcessorStats,
)
from repro.stats.epochs import Epoch, EpochSampler, sparkline
from repro.stats.sharing import Pattern, SharingProfile, analyze

__all__ = [
    "CacheStats",
    "Epoch",
    "EpochSampler",
    "MachineStats",
    "MissClassifier",
    "NetworkStats",
    "Pattern",
    "ProcessorStats",
    "SharingProfile",
    "analyze",
    "sparkline",
]
