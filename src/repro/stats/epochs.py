"""Epoch (time-series) statistics.

Samples the machine-wide cumulative counters at a fixed interval while
a simulation runs, yielding per-epoch miss-rate series.  This is the
instrument behind the paper's §3.1 observation that "the cold miss
rate does not necessarily decline with time ... true in general for
direct (i.e., non-iterative) solution methods", exemplified by LU and
Cholesky -- versus iterative applications like Ocean whose cold misses
vanish after the first sweep.

>>> system = System(cfg)
>>> sampler = EpochSampler.attach(system, interval=5_000)
>>> system.run(streams)
>>> for epoch in sampler.epochs():
...     print(epoch.end_time, epoch.cold_miss_rate)
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.system import System


@dataclass(frozen=True)
class Snapshot:
    """Cumulative machine counters at one instant."""

    time: int
    shared_refs: int
    cold: int
    replacement: int
    coherence: int


@dataclass(frozen=True)
class Epoch:
    """Differences between two consecutive snapshots."""

    start_time: int
    end_time: int
    shared_refs: int
    cold: int
    replacement: int
    coherence: int

    def _rate(self, count: int) -> float:
        return 100.0 * count / self.shared_refs if self.shared_refs else 0.0

    @property
    def cold_miss_rate(self) -> float:
        """Cold misses as % of the epoch's shared references."""
        return self._rate(self.cold)

    @property
    def coherence_miss_rate(self) -> float:
        """Coherence misses as % of the epoch's shared references."""
        return self._rate(self.coherence)

    @property
    def replacement_miss_rate(self) -> float:
        """Replacement misses as % of the epoch's shared references."""
        return self._rate(self.replacement)


class EpochSampler:
    """Periodic sampler of a running system's counters."""

    def __init__(self, system: System, interval: int) -> None:
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._system = system
        self._interval = interval
        self._snapshots: list[Snapshot] = [self._snap()]

    @classmethod
    def attach(cls, system: System, interval: int = 10_000) -> "EpochSampler":
        """Create a sampler and schedule it on ``system``'s clock."""
        sampler = cls(system, interval)
        system.sim.after(interval, sampler._tick)
        return sampler

    def _snap(self) -> Snapshot:
        stats = self._system.stats
        return Snapshot(
            time=self._system.sim.now,
            shared_refs=sum(p.shared_refs for p in stats.procs),
            cold=sum(c.cold_misses for c in stats.caches),
            replacement=sum(c.replacement_misses for c in stats.caches),
            coherence=sum(c.coherence_misses for c in stats.caches),
        )

    def _tick(self) -> None:
        self._snapshots.append(self._snap())
        if self._system._finished < self._system.cfg.n_procs:
            self._system.sim.after(self._interval, self._tick)

    @property
    def snapshots(self) -> list[Snapshot]:
        """All samples taken so far (first one at t=0)."""
        return list(self._snapshots)

    def epochs(self) -> list[Epoch]:
        """Per-interval differences, skipping empty trailing epochs."""
        out = []
        for a, b in zip(self._snapshots, self._snapshots[1:]):
            epoch = Epoch(
                start_time=a.time,
                end_time=b.time,
                shared_refs=b.shared_refs - a.shared_refs,
                cold=b.cold - a.cold,
                replacement=b.replacement - a.replacement,
                coherence=b.coherence - a.coherence,
            )
            out.append(epoch)
        while out and out[-1].shared_refs == 0:
            out.pop()
        return out


def sparkline(values: list[float], width: int = 60) -> str:
    """A coarse ASCII sparkline (resampled to ``width`` buckets)."""
    if not values:
        return ""
    glyphs = " .:-=+*#%@"
    top = max(values) or 1.0
    if len(values) > width:
        bucket = len(values) / width
        values = [
            values[int(i * bucket)] for i in range(width)
        ]
    return "".join(
        glyphs[min(len(glyphs) - 1, int(v / top * (len(glyphs) - 1)))]
        for v in values
    )
