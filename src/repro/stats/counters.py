"""Execution-time decomposition and event counters.

The paper decomposes execution time into busy time, read stall, write
stall, acquire stall and release stall (Figures 2 and 3), reports miss
rates as percentages of shared references (Table 2), and network
traffic in bytes normalized to BASIC (Figure 4).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

#: version of the ``MachineStats.to_dict`` payload.  Bump whenever a
#: counter is added, removed or changes meaning: deserialization
#: refuses older payloads, which invalidates stale cache entries.
STATS_SCHEMA_VERSION = 1


@dataclass(slots=True)
class ProcessorStats:
    """Per-processor time decomposition and reference counts."""

    busy: int = 0
    read_stall: int = 0
    write_stall: int = 0
    acquire_stall: int = 0
    release_stall: int = 0
    shared_reads: int = 0
    shared_writes: int = 0
    acquires: int = 0
    releases: int = 0
    barriers: int = 0
    finish_time: int = 0

    @property
    def shared_refs(self) -> int:
        """Shared data references (reads + writes)."""
        return self.shared_reads + self.shared_writes

    @property
    def total_time(self) -> int:
        """Sum of all accounted time buckets."""
        return (
            self.busy
            + self.read_stall
            + self.write_stall
            + self.acquire_stall
            + self.release_stall
        )


@dataclass(slots=True)
class CacheStats:
    """Per-node cache and protocol event counters."""

    demand_read_misses: int = 0
    cold_misses: int = 0
    replacement_misses: int = 0
    coherence_misses: int = 0
    #: demand reads that merged with an in-flight (prefetch) request.
    late_prefetch_hits: int = 0
    #: demand reads satisfied by store-to-load forwarding from the FLWB.
    flwb_forwards: int = 0
    prefetches_issued: int = 0
    useful_prefetches: int = 0
    ownership_requests: int = 0
    invalidations_received: int = 0
    updates_received: int = 0
    updates_dropped: int = 0
    write_cache_flushes: int = 0
    writebacks: int = 0
    read_miss_latency_total: int = 0
    read_miss_latency_count: int = 0

    @property
    def avg_read_miss_latency(self) -> float:
        """Mean demand-read-miss service time in pclocks."""
        if not self.read_miss_latency_count:
            return 0.0
        return self.read_miss_latency_total / self.read_miss_latency_count


@dataclass(slots=True)
class NetworkStats:
    """Global interconnect traffic counters."""

    messages: int = 0
    bytes: int = 0
    data_messages: int = 0
    by_type: dict[str, int] = field(default_factory=dict)
    #: peak per-link utilization over the run (0.0 on contention-free
    #: networks); recorded by ``System.run`` so results that have shed
    #: their ``System`` (sweep cache, worker processes) still carry the
    #: §5.3 saturation indicator.
    peak_link_utilization: float = 0.0

    def record(self, mtype_name: str, size: int, carries_data: bool) -> None:
        """Account one message crossing the network."""
        self.messages += 1
        self.bytes += size
        if carries_data:
            self.data_messages += 1
        self.by_type[mtype_name] = self.by_type.get(mtype_name, 0) + 1


@dataclass(slots=True)
class MachineStats:
    """All statistics for one simulation run."""

    procs: list[ProcessorStats]
    caches: list[CacheStats]
    network: NetworkStats = field(default_factory=NetworkStats)
    execution_time: int = 0

    @classmethod
    def for_nodes(cls, n: int) -> "MachineStats":
        """Fresh statistics for an ``n``-node machine."""
        return cls(
            procs=[ProcessorStats() for _ in range(n)],
            caches=[CacheStats() for _ in range(n)],
        )

    # -- aggregates used by the experiment drivers ---------------------

    def _mean(self, attr: str) -> float:
        return sum(getattr(p, attr) for p in self.procs) / len(self.procs)

    @property
    def mean_busy(self) -> float:
        """Average per-processor busy time."""
        return self._mean("busy")

    @property
    def mean_read_stall(self) -> float:
        """Average per-processor read-stall time."""
        return self._mean("read_stall")

    @property
    def mean_write_stall(self) -> float:
        """Average per-processor write-stall time."""
        return self._mean("write_stall")

    @property
    def mean_acquire_stall(self) -> float:
        """Average per-processor acquire-stall time (incl. barriers)."""
        return self._mean("acquire_stall")

    @property
    def mean_release_stall(self) -> float:
        """Average per-processor release-stall time."""
        return self._mean("release_stall")

    @property
    def total_shared_refs(self) -> int:
        """Machine-wide shared data references."""
        return sum(p.shared_refs for p in self.procs)

    def miss_rate(self, component: str) -> float:
        """Machine-wide miss-rate component in percent of shared refs.

        ``component`` is one of ``cold``, ``replacement``, ``coherence``
        or ``total``.
        """
        refs = self.total_shared_refs
        if not refs:
            return 0.0
        key = {
            "cold": "cold_misses",
            "replacement": "replacement_misses",
            "coherence": "coherence_misses",
            "total": "demand_read_misses",
        }[component]
        return 100.0 * sum(getattr(c, key) for c in self.caches) / refs

    # -- serialization (sweep cache, worker processes) -----------------

    def to_dict(self) -> dict:
        """Versioned JSON-able payload; inverse of :meth:`from_dict`.

        Every counter is a plain int/float/str, so the round trip is
        lossless -- the durable artifact format of the sweep cache.
        """
        return {
            "version": STATS_SCHEMA_VERSION,
            "execution_time": self.execution_time,
            "procs": [asdict(p) for p in self.procs],
            "caches": [asdict(c) for c in self.caches],
            "network": asdict(self.network),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "MachineStats":
        """Rebuild statistics from :meth:`to_dict` output.

        Raises :class:`ValueError` on a version mismatch or a payload
        whose fields do not match the current counter schema.
        """
        version = d.get("version")
        if version != STATS_SCHEMA_VERSION:
            raise ValueError(
                f"MachineStats payload version {version!r} != "
                f"{STATS_SCHEMA_VERSION}"
            )
        try:
            return cls(
                procs=[ProcessorStats(**p) for p in d["procs"]],
                caches=[CacheStats(**c) for c in d["caches"]],
                network=NetworkStats(**d["network"]),
                execution_time=d["execution_time"],
            )
        except (KeyError, TypeError) as exc:
            raise ValueError(f"malformed MachineStats payload: {exc}") from exc
