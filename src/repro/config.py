"""Configuration objects for the simulated machine.

All architectural parameters default to the values of paper §4:

* 16 processors at 100 MHz (1 pclock = 10 ns),
* 4-KB direct-mapped write-through FLC (1-pclock hit, 3-pclock fill),
* infinite direct-mapped write-back SLC, 32-byte blocks, 6-pclock access,
* 90-ns interleaved memory behind a 256-bit 33-MHz split-transaction bus
  (local memory access = 30 pclocks end to end),
* 54-pclock contention-free uniform network by default,
* 4-KB pages placed round-robin across nodes,
* release consistency with a 16-entry SLWB and an 8-entry FLWB.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum


class Consistency(Enum):
    """Memory consistency model (paper §2, §5.2)."""

    SC = "SC"
    RC = "RC"


@dataclass(frozen=True)
class TimingConfig:
    """Latency parameters, in pclocks (10 ns)."""

    flc_hit: int = 1
    flc_fill: int = 3
    slc_access: int = 6
    #: end-to-end latency of one memory/directory access (90 ns = 9
    #: pclocks raw; 24 including DRAM/controller overhead so that a full
    #: local access -- bus + memory + bus -- totals the paper's 30 pclocks).
    memory_latency: int = 24
    #: the module "is fully interleaved" (§4): this many address-
    #: interleaved banks serve accesses in parallel; each access
    #: occupies its bank for the full ``memory_latency``.
    memory_banks: int = 8
    #: one bus cycle at 33 MHz = 3 pclocks (256-bit split-transaction
    #: bus: a transaction occupies ceil(bytes/width) cycles).
    bus_transaction: int = 3
    #: bus width in bytes (256 bits).
    bus_width_bytes: int = 32

    @property
    def local_memory_access(self) -> int:
        """End-to-end local memory access (paper: 30 pclocks)."""
        return self.memory_latency + 2 * self.bus_transaction


@dataclass(frozen=True)
class CacheConfig:
    """Cache-hierarchy geometry."""

    block_size: int = 32
    page_size: int = 4096
    flc_size: int = 4096
    #: None = infinite SLC (the paper's default); 16384 for §5.4.
    slc_size: int | None = None
    flwb_entries: int = 8
    slwb_entries: int = 16
    write_cache_blocks: int = 4

    def __post_init__(self) -> None:
        if self.block_size <= 0 or self.block_size & (self.block_size - 1):
            raise ValueError("block_size must be a positive power of two")
        if self.flc_size % self.block_size:
            raise ValueError("flc_size must be a multiple of block_size")
        if self.slc_size is not None and self.slc_size % self.block_size:
            raise ValueError("slc_size must be a multiple of block_size")


@dataclass(frozen=True)
class PrefetchConfig:
    """Adaptive sequential prefetching (paper §3.1, ref [3])."""

    initial_degree: int = 1
    max_degree: int = 8
    #: ref [3] compares *fixed* sequential prefetching (constant K)
    #: against the adaptive scheme; False freezes the degree.
    adaptive: bool = True
    #: counters are modulo 16: every 16 issued prefetches the useful
    #: fraction is compared against the two thresholds below.
    window: int = 16
    high_mark: float = 0.55
    low_mark: float = 0.20


@dataclass(frozen=True)
class CompetitiveConfig:
    """Competitive update + write cache (paper §3.3, refs [4, 10])."""

    #: updates tolerated with no intervening local access before the
    #: local copy self-invalidates.  1 with write caches (the paper's
    #: recommendation); 4 without.
    threshold: int = 1
    use_write_cache: bool = True
    #: let the home grant exclusive ownership to a flusher that is the
    #: sole remaining sharer.  Saves single-user update traffic but
    #: re-creates dirty-at-cache blocks, lengthening other processors'
    #: coherence misses -- off by default, kept for the ablation bench.
    exclusive_grant: bool = False

    @staticmethod
    def classic() -> "CompetitiveConfig":
        """Ref [10]'s protocol: per-write updates, threshold 4, no
        write cache -- the baseline §3.3 improves on."""
        return CompetitiveConfig(threshold=4, use_write_cache=False)


@dataclass(frozen=True)
class ProtocolConfig:
    """Which extensions are stacked onto the BASIC protocol.

    The paper's three extensions keep their dedicated boolean flags;
    any further registered extension (see
    :mod:`repro.core.extensions.registry`) is named in ``extra``.  The
    extension registry is the source of truth for name parsing,
    canonical ordering and capability traits.
    """

    prefetch: bool = False
    migratory: bool = False
    competitive_update: bool = False
    prefetch_params: PrefetchConfig = field(default_factory=PrefetchConfig)
    competitive_params: CompetitiveConfig = field(default_factory=CompetitiveConfig)
    #: additional registered extensions by canonical name (e.g. "PF").
    extra: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.extra:
            # canonicalize and conflict-check against the registry
            from repro.core.extensions import resolve_names

            active = [
                name
                for name, on in (
                    ("P", self.prefetch),
                    ("CW", self.competitive_update),
                    ("M", self.migratory),
                )
                if on
            ]
            names = resolve_names((*active, *self.extra))
            object.__setattr__(
                self,
                "extra",
                tuple(n for n in names if n not in {"P", "CW", "M"}),
            )

    @property
    def name(self) -> str:
        """Paper-style protocol name: BASIC, P, M, CW, P+CW, ...

        Built from the extension registry, so drop-in extensions slot
        into the canonical order automatically.
        """
        from repro.core.extensions import registered_extensions

        parts = [
            info.name for info in registered_extensions() if info.enabled(self)
        ]
        return "+".join(parts) if parts else "BASIC"

    @staticmethod
    def from_name(name: str) -> "ProtocolConfig":
        """Parse a protocol-combination name ('BASIC', 'P+CW', 'p,cw')."""
        from repro.core.extensions import resolve_names

        if name.upper() in {"BASIC", "B-SC", ""}:
            return ProtocolConfig()
        raw = name.replace("-SC", "").replace(",", "+").split("+")
        names = resolve_names(part for part in raw if part)
        return ProtocolConfig(
            prefetch="P" in names,
            migratory="M" in names,
            competitive_update="CW" in names,
            extra=tuple(n for n in names if n not in {"P", "M", "CW"}),
        )

    def has_trait(self, trait: str) -> bool:
        """True when any enabled extension declares ``trait``."""
        from repro.core.extensions import registered_extensions

        return any(
            trait in info.traits
            for info in registered_extensions()
            if info.enabled(self)
        )


class NetworkKind(Enum):
    """Interconnect models of §4 and §5.3."""

    UNIFORM = "uniform"
    MESH = "mesh"


@dataclass(frozen=True)
class NetworkConfig:
    """Interconnect parameters."""

    kind: NetworkKind = NetworkKind.UNIFORM
    #: contention-free node-to-node latency (uniform network).
    uniform_latency: int = 54
    #: wormhole mesh: link width in bits (64 / 32 / 16 in §5.3).
    link_width_bits: int = 64
    #: per-hop header latency: two phases, routing + transfer.
    hop_cycles: int = 2
    #: message header size in bytes (address + type + routing info).
    header_bytes: int = 8
    #: explicit mesh ``(width, height)``; None factors the node count
    #: into the squarest W x H rectangle (16 -> 4x4, 12 -> 4x3).
    mesh_dims: tuple[int, int] | None = None

    def __post_init__(self) -> None:
        if self.mesh_dims is not None:
            dims = tuple(int(d) for d in self.mesh_dims)
            if len(dims) != 2:
                raise ValueError(
                    f"mesh_dims must be a (width, height) pair, "
                    f"got {self.mesh_dims!r}"
                )
            object.__setattr__(self, "mesh_dims", dims)


#: the supported directory organizations (paper §2 + the scalability
#: extension): exact full-map presence bits, limited pointers with
#: broadcast fallback (Dir_i-B), and coarse presence bits of K nodes.
DIRECTORY_ORGS = ("full_map", "limited", "coarse")


@dataclass(frozen=True)
class DirectoryConfig:
    """Directory organization (storage/precision trade-off).

    The paper's machine keeps a full-map presence vector, whose
    per-block cost grows linearly with the node count.  The two
    scalable organizations trade precision for storage: a
    limited-pointer directory (Dir_i-B) keeps ``pointers`` exact node
    pointers and falls back to broadcast invalidation once they
    overflow; a coarse-vector directory keeps one presence bit per
    ``region_size`` consecutive nodes, so every bit over-approximates
    its region.  Both may therefore send protocol traffic to nodes
    without a copy -- which is exactly the cost the scalability study
    measures.
    """

    org: str = "full_map"
    #: Dir_i-B: exact pointers kept before the broadcast fallback.
    pointers: int = 4
    #: coarse vector: nodes covered by one presence bit.
    region_size: int = 4

    def __post_init__(self) -> None:
        if self.org not in DIRECTORY_ORGS:
            raise ValueError(
                f"unknown directory organization {self.org!r}; "
                f"choose from {DIRECTORY_ORGS}"
            )
        if self.pointers < 1:
            raise ValueError("limited-pointer directory needs >= 1 pointer")
        if self.region_size < 1:
            raise ValueError("coarse-vector region_size must be >= 1")

    @staticmethod
    def from_name(name: str) -> "DirectoryConfig":
        """Parse ``full_map`` / ``limited[:i]`` / ``coarse[:k]``."""
        base, _, param = name.partition(":")
        base = base.strip().lower().replace("-", "_")
        if base in ("full_map", "fullmap", "full"):
            return DirectoryConfig()
        if base in ("limited", "dir_i_b", "dirib"):
            return DirectoryConfig(
                org="limited", pointers=int(param) if param else 4
            )
        if base == "coarse":
            return DirectoryConfig(
                org="coarse", region_size=int(param) if param else 4
            )
        raise ValueError(
            f"unknown directory organization {name!r}; use 'full_map', "
            "'limited[:pointers]' or 'coarse[:region_size]'"
        )

    @property
    def name(self) -> str:
        """Canonical short name ('full_map', 'limited:4', 'coarse:4')."""
        if self.org == "limited":
            return f"limited:{self.pointers}"
        if self.org == "coarse":
            return f"coarse:{self.region_size}"
        return "full_map"


@dataclass(frozen=True)
class SystemConfig:
    """Complete description of one simulated machine."""

    n_procs: int = 16
    consistency: Consistency = Consistency.RC
    timing: TimingConfig = field(default_factory=TimingConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    protocol: ProtocolConfig = field(default_factory=ProtocolConfig)
    network: NetworkConfig = field(default_factory=NetworkConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    #: page->home policy: "round_robin" (§4's choice) or "first_touch"
    page_placement: str = "round_robin"

    def __post_init__(self) -> None:
        if self.n_procs < 1:
            raise ValueError("need at least one processor")
        if self.page_placement not in ("round_robin", "first_touch"):
            raise ValueError(
                f"unknown page placement {self.page_placement!r}"
            )
        if self.consistency is Consistency.SC and self.protocol.has_trait(
            "requires_rc"
        ):
            raise ValueError(
                "the competitive-update mechanism requires release consistency "
                "(paper §5.2: 'We omit CW because it is not feasible under "
                "sequential consistency')"
            )

    def with_protocol(self, name: str) -> "SystemConfig":
        """A copy of this config running the named protocol."""
        return replace(self, protocol=ProtocolConfig.from_name(name))

    @property
    def effective_slwb_entries(self) -> int:
        """SLWB depth (paper §5.2: single entry under SC, except for P)."""
        if self.consistency is Consistency.SC and not self.protocol.has_trait(
            "prefetch"
        ):
            return 1
        return self.cache.slwb_entries

    @property
    def effective_flwb_entries(self) -> int:
        """FLWB depth (single entry under SC)."""
        if self.consistency is Consistency.SC:
            return 1
        return self.cache.flwb_entries


#: the eight protocols evaluated in the paper, in Figure 2 order.
ALL_PROTOCOLS = ("BASIC", "P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M")

#: protocols feasible under sequential consistency (§5.2).
SC_PROTOCOLS = ("BASIC", "P", "M", "P+M")
