"""On-disk result cache: one JSON file per completed simulation cell.

Layout::

    <root>/<key[:2]>/<key>.json

where ``key`` is :meth:`RunSpec.key` -- a sha256 over the canonical
spec JSON plus the spec schema version.  Each file holds::

    {"schema": CACHE_SCHEMA_VERSION,
     "spec_key": "<key>",          # self-check against renamed files
     "spec": {"v": 1, ...},        # RunSpec.to_wire(), versioned
     "stats": {...},               # MachineStats.to_dict() (versioned)
     "wall_time": 1.234}           # simulation seconds when first run

Invalidation rules (each counted in :attr:`ResultCache.invalidated`
and then treated as a miss):

* unreadable / non-JSON file,
* ``schema`` != :data:`CACHE_SCHEMA_VERSION`,
* ``spec_key`` mismatch (file renamed or copied between keys),
* stats payload rejected by ``MachineStats.from_dict`` (its own
  version stamp or counter schema changed).

A spec-schema bump changes every key, so older entries are simply
never looked up again; they can be garbage-collected with ``clear``.
Writes are atomic (tempfile + rename), so a crashed run never leaves a
half-written entry behind.

Bounds
------

A cache constructed with ``max_bytes`` and/or ``max_entries`` evicts
least-recently-used entries (counted in :attr:`ResultCache.evictions`)
whenever a ``put`` pushes it over either limit.  Recency survives
restarts: hits touch the entry's mtime, and a bounded cache rebuilds
its LRU index from mtimes at construction.  An unbounded cache (the
default) keeps the historical zero-overhead behavior -- no index, no
touching.  :meth:`stats` reports sizes and counters either way; the
service exposes it verbatim at ``GET /v1/cache/stats``.

Hot tier
--------

``hot_entries > 0`` adds an in-memory LRU of deserialized results in
front of the JSON files: a repeated ``get`` skips the file read, the
JSON parse and the stats rehydration entirely (hot hits still count as
:attr:`hits`, and additionally as ``hot.hits`` in :meth:`stats`).
``write_batch > 1`` buffers ``put`` payloads in memory and writes them
in batches -- repeated puts of the same key before a flush coalesce to
one file write.  Buffered entries are readable immediately (served
from memory) and durable after :meth:`flush`, which the sweep engine
calls at the end of every ``run()`` and which also runs at interpreter
exit.  Both knobs default *off*: a bare ``ResultCache`` keeps the
historical read-through/write-through behavior, including detection of
files corrupted behind its back.  Callers that return cached results
must treat the stats payload as read-only -- hot hits share one
deserialized object.
"""

from __future__ import annotations

import atexit
import json
import os
import tempfile
import threading
from collections import OrderedDict
from dataclasses import replace
from pathlib import Path

from repro.stats.counters import MachineStats
from repro.sweep.spec import RunResult, RunSpec

#: version of the cache-file envelope (the fields *around* the stats
#: payload); the stats payload carries its own version.
CACHE_SCHEMA_VERSION = 1

#: default cache location; overridable with $REPRO_CACHE_DIR or the
#: ``--cache-dir`` CLI flag.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root the CLI uses when none is given."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class ResultCache:
    """Spec-addressed store of completed :class:`RunResult` payloads."""

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = None,
        max_entries: int | None = None,
        hot_entries: int = 0,
        write_batch: int = 1,
    ) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"cache dir {self.root} exists and is not a directory"
            ) from None
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        self.hot_entries = max(0, hot_entries)
        self.write_batch = max(1, write_batch)
        # one engine (and the HTTP service on top of it) may drive the
        # cache from many threads; counters and the LRU index are
        # guarded by a reentrant lock, file writes are atomic anyway.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evictions = 0
        #: hot-tier counters (always present; 0 when the tier is off).
        self.hot_hits = 0
        self.hot_misses = 0
        self.coalesced_writes = 0
        self.flushes = 0
        #: hot tier: key -> (RunResult, serialized size in bytes when
        #: known, else 0), LRU order.  None when hot_entries == 0.
        self._hot: OrderedDict[str, tuple[RunResult, int]] | None = (
            OrderedDict() if self.hot_entries else None
        )
        #: write-behind buffer: key -> envelope payload awaiting flush.
        self._pending: dict[str, dict] = {}
        if self.write_batch > 1:
            # buffered entries must reach disk even if the owner never
            # calls flush(); harmless double-flush otherwise.
            atexit.register(self.flush)
        #: LRU index (key -> file size), oldest first; only maintained
        #: when a bound is configured so the unbounded cache stays
        #: index-free and zero-overhead.
        self._index: OrderedDict[str, int] | None = None
        if max_bytes is not None or max_entries is not None:
            self._index = self._build_index()
            self._evict()

    @property
    def bounded(self) -> bool:
        """True when an eviction limit is configured."""
        return self._index is not None

    # -- addressing -----------------------------------------------------

    def path_for_key(self, key: str) -> Path:
        """The file that does/would hold the result hashed to ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def path_for(self, spec: RunSpec) -> Path:
        """The file that does/would hold this spec's result."""
        return self.path_for_key(spec.key())

    # -- read -----------------------------------------------------------

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result, or None (counting hit/miss/invalidation)."""
        key = spec.key()
        with self._lock:
            if self._hot is not None:
                entry = self._hot.get(key)
                if entry is not None:
                    result, _ = entry
                    self.hits += 1
                    self.hot_hits += 1
                    self._hot.move_to_end(key)
                    self._touch(key)
                    return replace(result, spec=spec, from_cache=True)
                self.hot_misses += 1
            payload = self._pending.get(key)
            if payload is None:
                payload = self._load(key)
            if payload is None:
                return None
            try:
                stats = MachineStats.from_dict(payload["stats"])
                wall_time = float(payload.get("wall_time", 0.0))
            except (KeyError, TypeError, ValueError):
                self._invalidate(key)
                return None
            self.hits += 1
            self._touch(key)
            result = RunResult(
                spec=spec, stats=stats, wall_time=wall_time, from_cache=True
            )
            self._hot_store(key, result, self._disk_size(key))
        return result

    def get_by_key(self, key: str) -> dict | None:
        """The raw cache envelope for a bare content hash, or None.

        This is the ``GET /v1/runs/<hash>`` read path: no spec needed,
        the stored payload (spec wire form included) is returned as-is.
        Counts hits/misses and refreshes recency like :meth:`get`;
        entries still buffered for a batched write are served from
        memory.
        """
        with self._lock:
            payload = self._pending.get(key)
            if payload is None:
                payload = self._load(key)
            if payload is None:
                return None
            self.hits += 1
            self._touch(key)
        return payload

    def _load(self, key: str) -> dict | None:
        """Read + envelope-check one entry (miss/invalidate accounting)."""
        path = self.path_for_key(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(key)
            return None
        try:
            if payload["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError("cache envelope version mismatch")
            if payload["spec_key"] != key:
                raise ValueError("cache entry does not match its key")
        except (KeyError, TypeError, ValueError):
            self._invalidate(key)
            return None
        return payload

    # -- write ----------------------------------------------------------

    def put(self, result: RunResult) -> None:
        """Store a completed result.

        Write-through by default (atomic file write, then LRU
        eviction); with ``write_batch > 1`` the payload is buffered and
        written on the next :meth:`flush` or when the buffer fills,
        coalescing repeated puts of one key into one file write.
        """
        key = result.spec.key()
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec_key": key,
            "spec": result.spec.to_wire(),
            "stats": result.stats.to_dict(),
            "wall_time": result.wall_time,
        }
        with self._lock:
            if self._hot is not None:
                # store the dict round-trip of the stats, not the live
                # object: hot hits then match a disk read bit for bit
                # and never alias stats the caller may still hold.
                self._hot_store(key, RunResult(
                    spec=result.spec,
                    stats=MachineStats.from_dict(payload["stats"]),
                    wall_time=result.wall_time,
                    from_cache=True,
                ), 0)
            if self.write_batch > 1:
                if key in self._pending:
                    self.coalesced_writes += 1
                self._pending[key] = payload
                if len(self._pending) >= self.write_batch:
                    self._flush_locked()
                return
        self._write(key, payload)

    def flush(self) -> int:
        """Write every buffered entry to disk; returns the count.

        A no-op for a write-through cache.  The sweep engine calls this
        at the end of every ``run()``, so batched writes only ever defer
        durability *within* a batch, never across API calls.
        """
        with self._lock:
            return self._flush_locked()

    def _flush_locked(self) -> int:
        if not self._pending:
            return 0
        pending, self._pending = self._pending, {}
        self.flushes += 1
        for key, payload in pending.items():
            self._write(key, payload)
        return len(pending)

    def _write(self, key: str, payload: dict) -> None:
        """Atomic file write + LRU index/hot-size bookkeeping."""
        path = self.path_for_key(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            size = path.stat().st_size
            if self._hot is not None and key in self._hot:
                self._hot[key] = (self._hot[key][0], size)
            if self._index is not None:
                self._index.pop(key, None)
                self._index[key] = size
                self._evict()

    # -- hot tier -------------------------------------------------------

    def _hot_store(self, key: str, result: RunResult, size: int) -> None:
        """Insert/refresh a hot-tier entry (caller holds the lock)."""
        if self._hot is None:
            return
        prev = self._hot.pop(key, None)
        if size == 0 and prev is not None:
            size = prev[1]
        self._hot[key] = (result, size)
        while len(self._hot) > self.hot_entries:
            self._hot.popitem(last=False)

    def _disk_size(self, key: str) -> int:
        """Size of the entry's file, 0 if unknown (caller holds lock)."""
        if self._index is not None:
            return self._index.get(key, 0)
        try:
            return self.path_for_key(key).stat().st_size
        except OSError:
            return 0

    # -- bounds ---------------------------------------------------------

    def _build_index(self) -> OrderedDict[str, int]:
        """Scan the shards into an mtime-ordered (oldest-first) index."""
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, path.stem, st.st_size))
        entries.sort()
        return OrderedDict((key, size) for _, key, size in entries)

    def _touch(self, key: str) -> None:
        """Refresh an entry's recency (index order + on-disk mtime)."""
        if self._index is None:
            return
        if key in self._index:
            self._index.move_to_end(key)
        try:
            os.utime(self.path_for_key(key))
        except OSError:
            pass

    def _evict(self) -> None:
        """Drop LRU entries until both configured bounds hold."""
        if self._index is None:
            return
        while self._index and self._over_limit():
            key, _ = self._index.popitem(last=False)
            self.evictions += 1
            try:
                os.unlink(self.path_for_key(key))
            except OSError:
                pass

    def _over_limit(self) -> bool:
        if self.max_entries is not None and len(self._index) > self.max_entries:
            return True
        if self.max_bytes is not None \
                and sum(self._index.values()) > self.max_bytes:
            return True
        return False

    # -- maintenance / introspection ------------------------------------

    def _invalidate(self, key: str) -> None:
        """Drop a stale/corrupt entry; counts as invalidated + miss."""
        with self._lock:
            self.invalidated += 1
            self.misses += 1
            if self._index is not None:
                self._index.pop(key, None)
            if self._hot is not None:
                self._hot.pop(key, None)
            self._pending.pop(key, None)
        try:
            os.unlink(self.path_for_key(key))
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry under the root; returns the count."""
        with self._lock:
            n = 0
            for path in self.root.glob("*/*.json"):
                try:
                    os.unlink(path)
                    n += 1
                except OSError:
                    pass
            if self._index is not None:
                self._index.clear()
            if self._hot is not None:
                self._hot.clear()
            self._pending.clear()
            return n

    def total_bytes(self) -> int:
        """Bytes currently stored (index sum, or a scan if unbounded)."""
        with self._lock:
            if self._index is not None:
                return sum(self._index.values())
        total = 0
        for path in self.root.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        """JSON-able counter/size digest (served at /v1/cache/stats)."""
        with self._lock:
            return {
                "entries": len(self),
                "bytes": self.total_bytes(),
                "hits": self.hits,
                "misses": self.misses,
                "invalidated": self.invalidated,
                "evictions": self.evictions,
                "max_bytes": self.max_bytes,
                "max_entries": self.max_entries,
                "hot": {
                    "entries": (len(self._hot)
                                if self._hot is not None else 0),
                    "max_entries": self.hot_entries,
                    "bytes": (sum(size for _, size in self._hot.values())
                              if self._hot is not None else 0),
                    "hits": self.hot_hits,
                    "misses": self.hot_misses,
                },
                "writes": {
                    "batch": self.write_batch,
                    "pending": len(self._pending),
                    "coalesced": self.coalesced_writes,
                    "flushes": self.flushes,
                },
            }

    def __len__(self) -> int:
        if self._index is not None:
            return len(self._index)
        return sum(1 for _ in self.root.glob("*/*.json"))
