"""On-disk result cache: one JSON file per completed simulation cell.

Layout::

    <root>/<key[:2]>/<key>.json

where ``key`` is :meth:`RunSpec.key` -- a sha256 over the canonical
spec JSON plus the spec schema version.  Each file holds::

    {"schema": CACHE_SCHEMA_VERSION,
     "spec_key": "<key>",          # self-check against renamed files
     "spec": {"v": 1, ...},        # RunSpec.to_wire(), versioned
     "stats": {...},               # MachineStats.to_dict() (versioned)
     "wall_time": 1.234}           # simulation seconds when first run

Invalidation rules (each counted in :attr:`ResultCache.invalidated`
and then treated as a miss):

* unreadable / non-JSON file,
* ``schema`` != :data:`CACHE_SCHEMA_VERSION`,
* ``spec_key`` mismatch (file renamed or copied between keys),
* stats payload rejected by ``MachineStats.from_dict`` (its own
  version stamp or counter schema changed).

A spec-schema bump changes every key, so older entries are simply
never looked up again; they can be garbage-collected with ``clear``.
Writes are atomic (tempfile + rename), so a crashed run never leaves a
half-written entry behind.

Bounds
------

A cache constructed with ``max_bytes`` and/or ``max_entries`` evicts
least-recently-used entries (counted in :attr:`ResultCache.evictions`)
whenever a ``put`` pushes it over either limit.  Recency survives
restarts: hits touch the entry's mtime, and a bounded cache rebuilds
its LRU index from mtimes at construction.  An unbounded cache (the
default) keeps the historical zero-overhead behavior -- no index, no
touching.  :meth:`stats` reports sizes and counters either way; the
service exposes it verbatim at ``GET /v1/cache/stats``.
"""

from __future__ import annotations

import json
import os
import tempfile
import threading
from collections import OrderedDict
from pathlib import Path

from repro.stats.counters import MachineStats
from repro.sweep.spec import RunResult, RunSpec

#: version of the cache-file envelope (the fields *around* the stats
#: payload); the stats payload carries its own version.
CACHE_SCHEMA_VERSION = 1

#: default cache location; overridable with $REPRO_CACHE_DIR or the
#: ``--cache-dir`` CLI flag.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root the CLI uses when none is given."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class ResultCache:
    """Spec-addressed store of completed :class:`RunResult` payloads."""

    def __init__(
        self,
        root: str | Path,
        max_bytes: int | None = None,
        max_entries: int | None = None,
    ) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"cache dir {self.root} exists and is not a directory"
            ) from None
        self.max_bytes = max_bytes
        self.max_entries = max_entries
        # one engine (and the HTTP service on top of it) may drive the
        # cache from many threads; counters and the LRU index are
        # guarded by a reentrant lock, file writes are atomic anyway.
        self._lock = threading.RLock()
        self.hits = 0
        self.misses = 0
        self.invalidated = 0
        self.evictions = 0
        #: LRU index (key -> file size), oldest first; only maintained
        #: when a bound is configured so the unbounded cache stays
        #: index-free and zero-overhead.
        self._index: OrderedDict[str, int] | None = None
        if max_bytes is not None or max_entries is not None:
            self._index = self._build_index()
            self._evict()

    @property
    def bounded(self) -> bool:
        """True when an eviction limit is configured."""
        return self._index is not None

    # -- addressing -----------------------------------------------------

    def path_for_key(self, key: str) -> Path:
        """The file that does/would hold the result hashed to ``key``."""
        return self.root / key[:2] / f"{key}.json"

    def path_for(self, spec: RunSpec) -> Path:
        """The file that does/would hold this spec's result."""
        return self.path_for_key(spec.key())

    # -- read -----------------------------------------------------------

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result, or None (counting hit/miss/invalidation)."""
        with self._lock:
            payload = self._load(spec.key())
            if payload is None:
                return None
            try:
                stats = MachineStats.from_dict(payload["stats"])
                wall_time = float(payload.get("wall_time", 0.0))
            except (KeyError, TypeError, ValueError):
                self._invalidate(spec.key())
                return None
            self.hits += 1
            self._touch(spec.key())
        return RunResult(
            spec=spec, stats=stats, wall_time=wall_time, from_cache=True
        )

    def get_by_key(self, key: str) -> dict | None:
        """The raw cache envelope for a bare content hash, or None.

        This is the ``GET /v1/runs/<hash>`` read path: no spec needed,
        the stored payload (spec wire form included) is returned as-is.
        Counts hits/misses and refreshes recency like :meth:`get`.
        """
        with self._lock:
            payload = self._load(key)
            if payload is None:
                return None
            self.hits += 1
            self._touch(key)
        return payload

    def _load(self, key: str) -> dict | None:
        """Read + envelope-check one entry (miss/invalidate accounting)."""
        path = self.path_for_key(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(key)
            return None
        try:
            if payload["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError("cache envelope version mismatch")
            if payload["spec_key"] != key:
                raise ValueError("cache entry does not match its key")
        except (KeyError, TypeError, ValueError):
            self._invalidate(key)
            return None
        return payload

    # -- write ----------------------------------------------------------

    def put(self, result: RunResult) -> None:
        """Store a completed result (atomic write, then LRU eviction)."""
        key = result.spec.key()
        path = self.path_for_key(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec_key": key,
            "spec": result.spec.to_wire(),
            "stats": result.stats.to_dict(),
            "wall_time": result.wall_time,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        with self._lock:
            if self._index is not None:
                self._index.pop(key, None)
                self._index[key] = path.stat().st_size
                self._evict()

    # -- bounds ---------------------------------------------------------

    def _build_index(self) -> OrderedDict[str, int]:
        """Scan the shards into an mtime-ordered (oldest-first) index."""
        entries = []
        for path in self.root.glob("*/*.json"):
            try:
                st = path.stat()
            except OSError:
                continue
            entries.append((st.st_mtime, path.stem, st.st_size))
        entries.sort()
        return OrderedDict((key, size) for _, key, size in entries)

    def _touch(self, key: str) -> None:
        """Refresh an entry's recency (index order + on-disk mtime)."""
        if self._index is None:
            return
        if key in self._index:
            self._index.move_to_end(key)
        try:
            os.utime(self.path_for_key(key))
        except OSError:
            pass

    def _evict(self) -> None:
        """Drop LRU entries until both configured bounds hold."""
        if self._index is None:
            return
        while self._index and self._over_limit():
            key, _ = self._index.popitem(last=False)
            self.evictions += 1
            try:
                os.unlink(self.path_for_key(key))
            except OSError:
                pass

    def _over_limit(self) -> bool:
        if self.max_entries is not None and len(self._index) > self.max_entries:
            return True
        if self.max_bytes is not None \
                and sum(self._index.values()) > self.max_bytes:
            return True
        return False

    # -- maintenance / introspection ------------------------------------

    def _invalidate(self, key: str) -> None:
        """Drop a stale/corrupt entry; counts as invalidated + miss."""
        with self._lock:
            self.invalidated += 1
            self.misses += 1
            if self._index is not None:
                self._index.pop(key, None)
        try:
            os.unlink(self.path_for_key(key))
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry under the root; returns the count."""
        with self._lock:
            n = 0
            for path in self.root.glob("*/*.json"):
                try:
                    os.unlink(path)
                    n += 1
                except OSError:
                    pass
            if self._index is not None:
                self._index.clear()
            return n

    def total_bytes(self) -> int:
        """Bytes currently stored (index sum, or a scan if unbounded)."""
        with self._lock:
            if self._index is not None:
                return sum(self._index.values())
        total = 0
        for path in self.root.glob("*/*.json"):
            try:
                total += path.stat().st_size
            except OSError:
                pass
        return total

    def stats(self) -> dict:
        """JSON-able counter/size digest (served at /v1/cache/stats)."""
        with self._lock:
            return {
                "entries": len(self),
                "bytes": self.total_bytes(),
                "hits": self.hits,
                "misses": self.misses,
                "invalidated": self.invalidated,
                "evictions": self.evictions,
                "max_bytes": self.max_bytes,
                "max_entries": self.max_entries,
            }

    def __len__(self) -> int:
        if self._index is not None:
            return len(self._index)
        return sum(1 for _ in self.root.glob("*/*.json"))
