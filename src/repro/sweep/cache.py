"""On-disk result cache: one JSON file per completed simulation cell.

Layout::

    <root>/<key[:2]>/<key>.json

where ``key`` is :meth:`RunSpec.key` -- a sha256 over the canonical
spec JSON plus the spec schema version.  Each file holds::

    {"schema": CACHE_SCHEMA_VERSION,
     "spec_key": "<key>",          # self-check against renamed files
     "spec": {...},                # RunSpec.to_dict(), for humans/tools
     "stats": {...},               # MachineStats.to_dict() (versioned)
     "wall_time": 1.234}           # simulation seconds when first run

Invalidation rules (each counted in :attr:`ResultCache.invalidated`
and then treated as a miss):

* unreadable / non-JSON file,
* ``schema`` != :data:`CACHE_SCHEMA_VERSION`,
* ``spec_key`` mismatch (file renamed or copied between keys),
* stats payload rejected by ``MachineStats.from_dict`` (its own
  version stamp or counter schema changed).

A spec-schema bump changes every key, so older entries are simply
never looked up again; they can be garbage-collected with ``clear``.
Writes are atomic (tempfile + rename), so a crashed run never leaves a
half-written entry behind.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.stats.counters import MachineStats
from repro.sweep.spec import RunResult, RunSpec

#: version of the cache-file envelope (the fields *around* the stats
#: payload); the stats payload carries its own version.
CACHE_SCHEMA_VERSION = 1

#: default cache location; overridable with $REPRO_CACHE_DIR or the
#: ``--cache-dir`` CLI flag.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root the CLI uses when none is given."""
    return Path(os.environ.get("REPRO_CACHE_DIR", DEFAULT_CACHE_DIR))


class ResultCache:
    """Spec-addressed store of completed :class:`RunResult` payloads."""

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except (FileExistsError, NotADirectoryError):
            raise ValueError(
                f"cache dir {self.root} exists and is not a directory"
            ) from None
        self.hits = 0
        self.misses = 0
        self.invalidated = 0

    def path_for(self, spec: RunSpec) -> Path:
        """The file that does/would hold this spec's result."""
        key = spec.key()
        return self.root / key[:2] / f"{key}.json"

    def get(self, spec: RunSpec) -> RunResult | None:
        """The cached result, or None (counting hit/miss/invalidation)."""
        path = self.path_for(spec)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (OSError, json.JSONDecodeError):
            self._invalidate(path)
            return None
        try:
            if payload["schema"] != CACHE_SCHEMA_VERSION:
                raise ValueError("cache envelope version mismatch")
            if payload["spec_key"] != spec.key():
                raise ValueError("cache entry does not match its key")
            stats = MachineStats.from_dict(payload["stats"])
            wall_time = float(payload.get("wall_time", 0.0))
        except (KeyError, TypeError, ValueError):
            self._invalidate(path)
            return None
        self.hits += 1
        return RunResult(
            spec=spec, stats=stats, wall_time=wall_time, from_cache=True
        )

    def put(self, result: RunResult) -> None:
        """Store a completed result (atomic write)."""
        path = self.path_for(result.spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "spec_key": result.spec.key(),
            "spec": result.spec.to_dict(),
            "stats": result.stats.to_dict(),
            "wall_time": result.wall_time,
        }
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.name, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, sort_keys=True)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _invalidate(self, path: Path) -> None:
        """Drop a stale/corrupt entry; counts as invalidated + miss."""
        self.invalidated += 1
        self.misses += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def clear(self) -> int:
        """Delete every entry under the root; returns the count."""
        n = 0
        for path in self.root.glob("*/*.json"):
            try:
                os.unlink(path)
                n += 1
            except OSError:
                pass
        return n

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))
