"""Batch execution of :class:`RunSpec` iterables.

The engine takes any iterable of specs, serves what it can from the
:class:`~repro.sweep.cache.ResultCache`, executes the rest through a
pluggable executor and returns results **in spec order** regardless of
completion order:

* ``serial``  -- in-process loop (the default; zero overhead),
* ``process`` -- a ``concurrent.futures.ProcessPoolExecutor`` with
  chunked submission, for fanning a sweep matrix out across cores.

Worker processes never see the cache: they receive spec dicts, return
``MachineStats.to_dict()`` payloads, and the parent writes the cache
and fires the progress hook.  Routing *both* the live and the cached
path through the same versioned dict round-trip guarantees that a
process-pool sweep, a serial sweep and a cache replay produce
bitwise-identical statistics.

One engine may be shared by many threads (the HTTP service submits
every client sweep through a single engine).  ``run`` is thread-safe,
and concurrent submissions of the *same* spec hash are **deduplicated
in flight**: the first submitter simulates, everyone else blocks on
the shared execution and receives the identical result (reported with
progress source ``"dedup"`` and counted in :attr:`SweepEngine.deduped`).
Duplicates inside one batch collapse the same way.
"""

from __future__ import annotations

import math
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from repro.sim.backend import get_backend
from repro.stats.counters import MachineStats
from repro.sweep.cache import ResultCache
from repro.sweep.spec import RunResult, RunSpec

#: executor names accepted by :class:`SweepEngine`.
EXECUTORS = ("serial", "process")


@dataclass(frozen=True)
class ProgressEvent:
    """One completed cell, reported through the progress hook."""

    index: int          #: position of the spec in the submitted batch
    total: int          #: batch size
    spec: RunSpec
    wall_time: float    #: seconds spent simulating (0.0 for cache hits)
    source: str         #: "sim", "cache" or "dedup" (shared execution)
    #: the completed result; lets per-call hooks (the service's job
    #: tracker) stream results without waiting for the whole batch.
    result: RunResult | None = None


ProgressHook = Callable[[ProgressEvent], None]


def execute_spec(spec: RunSpec) -> MachineStats:
    """Simulate one cell in-process (no cache, no pooling).

    Dispatches to the execution backend the spec names (see
    :mod:`repro.sim.backend`); ``"event"`` reproduces the historical
    behavior exactly.
    """
    return get_backend(spec.backend).execute(spec)


def _run_chunk(spec_dicts: list[dict]) -> list[dict]:
    """Worker entry: simulate a chunk, return versioned stat payloads."""
    out = []
    for d in spec_dicts:
        spec = RunSpec.from_dict(d)
        t0 = time.perf_counter()
        stats = execute_spec(spec)
        out.append({
            "stats": stats.to_dict(),
            "wall_time": time.perf_counter() - t0,
        })
    return out


def _ensure_importable_by_workers() -> None:
    """Make sure spawned interpreters can ``import repro``.

    Spawned workers inherit the environment, not ``sys.path``; if the
    package was made importable by a path hack rather than an install,
    prepend its root to ``PYTHONPATH`` before forking the pool.
    """
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            pkg_root + (os.pathsep + existing if existing else "")
        )


class _InFlight:
    """One spec hash currently executing; waiters block on the event."""

    __slots__ = ("event", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: RunResult | None = None


class SweepEngine:
    """Executes spec batches with memoization and progress reporting."""

    def __init__(
        self,
        executor: str = "serial",
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        on_result: ProgressHook | None = None,
        chunk_size: int | None = None,
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.cache = cache
        self.on_result = on_result
        self.chunk_size = chunk_size
        #: cells handed to run() over the engine's lifetime.
        self.cells = 0
        #: cells that had to be simulated (cache misses / cache off).
        self.misses = 0
        #: cells served from the cache without simulating.
        self.hits = 0
        #: cells that piggybacked on an identical in-flight execution.
        self.deduped = 0
        #: wall-clock seconds spent inside run().
        self.wall_time = 0.0
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}

    @property
    def invalidated(self) -> int:
        """Stale cache entries dropped on this engine's behalf."""
        return self.cache.invalidated if self.cache is not None else 0

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Iterable[RunSpec],
        on_result: ProgressHook | None = None,
    ) -> list[RunResult]:
        """Execute every spec; results come back in submission order.

        ``on_result`` is a per-call completion callback fired *in
        addition to* the engine-wide hook -- the service uses it to
        track each client sweep separately on one shared engine.
        """
        batch = list(specs)
        total = len(batch)
        t0 = time.perf_counter()
        with self._lock:
            self.cells += total
        results: list[RunResult | None] = [None] * total
        pending: list[int] = []                      # this call simulates
        waiting: list[tuple[int, _InFlight]] = []    # someone else is
        owned: dict[str, _InFlight] = {}             # keys this call claimed
        for i, spec in enumerate(batch):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                with self._lock:
                    self.hits += 1
                self._report(i, total, spec, 0.0, "cache", on_result, cached)
                continue
            key = spec.key()
            with self._lock:
                mine = owned.get(key)
                theirs = self._inflight.get(key)
                if mine is not None:
                    waiting.append((i, mine))
                    self.deduped += 1
                elif theirs is not None:
                    waiting.append((i, theirs))
                    self.deduped += 1
                else:
                    entry = _InFlight()
                    self._inflight[key] = entry
                    owned[key] = entry
                    pending.append(i)
        with self._lock:
            self.misses += len(pending)
        try:
            if pending:
                if self.executor == "process" and len(pending) > 1:
                    self._run_pooled(batch, pending, results, on_result)
                else:
                    self._run_serial(batch, pending, results, on_result)
        finally:
            # release any claims left unresolved by an executor failure
            # so waiters (here and in other threads) never deadlock.
            with self._lock:
                for key, entry in owned.items():
                    if not entry.event.is_set():
                        self._inflight.pop(key, None)
                        entry.event.set()
        for i, entry in waiting:
            results[i] = self._await_shared(batch[i], entry)
            self._report(i, total, batch[i], 0.0, "dedup", on_result,
                         results[i])
        self.wall_time += time.perf_counter() - t0
        return results  # type: ignore[return-value]  # every slot filled

    def run_one(self, spec: RunSpec) -> RunResult:
        """Single-cell convenience wrapper over :meth:`run`."""
        return self.run([spec])[0]

    def _await_shared(self, spec: RunSpec, entry: _InFlight) -> RunResult:
        """Block on another submission's execution of an equal spec.

        If the owner failed (event set, no result), fall back to
        executing the cell ourselves -- correctness over economy in a
        path that only a crashed sibling submission can reach.
        """
        entry.event.wait()
        if entry.result is not None:
            return entry.result
        cached = self.cache.get(spec) if self.cache is not None else None
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        stats = execute_spec(spec)
        result = RunResult(
            spec=spec, stats=stats,
            wall_time=time.perf_counter() - t0, from_cache=False,
        )
        if self.cache is not None:
            self.cache.put(result)
        return result

    # ------------------------------------------------------------------

    def _run_serial(self, batch, pending, results, hook) -> None:
        for i in pending:
            t0 = time.perf_counter()
            stats = execute_spec(batch[i])
            self._complete(
                batch, i, len(batch), stats, time.perf_counter() - t0,
                results, hook,
            )

    def _run_pooled(self, batch, pending, results, hook) -> None:
        workers = min(self.max_workers, len(pending))
        chunks = self._chunked(pending, workers)
        _ensure_importable_by_workers()
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [batch[i].to_dict() for i in chunk]
                ): chunk
                for chunk in chunks
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    chunk = futures[fut]
                    for i, payload in zip(chunk, fut.result()):
                        stats = MachineStats.from_dict(payload["stats"])
                        self._complete(
                            batch, i, len(batch), stats,
                            payload["wall_time"], results, hook,
                        )

    def _chunked(self, pending: Sequence[int], workers: int) -> list[list[int]]:
        """Split the miss list into contiguous submission chunks."""
        size = self.chunk_size or max(
            1, math.ceil(len(pending) / (workers * 4))
        )
        return [
            list(pending[i:i + size]) for i in range(0, len(pending), size)
        ]

    def _complete(self, batch, i, total, stats, wall_time, results,
                  hook) -> None:
        result = RunResult(
            spec=batch[i], stats=stats, wall_time=wall_time, from_cache=False
        )
        if self.cache is not None:
            self.cache.put(result)
        results[i] = result
        # publish to in-flight waiters before reporting progress, so a
        # hook that inspects the engine sees the claim already released.
        key = batch[i].key()
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.result = result
            entry.event.set()
        self._report(i, total, batch[i], wall_time, "sim", hook, result)

    def _report(self, i, total, spec, wall_time, source, hook=None,
                result=None) -> None:
        if self.on_result is None and hook is None:
            return
        event = ProgressEvent(
            index=i, total=total, spec=spec,
            wall_time=wall_time, source=source, result=result,
        )
        if self.on_result is not None:
            self.on_result(event)
        if hook is not None:
            hook(event)

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One-line counter digest, e.g. for CLI stderr reporting."""
        return (
            f"[sweep] cells={self.cells} hits={self.hits} "
            f"misses={self.misses} deduped={self.deduped} "
            f"invalidated={self.invalidated} "
            f"executor={self.executor} wall={self.wall_time:.2f}s"
        )

    def counters(self) -> dict:
        """JSON-able counter digest (served at /v1/health)."""
        return {
            "cells": self.cells,
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "invalidated": self.invalidated,
            "in_flight": len(self._inflight),
            "executor": self.executor,
            "wall_time": self.wall_time,
        }


def run_spec(spec: RunSpec, engine: SweepEngine | None = None) -> RunResult:
    """Execute one spec (through ``engine`` when given)."""
    if engine is None:
        engine = SweepEngine()
    return engine.run_one(spec)


def sweep(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    on_result: ProgressHook | None = None,
    **engine_kw: Any,
) -> list[RunResult]:
    """One-call sweep: build an engine, run the batch, return results."""
    engine = SweepEngine(
        executor="process" if jobs > 1 else "serial",
        max_workers=jobs,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        on_result=on_result,
        **engine_kw,
    )
    return engine.run(specs)
