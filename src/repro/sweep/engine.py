"""Batch execution of :class:`RunSpec` iterables.

The engine takes any iterable of specs, serves what it can from the
:class:`~repro.sweep.cache.ResultCache`, executes the rest through a
pluggable executor and returns results **in spec order** regardless of
completion order:

* ``serial``  -- in-process loop (the default; zero overhead),
* ``process`` -- fan the uncached cells out across worker processes,
  either on the **persistent** warm pool (:mod:`repro.sweep.pool`,
  the default: spawned once, reused across ``run()`` calls and
  service jobs, crash-respawned) or on a **per-run**
  ``ProcessPoolExecutor`` that lives for one batch.

Uncached cells are dispatched most-expensive-first through a
cost-ordered queue (:func:`repro.sweep.pool.estimate_cost`), so
straggler cells start immediately and cheap cells backfill idle
workers; completion order never leaks into the API -- results always
come back in spec order.

Worker processes never see the cache: they receive spec dicts, return
``MachineStats.to_dict()`` payloads, and the parent writes the cache
and fires the progress hook.  Routing *both* the live and the cached
path through the same versioned dict round-trip guarantees that a
process-pool sweep (either pool mode), a serial sweep and a cache
replay produce bitwise-identical statistics.

One engine may be shared by many threads (the HTTP service submits
every client sweep through a single engine).  ``run`` is thread-safe,
and concurrent submissions of the *same* spec hash are **deduplicated
in flight**: the first submitter simulates, everyone else blocks on
the shared execution and receives the identical result (reported with
progress source ``"dedup"`` and counted in :attr:`SweepEngine.deduped`).
Duplicates inside one batch collapse the same way.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass
from multiprocessing import get_context
from typing import Any, Callable, Iterable, Sequence

from repro.sim.backend import WarmContext, get_backend
from repro.stats.counters import MachineStats
from repro.sweep.cache import ResultCache
from repro.sweep.pool import (
    PersistentPool,
    ensure_importable_by_workers,
    estimate_cost,
    shared_pool,
)
from repro.sweep.spec import RunResult, RunSpec

#: executor names accepted by :class:`SweepEngine`.
EXECUTORS = ("serial", "process")

#: process-pool flavors accepted by :class:`SweepEngine`.
POOL_MODES = ("persistent", "per-run")


@dataclass(frozen=True)
class ProgressEvent:
    """One completed cell, reported through the progress hook."""

    index: int          #: position of the spec in the submitted batch
    total: int          #: batch size
    spec: RunSpec
    wall_time: float    #: seconds spent simulating (0.0 for cache hits)
    source: str         #: "sim", "cache" or "dedup" (shared execution)
    #: the completed result; lets per-call hooks (the service's job
    #: tracker) stream results without waiting for the whole batch.
    result: RunResult | None = None


ProgressHook = Callable[[ProgressEvent], None]


def execute_spec(spec: RunSpec, warm: WarmContext | None = None) -> MachineStats:
    """Simulate one cell in-process (no cache, no pooling).

    Dispatches to the execution backend the spec names (see
    :mod:`repro.sim.backend`); ``"event"`` reproduces the historical
    behavior exactly.  ``warm`` optionally memoizes build products
    (workload streams, replay traces) across calls.
    """
    return get_backend(spec.backend).execute(spec, warm=warm)


#: per-process warm state of a per-run pool worker (each spawned
#: worker interpreter gets its own copy of this module).
_chunk_warm: WarmContext | None = None


def _run_chunk(spec_dicts: list[dict]) -> list[dict]:
    """Worker entry: simulate a chunk, return versioned stat payloads."""
    global _chunk_warm
    if _chunk_warm is None:
        _chunk_warm = WarmContext()
    out = []
    for d in spec_dicts:
        spec = RunSpec.from_dict(d)
        t0 = time.perf_counter()
        stats = execute_spec(spec, _chunk_warm)
        out.append({
            "stats": stats.to_dict(),
            "wall_time": time.perf_counter() - t0,
        })
    return out


class _InFlight:
    """One spec hash currently executing; waiters block on the event."""

    __slots__ = ("event", "result")

    def __init__(self) -> None:
        self.event = threading.Event()
        self.result: RunResult | None = None


class SweepEngine:
    """Executes spec batches with memoization and progress reporting."""

    def __init__(
        self,
        executor: str = "serial",
        max_workers: int | None = None,
        cache: ResultCache | None = None,
        on_result: ProgressHook | None = None,
        chunk_size: int | None = None,
        pool: str = "persistent",
    ) -> None:
        if executor not in EXECUTORS:
            raise ValueError(
                f"unknown executor {executor!r}; choose from {EXECUTORS}"
            )
        if pool not in POOL_MODES:
            raise ValueError(
                f"unknown pool mode {pool!r}; choose from {POOL_MODES}"
            )
        self.executor = executor
        self.max_workers = max_workers or os.cpu_count() or 1
        self.cache = cache
        self.on_result = on_result
        self.chunk_size = chunk_size
        #: process-pool flavor: "persistent" reuses the process-wide
        #: warm pool across runs, "per-run" builds a fresh
        #: ProcessPoolExecutor per batch (the historical behavior).
        self.pool = pool
        #: cells handed to run() over the engine's lifetime.
        self.cells = 0
        #: cells that had to be simulated (cache misses / cache off).
        self.misses = 0
        #: cells served from the cache without simulating.
        self.hits = 0
        #: cells that piggybacked on an identical in-flight execution.
        self.deduped = 0
        #: wall-clock seconds spent inside run().
        self.wall_time = 0.0
        self._lock = threading.Lock()
        self._inflight: dict[str, _InFlight] = {}
        #: warm state of the in-process (serial) execution path.
        self._warm = WarmContext()
        self._pool: PersistentPool | None = None
        self._last_run_stats: dict | None = None

    @property
    def invalidated(self) -> int:
        """Stale cache entries dropped on this engine's behalf."""
        return self.cache.invalidated if self.cache is not None else 0

    def _get_pool(self) -> PersistentPool:
        """The persistent pool (the process-wide shared one)."""
        if self._pool is None or self._pool.closed:
            self._pool = shared_pool(self.max_workers)
        return self._pool

    def close(self, shutdown_pool: bool = False) -> None:
        """Flush pending cache writes; optionally stop the worker pool.

        The persistent pool is shared process-wide, so it is left
        running by default (an ``atexit`` hook stops it at interpreter
        exit); pass ``shutdown_pool=True`` to stop it now -- the
        service does on shutdown.
        """
        if self.cache is not None:
            self.cache.flush()
        if shutdown_pool and self._pool is not None:
            self._pool.close()

    # ------------------------------------------------------------------

    def run(
        self,
        specs: Iterable[RunSpec],
        on_result: ProgressHook | None = None,
    ) -> list[RunResult]:
        """Execute every spec; results come back in submission order.

        ``on_result`` is a per-call completion callback fired *in
        addition to* the engine-wide hook -- the service uses it to
        track each client sweep separately on one shared engine.
        """
        batch = list(specs)
        total = len(batch)
        t0 = time.perf_counter()
        hot_before = self.cache.hot_hits if self.cache is not None else 0
        with self._lock:
            self.cells += total
        results: list[RunResult | None] = [None] * total
        pending: list[int] = []                      # this call simulates
        waiting: list[tuple[int, _InFlight]] = []    # someone else is
        owned: dict[str, _InFlight] = {}             # keys this call claimed
        cached_here = 0
        for i, spec in enumerate(batch):
            cached = self.cache.get(spec) if self.cache is not None else None
            if cached is not None:
                results[i] = cached
                cached_here += 1
                with self._lock:
                    self.hits += 1
                self._report(i, total, spec, 0.0, "cache", on_result, cached)
                continue
            key = spec.key()
            with self._lock:
                mine = owned.get(key)
                theirs = self._inflight.get(key)
                if mine is not None:
                    waiting.append((i, mine))
                    self.deduped += 1
                elif theirs is not None:
                    waiting.append((i, theirs))
                    self.deduped += 1
                else:
                    entry = _InFlight()
                    self._inflight[key] = entry
                    owned[key] = entry
                    pending.append(i)
        with self._lock:
            self.misses += len(pending)
        try:
            if pending:
                if self.executor == "process" and len(pending) > 1:
                    self._run_pooled(batch, pending, results, on_result)
                else:
                    self._run_serial(batch, pending, results, on_result)
        finally:
            # release any claims left unresolved by an executor failure
            # so waiters (here and in other threads) never deadlock.
            with self._lock:
                for key, entry in owned.items():
                    if not entry.event.is_set():
                        self._inflight.pop(key, None)
                        entry.event.set()
            if self.cache is not None:
                self.cache.flush()
        for i, entry in waiting:
            results[i] = self._await_shared(batch[i], entry)
            self._report(i, total, batch[i], 0.0, "dedup", on_result,
                         results[i])
        wall = time.perf_counter() - t0
        self.wall_time += wall
        self._last_run_stats = {
            "cells": total,
            "sim": len(pending),
            "cache": cached_here,
            "dedup": len(waiting),
            "hot_hits": (self.cache.hot_hits - hot_before
                         if self.cache is not None else 0),
            "wall_time": wall,
            "sim_time": sum(
                results[i].wall_time for i in pending
                if results[i] is not None
            ),
            "executor": ("serial" if self.executor == "serial"
                         or len(pending) <= 1 else "process"),
            "pool": self.pool if self.executor == "process" else None,
        }
        return results  # type: ignore[return-value]  # every slot filled

    def last_run_stats(self) -> dict | None:
        """Aggregate timing/source digest of the most recent :meth:`run`.

        ``wall_time`` is the batch's end-to-end wall clock;
        ``sim_time`` is the *sum* of per-cell simulation seconds (the
        work the pool performed, possibly in parallel); ``sim`` /
        ``cache`` / ``dedup`` count where each cell came from and
        ``hot_hits`` how many cache hits never touched disk.  On an
        engine shared by concurrent threads the digest describes
        whichever run finished last.
        """
        return self._last_run_stats

    def run_one(self, spec: RunSpec) -> RunResult:
        """Single-cell convenience wrapper over :meth:`run`."""
        return self.run([spec])[0]

    def _await_shared(self, spec: RunSpec, entry: _InFlight) -> RunResult:
        """Block on another submission's execution of an equal spec.

        If the owner failed (event set, no result), fall back to
        executing the cell ourselves -- correctness over economy in a
        path that only a crashed sibling submission can reach.
        """
        entry.event.wait()
        if entry.result is not None:
            return entry.result
        cached = self.cache.get(spec) if self.cache is not None else None
        if cached is not None:
            return cached
        t0 = time.perf_counter()
        stats = execute_spec(spec, self._warm)
        result = RunResult(
            spec=spec, stats=stats,
            wall_time=time.perf_counter() - t0, from_cache=False,
        )
        if self.cache is not None:
            self.cache.put(result)
        return result

    # ------------------------------------------------------------------

    def _run_serial(self, batch, pending, results, hook) -> None:
        for i in pending:
            t0 = time.perf_counter()
            stats = execute_spec(batch[i], self._warm)
            self._complete(
                batch, i, len(batch), stats, time.perf_counter() - t0,
                results, hook,
            )

    def _cost_order(self, batch, pending: Sequence[int]) -> list[int]:
        """Pending indices, most expensive estimated cell first.

        Ties keep submission order, so scheduling is deterministic for
        a given batch; results are reassembled by index either way.
        """
        return sorted(pending, key=lambda i: (-estimate_cost(batch[i]), i))

    def _run_pooled(self, batch, pending, results, hook) -> None:
        order = self._cost_order(batch, pending)
        if self.pool == "persistent":
            self._run_persistent(batch, order, results, hook)
        else:
            self._run_per_run(batch, order, results, hook)

    def _run_persistent(self, batch, order, results, hook) -> None:
        """Dynamic scheduling on the long-lived shared worker pool."""
        pool = self._get_pool()
        pool.resize(self.max_workers)
        futures = {
            pool.submit(batch[i].to_dict(), cost=estimate_cost(batch[i])): i
            for i in order
        }
        for fut in as_completed(futures):
            payload = fut.result()  # worker errors surface here
            i = futures[fut]
            stats = MachineStats.from_dict(payload["stats"])
            self._complete(
                batch, i, len(batch), stats, payload["wall_time"],
                results, hook,
            )

    def _run_per_run(self, batch, order, results, hook) -> None:
        """One fresh ProcessPoolExecutor for this batch (cost-ordered)."""
        workers = min(self.max_workers, len(order))
        chunks = self._chunked(order)
        ensure_importable_by_workers()
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=get_context("spawn")
        ) as pool:
            futures = {
                pool.submit(
                    _run_chunk, [batch[i].to_dict() for i in chunk]
                ): chunk
                for chunk in chunks
            }
            not_done = set(futures)
            while not_done:
                done, not_done = wait(not_done, return_when=FIRST_COMPLETED)
                for fut in done:
                    chunk = futures[fut]
                    for i, payload in zip(chunk, fut.result()):
                        stats = MachineStats.from_dict(payload["stats"])
                        self._complete(
                            batch, i, len(batch), stats,
                            payload["wall_time"], results, hook,
                        )

    def _chunked(self, order: Sequence[int]) -> list[list[int]]:
        """Group the cost-ordered miss list into submission tasks.

        One task per spec by default, so the executor's FIFO queue
        becomes the dynamic scheduler (idle workers pull the next
        most-expensive cell); an explicit ``chunk_size`` groups
        consecutive cells to amortize submission overhead.
        """
        size = self.chunk_size or 1
        return [
            list(order[i:i + size]) for i in range(0, len(order), size)
        ]

    def _complete(self, batch, i, total, stats, wall_time, results,
                  hook) -> None:
        result = RunResult(
            spec=batch[i], stats=stats, wall_time=wall_time, from_cache=False
        )
        if self.cache is not None:
            self.cache.put(result)
        results[i] = result
        # publish to in-flight waiters before reporting progress, so a
        # hook that inspects the engine sees the claim already released.
        key = batch[i].key()
        with self._lock:
            entry = self._inflight.pop(key, None)
        if entry is not None:
            entry.result = result
            entry.event.set()
        self._report(i, total, batch[i], wall_time, "sim", hook, result)

    def _report(self, i, total, spec, wall_time, source, hook=None,
                result=None) -> None:
        if self.on_result is None and hook is None:
            return
        event = ProgressEvent(
            index=i, total=total, spec=spec,
            wall_time=wall_time, source=source, result=result,
        )
        if self.on_result is not None:
            self.on_result(event)
        if hook is not None:
            hook(event)

    # ------------------------------------------------------------------

    def summary(self) -> str:
        """One-line counter digest, e.g. for CLI stderr reporting."""
        return (
            f"[sweep] cells={self.cells} hits={self.hits} "
            f"misses={self.misses} deduped={self.deduped} "
            f"invalidated={self.invalidated} "
            f"executor={self.executor} wall={self.wall_time:.2f}s"
        )

    def counters(self) -> dict:
        """JSON-able counter digest (served at /v1/health)."""
        return {
            "cells": self.cells,
            "hits": self.hits,
            "misses": self.misses,
            "deduped": self.deduped,
            "invalidated": self.invalidated,
            "in_flight": len(self._inflight),
            "executor": self.executor,
            "wall_time": self.wall_time,
        }


def run_spec(spec: RunSpec, engine: SweepEngine | None = None) -> RunResult:
    """Execute one spec (through ``engine`` when given)."""
    if engine is None:
        engine = SweepEngine()
    return engine.run_one(spec)


def sweep(
    specs: Iterable[RunSpec],
    jobs: int = 1,
    cache_dir: str | os.PathLike | None = None,
    on_result: ProgressHook | None = None,
    **engine_kw: Any,
) -> list[RunResult]:
    """One-call sweep: build an engine, run the batch, return results."""
    engine = SweepEngine(
        executor="process" if jobs > 1 else "serial",
        max_workers=jobs,
        cache=ResultCache(cache_dir) if cache_dir is not None else None,
        on_result=on_result,
        **engine_kw,
    )
    return engine.run(specs)
