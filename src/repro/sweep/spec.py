"""Canonical description of one simulation cell: :class:`RunSpec`.

Every table/figure in the paper is a cross-product sweep over
(application, protocol, consistency, network, cache, scale, seed).  A
``RunSpec`` freezes one cell of such a sweep into a hashable value
object that

* builds its own :class:`~repro.config.SystemConfig` (``to_config``),
* serializes to/from a plain JSON-able dict (``to_dict``/``from_dict``),
* derives a *stable* content hash (``key``) that is identical across
  processes and insensitive to keyword-argument order -- the result
  cache and the process-pool executor both address cells by it.

``RunResult`` is the matching value object on the way out: the spec
that produced it, the collected :class:`~repro.stats.counters.MachineStats`
and bookkeeping (wall time, cache provenance).  Unlike the historical
``experiments.runner.RunResult`` it does **not** hold the simulated
:class:`~repro.system.System`, so it pickles cheaply and fits in the
on-disk cache.

Specs that leave the process -- cache files, service requests, thin
clients -- travel as the *wire form*: the plain dict plus an explicit
``"v"`` schema stamp (``to_wire``/``from_wire``, or ``to_json``/
``from_json`` for the serialized string).  Deserialization rejects
unknown versions with :class:`SpecSchemaError` instead of guessing at
field meanings, so a stale payload fails loudly rather than
mis-deserializing into a subtly different machine.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Any, Mapping

from repro.config import (
    CacheConfig,
    Consistency,
    DirectoryConfig,
    NetworkConfig,
    NetworkKind,
    ProtocolConfig,
    SystemConfig,
)
from repro.stats.counters import MachineStats

#: bump whenever the meaning of a spec field (or a simulator default it
#: relies on) changes; every cached result keyed under an older version
#: becomes unreachable, which is exactly the invalidation we want.
#: v2: ``directory`` organization field and ``network.mesh_dims``.
#: v3: ``backend`` execution-tier field (part of the content hash, so
#: replay-tier results never collide with event-tier results).
SPEC_SCHEMA_VERSION = 3

#: the paper's seed; kept in one place so the API, the service layer
#: and every experiment driver agree.
DEFAULT_SEED = 1994


class SpecSchemaError(ValueError):
    """A serialized RunSpec payload cannot be deserialized safely.

    Raised for malformed JSON, a missing/unknown ``"v"`` stamp or a
    payload whose fields do not reassemble into a valid spec.
    """


def _network_to_dict(net: NetworkConfig) -> dict:
    d = asdict(net)
    d["kind"] = net.kind.value
    return d


def _network_from_dict(d: Mapping[str, Any]) -> NetworkConfig:
    d = dict(d)
    d["kind"] = NetworkKind(d["kind"])
    return NetworkConfig(**d)


@dataclass(frozen=True)
class RunSpec:
    """Frozen, hashable description of one simulation."""

    app: str
    protocol: str = "BASIC"
    consistency: str = "RC"
    n_procs: int = 16
    scale: float = 1.0
    seed: int = DEFAULT_SEED
    network: NetworkConfig = field(default_factory=NetworkConfig)
    cache: CacheConfig = field(default_factory=CacheConfig)
    directory: DirectoryConfig = field(default_factory=DirectoryConfig)
    page_placement: str = "round_robin"
    #: execution backend (see :mod:`repro.sim.backend`): "event",
    #: "specialized" or "replay".  Part of the content hash.
    backend: str = "event"
    #: extra workload keyword arguments, stored as a sorted tuple of
    #: (name, value) pairs so equal dicts hash equally.
    workload_kw: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if isinstance(self.consistency, Consistency):
            object.__setattr__(self, "consistency", self.consistency.value)
        Consistency(self.consistency)  # validate early
        from repro.sim.backend import BACKEND_NAMES

        if self.backend not in BACKEND_NAMES:
            raise ValueError(
                f"unknown execution backend {self.backend!r}; "
                f"expected one of {', '.join(BACKEND_NAMES)}"
            )
        # canonicalize the protocol name ("CW+P" -> "P+CW")
        object.__setattr__(
            self, "protocol", ProtocolConfig.from_name(self.protocol).name
        )
        if isinstance(self.directory, str):
            object.__setattr__(
                self, "directory", DirectoryConfig.from_name(self.directory)
            )
        kw = self.workload_kw
        if isinstance(kw, Mapping):
            kw = kw.items()
        object.__setattr__(
            self, "workload_kw", tuple(sorted((str(k), v) for k, v in kw))
        )

    # -- construction ---------------------------------------------------

    @classmethod
    def for_run(
        cls,
        app: str,
        protocol: str = "BASIC",
        consistency: Consistency | str = Consistency.RC,
        network: NetworkConfig | None = None,
        cache: CacheConfig | None = None,
        n_procs: int = 16,
        scale: float = 1.0,
        seed: int = DEFAULT_SEED,
        directory: DirectoryConfig | str | None = None,
        page_placement: str = "round_robin",
        backend: str = "event",
        **workload_kw: Any,
    ) -> "RunSpec":
        """Mirror of the historical ``run_once`` signature."""
        return cls(
            app=app,
            protocol=protocol,
            consistency=consistency,
            n_procs=n_procs,
            scale=scale,
            seed=seed,
            network=network or NetworkConfig(),
            cache=cache or CacheConfig(),
            directory=directory if directory is not None else DirectoryConfig(),
            page_placement=page_placement,
            backend=backend,
            workload_kw=workload_kw,
        )

    # -- conversion -----------------------------------------------------

    def to_config(self) -> SystemConfig:
        """The machine configuration this spec describes."""
        return SystemConfig(
            n_procs=self.n_procs,
            consistency=Consistency(self.consistency),
            network=self.network,
            cache=self.cache,
            directory=self.directory,
            page_placement=self.page_placement,
        ).with_protocol(self.protocol)

    def to_dict(self) -> dict:
        """Plain JSON-able dict; inverse of :meth:`from_dict`."""
        return {
            "app": self.app,
            "protocol": self.protocol,
            "consistency": self.consistency,
            "n_procs": self.n_procs,
            "scale": self.scale,
            "seed": self.seed,
            "network": _network_to_dict(self.network),
            "cache": asdict(self.cache),
            "directory": asdict(self.directory),
            "page_placement": self.page_placement,
            "backend": self.backend,
            "workload_kw": {k: v for k, v in self.workload_kw},
        }

    @classmethod
    def from_dict(cls, d: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        return cls(
            app=d["app"],
            protocol=d["protocol"],
            consistency=d["consistency"],
            n_procs=d["n_procs"],
            scale=d["scale"],
            seed=d["seed"],
            network=_network_from_dict(d["network"]),
            cache=CacheConfig(**d["cache"]),
            directory=DirectoryConfig(**d.get("directory", {})),
            page_placement=d["page_placement"],
            backend=d.get("backend", "event"),
            workload_kw=d.get("workload_kw", {}),
        )

    # -- wire form (versioned) ------------------------------------------

    def to_wire(self) -> dict:
        """The dict that crosses process/network boundaries.

        :meth:`to_dict` plus an explicit ``"v"`` schema stamp; the only
        spec shape the cache files and the service API exchange.
        """
        return {"v": SPEC_SCHEMA_VERSION, **self.to_dict()}

    @classmethod
    def from_wire(cls, payload: Mapping[str, Any]) -> "RunSpec":
        """Rebuild a spec from :meth:`to_wire` output.

        Raises :class:`SpecSchemaError` when the payload is not a dict,
        carries no/an unknown ``"v"`` stamp, or its fields do not
        reassemble into a valid spec.
        """
        if not isinstance(payload, Mapping):
            raise SpecSchemaError(
                f"spec payload must be an object, got {type(payload).__name__}"
            )
        version = payload.get("v")
        if version != SPEC_SCHEMA_VERSION:
            raise SpecSchemaError(
                f"unknown spec schema version {version!r} "
                f"(this build speaks v{SPEC_SCHEMA_VERSION}); "
                "refusing to mis-deserialize a stale payload"
            )
        fields = {k: v for k, v in payload.items() if k != "v"}
        try:
            return cls.from_dict(fields)
        except SpecSchemaError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise SpecSchemaError(f"invalid spec payload: {exc}") from exc

    def to_json(self) -> str:
        """Canonical JSON string of :meth:`to_wire`."""
        return json.dumps(self.to_wire(), sort_keys=True,
                          separators=(",", ":"))

    @classmethod
    def from_json(cls, text: str | bytes) -> "RunSpec":
        """Inverse of :meth:`to_json`; same errors as :meth:`from_wire`."""
        try:
            payload = json.loads(text)
        except (json.JSONDecodeError, TypeError, ValueError) as exc:
            raise SpecSchemaError(f"spec payload is not valid JSON: {exc}") \
                from exc
        return cls.from_wire(payload)

    def key(self) -> str:
        """Stable content hash of this spec (cache address).

        Computed over the canonical JSON of :meth:`to_dict` plus
        :data:`SPEC_SCHEMA_VERSION`; unlike :func:`hash`, identical in
        every process and for every dict key order.  Memoized on the
        instance (safe: the dataclass is frozen), since the engine and
        the cache address every cell by key several times per run.
        """
        memo = self.__dict__.get("_key")
        if memo is not None:
            return memo
        payload = json.dumps(
            {"schema": SPEC_SCHEMA_VERSION, "spec": self.to_dict()},
            sort_keys=True,
            separators=(",", ":"),
        )
        digest = hashlib.sha256(payload.encode()).hexdigest()
        object.__setattr__(self, "_key", digest)
        return digest

    def label(self) -> str:
        """Short human-readable cell name for progress reporting."""
        extras = []
        if self.network.kind is not NetworkKind.UNIFORM:
            extras.append(f"mesh{self.network.link_width_bits}")
        if self.n_procs != 16:
            extras.append(f"{self.n_procs}p")
        if self.directory.org != "full_map":
            extras.append(self.directory.name)
        if self.page_placement != "round_robin":
            extras.append(self.page_placement)
        if self.backend != "event":
            extras.append(self.backend)
        tail = f" [{','.join(extras)}]" if extras else ""
        return f"{self.app}/{self.protocol}/{self.consistency}{tail}"


@dataclass(frozen=True)
class RunResult:
    """Statistics of one simulation plus the spec that produced them."""

    spec: RunSpec
    stats: MachineStats
    #: seconds spent simulating this cell (0.0 when unknown).
    wall_time: float = 0.0
    #: True when served from the result cache instead of simulated.
    from_cache: bool = False

    @property
    def app(self) -> str:
        """Application name (from the spec)."""
        return self.spec.app

    @property
    def protocol(self) -> str:
        """Canonical protocol name (from the spec)."""
        return self.spec.protocol

    @property
    def consistency(self) -> str:
        """Consistency model value, 'RC' or 'SC' (from the spec)."""
        return self.spec.consistency

    @property
    def execution_time(self) -> int:
        """Parallel-section execution time in pclocks."""
        return self.stats.execution_time
