"""Persistent warm worker pool for sweep execution.

A :class:`PersistentPool` owns a set of long-lived spawned worker
processes and a cost-ordered shared task queue.  It differs from a
per-``run()`` ``ProcessPoolExecutor`` in exactly the ways that matter
for sweep *throughput*:

* **Spawned once, reused forever.**  Workers are started lazily on the
  first submission and survive across ``SweepEngine.run()`` calls and
  HTTP service jobs; the interpreter+import cost of a spawned worker
  (hundreds of milliseconds each) is paid once per process lifetime
  instead of once per sweep.
* **Warm state.**  Each worker keeps a
  :class:`~repro.sim.backend.WarmContext`: built workload streams and
  open replay trace handles are memoized by workload identity, so
  repeated cells (the same app/scale/seed under different protocols)
  skip the rebuild entirely.
* **Cost-aware dynamic scheduling.**  Tasks are dispatched to idle
  workers one at a time, most expensive first (see
  :func:`estimate_cost`), so a 256-proc straggler starts immediately
  and small cells backfill the remaining workers.  Submission order
  never affects results -- the engine reassembles them by index.
* **Health-checked.**  A worker that dies mid-task (OOM kill, crash)
  is detected through its pipe, respawned, and its task resubmitted
  (bounded retries); the sweep completes with correct results.

Lifecycle: pools shut down cleanly via :meth:`close` (idempotent) and
an ``atexit`` hook.  Most callers should use :func:`shared_pool`,
which maintains one process-wide pool that grows to the largest
requested worker count -- one service process or one test session then
holds one set of workers, however many engines it builds.
"""

from __future__ import annotations

import atexit
import heapq
import itertools
import os
import threading
import time
from concurrent.futures import Future
from multiprocessing import get_context
from multiprocessing.connection import Connection, wait as conn_wait
from typing import Any, Optional

#: relative per-reference execution weight of each backend tier; the
#: replay tier is batched/vectorized, the specialized tier shaves
#: dispatch overhead off the event tier.  Rough factors are fine --
#: scheduling only needs the *ordering* to be sane.
BACKEND_COST_WEIGHT = {"event": 1.0, "specialized": 0.8, "replay": 0.15}

#: how many times a task is resubmitted after crashing its worker
#: before the failure is surfaced to the caller.
MAX_TASK_RETRIES = 2


def estimate_cost(spec: Any) -> float:
    """Estimated relative wall cost of one spec.

    ``n_procs x scale x backend weight``: processor count multiplies
    both the machine size and (through weak scaling) the reference
    count, ``scale`` is proportional to per-processor workload length,
    and the backend weight folds in each tier's per-reference speed.
    This is a scheduling heuristic, not a prediction -- it only has to
    start stragglers first.
    """
    n_procs = getattr(spec, "n_procs", 1) or 1
    scale = getattr(spec, "scale", 1.0) or 1.0
    weight = BACKEND_COST_WEIGHT.get(getattr(spec, "backend", "event"), 1.0)
    return float(n_procs) * float(scale) * weight


_importable_ensured = False


def ensure_importable_by_workers() -> None:
    """Make sure spawned interpreters can ``import repro`` (once).

    Spawned workers inherit the environment, not ``sys.path``; if the
    package was made importable by a path hack rather than an install,
    prepend its root to ``PYTHONPATH`` before starting any worker.
    Computed once per process and guarded against duplicate entries.
    """
    global _importable_ensured
    if _importable_ensured:
        return
    import repro

    pkg_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = os.environ.get("PYTHONPATH", "")
    if pkg_root not in existing.split(os.pathsep):
        os.environ["PYTHONPATH"] = (
            pkg_root + (os.pathsep + existing if existing else "")
        )
    _importable_ensured = True


class WorkerCrashError(RuntimeError):
    """A task repeatedly crashed the worker executing it."""


class PoolClosedError(RuntimeError):
    """The pool was closed while the task was pending."""


def _worker_main(conn: Connection) -> None:
    """Worker process entry: execute tasks until the sentinel arrives.

    Each message is ``{"id": int, "spec": <RunSpec dict>}``; the reply
    carries the versioned stats payload (or an error string) plus the
    worker's warm-state counters.  State that is expensive to build and
    deterministic in the spec (workloads, replay traces) is memoized in
    a per-process :class:`~repro.sim.backend.WarmContext`.
    """
    from repro.sim.backend import WarmContext, get_backend
    from repro.sweep.spec import RunSpec

    warm = WarmContext()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg is None:
            break
        reply: dict = {"id": msg["id"]}
        try:
            spec = RunSpec.from_dict(msg["spec"])
            t0 = time.perf_counter()
            stats = get_backend(spec.backend).execute(spec, warm=warm)
            reply["stats"] = stats.to_dict()
            reply["wall_time"] = time.perf_counter() - t0
        except BaseException as exc:  # noqa: BLE001 - report, don't die
            reply["error"] = f"{type(exc).__name__}: {exc}"
        reply["warm"] = warm.counters()
        try:
            conn.send(reply)
        except (BrokenPipeError, OSError):
            break
    try:
        conn.close()
    except OSError:
        pass


class _Task:
    """One submitted spec: payload, scheduling cost, completion future."""

    __slots__ = ("id", "spec_dict", "cost", "future", "attempts")

    def __init__(self, task_id: int, spec_dict: dict, cost: float) -> None:
        self.id = task_id
        self.spec_dict = spec_dict
        self.cost = cost
        self.future: Future = Future()
        self.attempts = 0


class _Worker:
    """Parent-side handle of one worker process."""

    __slots__ = ("process", "conn", "task")

    def __init__(self, process, conn: Connection) -> None:
        self.process = process
        self.conn = conn
        self.task: Optional[_Task] = None


class PersistentPool:
    """Long-lived worker pool with a cost-ordered shared task queue."""

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max(1, max_workers or os.cpu_count() or 1)
        ensure_importable_by_workers()
        self._ctx = get_context("spawn")
        self._lock = threading.Lock()
        self._workers: list[_Worker] = []
        self._heap: list[tuple[float, int, _Task]] = []
        self._seq = itertools.count()
        self._tasks_by_id: dict[int, _Task] = {}
        self._wake_r, self._wake_w = self._ctx.Pipe(duplex=False)
        self._dispatcher: threading.Thread | None = None
        self._closed = False
        #: lifetime counters (reported via :meth:`counters`).
        self.spawned = 0
        self.respawns = 0
        self.completed = 0
        self.failed = 0
        #: latest warm-state digest per worker pid.
        self._warm: dict[int, dict] = {}
        self._atexit = atexit.register(self.close)

    # -- lifecycle ------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def n_workers(self) -> int:
        """Workers currently alive (0 until the first submission)."""
        with self._lock:
            return len(self._workers)

    def worker_pids(self) -> list[int]:
        """PIDs of the live workers (test/diagnostic hook)."""
        with self._lock:
            return [w.process.pid for w in self._workers
                    if w.process.pid is not None]

    def _spawn_worker_locked(self) -> _Worker:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main, args=(child_conn,),
            name=f"repro-sweep-worker-{self.spawned}", daemon=True,
        )
        process.start()
        child_conn.close()
        self.spawned += 1
        worker = _Worker(process, parent_conn)
        self._workers.append(worker)
        return worker

    def _ensure_started_locked(self) -> None:
        if self._dispatcher is None:
            self._dispatcher = threading.Thread(
                target=self._dispatch_loop, name="repro-pool-dispatch",
                daemon=True,
            )
            self._dispatcher.start()

    def resize(self, max_workers: int) -> None:
        """Grow the pool's worker cap (never shrinks a running pool)."""
        with self._lock:
            if max_workers > self.max_workers:
                self.max_workers = max_workers
        self._wake()

    def close(self) -> None:
        """Shut down workers and fail any pending tasks.  Idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._wake()
        dispatcher = self._dispatcher
        if dispatcher is not None:
            dispatcher.join(timeout=10)
        with self._lock:
            workers, self._workers = self._workers, []
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.process.join(timeout=2)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:
                pass
        try:
            atexit.unregister(self._atexit)
        except Exception:
            pass

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- submission -----------------------------------------------------

    def submit(self, spec_dict: dict, cost: float = 0.0) -> Future:
        """Queue one spec dict; returns a future of the reply payload.

        The payload is ``{"stats": <MachineStats dict>, "wall_time":
        float}``; a worker-side execution error surfaces as a
        ``RuntimeError`` on the future, a repeated worker crash as
        :class:`WorkerCrashError`.
        """
        with self._lock:
            if self._closed:
                raise PoolClosedError("pool is closed")
            task = _Task(next(self._seq), spec_dict, cost)
            self._tasks_by_id[task.id] = task
            heapq.heappush(self._heap, (-task.cost, task.id, task))
            self._ensure_started_locked()
        self._wake()
        return task.future

    def _wake(self) -> None:
        try:
            self._wake_w.send_bytes(b"x")
        except (BrokenPipeError, OSError):
            pass

    # -- dispatcher thread ----------------------------------------------

    def _dispatch_loop(self) -> None:
        while True:
            with self._lock:
                if self._closed:
                    self._fail_pending_locked()
                    return
                self._assign_locked()
                busy = [w.conn for w in self._workers if w.task is not None]
            ready = conn_wait([*busy, self._wake_r], timeout=1.0)
            for conn in ready:
                if conn is self._wake_r:
                    try:
                        while self._wake_r.poll():
                            self._wake_r.recv_bytes()
                    except (EOFError, OSError):
                        pass
                    continue
                self._handle_ready(conn)
            self._reap_dead()

    def _assign_locked(self) -> None:
        """Hand the most expensive pending tasks to idle workers.

        Workers are spawned on demand up to ``max_workers``, so a
        two-cell batch on a 16-way pool starts two processes, not 16.
        """
        while self._heap:
            worker = next(
                (w for w in self._workers if w.task is None), None
            )
            if worker is None:
                if len(self._workers) >= self.max_workers:
                    break
                worker = self._spawn_worker_locked()
            _, _, task = heapq.heappop(self._heap)
            worker.task = task
            try:
                worker.conn.send({"id": task.id, "spec": task.spec_dict})
            except (BrokenPipeError, OSError):
                # dead worker: put the task back, reap below
                worker.task = None
                heapq.heappush(self._heap, (-task.cost, task.id, task))
                break

    def _handle_ready(self, conn: Connection) -> None:
        with self._lock:
            worker = next(
                (w for w in self._workers if w.conn is conn), None
            )
        if worker is None:
            return
        try:
            reply = conn.recv()
        except (EOFError, OSError):
            self._on_crash(worker)
            return
        with self._lock:
            task = self._tasks_by_id.pop(reply.get("id"), None)
            worker.task = None
            pid = worker.process.pid
            if pid is not None and "warm" in reply:
                self._warm[pid] = reply["warm"]
        if task is None:
            return
        if "error" in reply:
            with self._lock:
                self.failed += 1
            task.future.set_exception(
                RuntimeError(f"worker execution failed: {reply['error']}")
            )
        else:
            with self._lock:
                self.completed += 1
            task.future.set_result(reply)

    def _on_crash(self, worker: _Worker) -> None:
        """A worker died: respawn it and resubmit its task (bounded)."""
        with self._lock:
            if worker not in self._workers:
                return
            self._workers.remove(worker)
            task = worker.task
            worker.task = None
            failed_task = None
            if task is not None:
                task.attempts += 1
                if task.attempts > MAX_TASK_RETRIES:
                    self._tasks_by_id.pop(task.id, None)
                    self.failed += 1
                    failed_task = task
                else:
                    heapq.heappush(self._heap, (-task.cost, task.id, task))
            if not self._closed:
                self.respawns += 1
                self._spawn_worker_locked()
        try:
            worker.conn.close()
        except OSError:
            pass
        worker.process.join(timeout=1)
        if failed_task is not None:
            failed_task.future.set_exception(WorkerCrashError(
                f"spec crashed its worker {failed_task.attempts} times "
                f"(last pid {worker.process.pid})"
            ))

    def _reap_dead(self) -> None:
        """Catch workers that died without a readable EOF this cycle."""
        with self._lock:
            dead = [w for w in self._workers if not w.process.is_alive()]
        for worker in dead:
            self._on_crash(worker)

    def _fail_pending_locked(self) -> None:
        pending = [task for _, _, task in self._heap]
        pending += [w.task for w in self._workers if w.task is not None]
        self._heap.clear()
        self._tasks_by_id.clear()
        for worker in self._workers:
            worker.task = None
        for task in pending:
            if not task.future.done():
                task.future.set_exception(PoolClosedError("pool closed"))

    # -- introspection --------------------------------------------------

    def counters(self) -> dict:
        """JSON-able digest (folded into engine/service counters)."""
        with self._lock:
            warm_totals = {
                "workload_hits": 0, "workload_misses": 0,
                "trace_hits": 0, "trace_misses": 0,
            }
            for digest in self._warm.values():
                for key in warm_totals:
                    warm_totals[key] += digest.get(key, 0)
            return {
                "workers": len(self._workers),
                "max_workers": self.max_workers,
                "spawned": self.spawned,
                "respawns": self.respawns,
                "completed": self.completed,
                "failed": self.failed,
                "queued": len(self._heap),
                "warm": warm_totals,
            }


# -- the process-wide shared pool ---------------------------------------

_shared_pool: PersistentPool | None = None
_shared_lock = threading.Lock()


def shared_pool(max_workers: int | None = None) -> PersistentPool:
    """The process-wide pool, created on first use.

    Grows (never shrinks) to the largest worker count any caller has
    requested, so every engine in one process -- every service job,
    every test -- shares one set of warm workers.
    """
    global _shared_pool
    with _shared_lock:
        if _shared_pool is None or _shared_pool.closed:
            _shared_pool = PersistentPool(max_workers)
        elif max_workers is not None:
            _shared_pool.resize(max_workers)
        return _shared_pool


def shutdown_shared_pool() -> None:
    """Close the process-wide pool (tests; atexit covers normal exit)."""
    global _shared_pool
    with _shared_lock:
        pool, _shared_pool = _shared_pool, None
    if pool is not None:
        pool.close()
