"""Parallel sweep engine with result caching.

The paper's evaluation is a cross-product of protocols × consistency
models × applications × networks.  This package turns one cell of such
a sweep into a value object (:class:`RunSpec`), executes batches of
them serially or across worker processes (:class:`SweepEngine`), and
memoizes completed cells on disk (:class:`ResultCache`) so an
unchanged experiment re-renders without simulating anything.

Typical use::

    from repro.sweep import RunSpec, sweep

    specs = [RunSpec.for_run("mp3d", protocol=p) for p in ("BASIC", "P+CW")]
    results = sweep(specs, jobs=4, cache_dir=".repro-cache")
    for r in results:
        print(r.spec.label(), r.execution_time, r.from_cache)

See ``docs/sweeps.md`` for the cache layout and invalidation rules.
"""

from repro.sweep.cache import (
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
)
from repro.sweep.engine import (
    EXECUTORS,
    POOL_MODES,
    ProgressEvent,
    SweepEngine,
    execute_spec,
    run_spec,
    sweep,
)
from repro.sweep.pool import (
    PersistentPool,
    WorkerCrashError,
    estimate_cost,
    shared_pool,
    shutdown_shared_pool,
)
from repro.sweep.spec import (
    DEFAULT_SEED,
    SPEC_SCHEMA_VERSION,
    RunResult,
    RunSpec,
    SpecSchemaError,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DEFAULT_SEED",
    "EXECUTORS",
    "POOL_MODES",
    "PersistentPool",
    "ProgressEvent",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SPEC_SCHEMA_VERSION",
    "SpecSchemaError",
    "SweepEngine",
    "WorkerCrashError",
    "default_cache_dir",
    "estimate_cost",
    "execute_spec",
    "run_spec",
    "shared_pool",
    "shutdown_shared_pool",
    "sweep",
]
