"""Benchmark regression harness: ``repro bench``.

Runs a fixed matrix of (workload x protocol) cells, reports simulator
throughput (events/sec, min-of-N wall time) and emits the results as
``BENCH_<rev>.json`` in a stable schema so that any two revisions can
be compared cell by cell.  CI runs the quick matrix as a smoke job and
fails when a cell regresses more than the allowed factor against the
committed ``benchmarks/baseline.json``.

Schema (``SCHEMA_VERSION = 1``)::

    {
      "schema_version": 1,
      "revision": "<git short rev, '+dirty' suffix when unclean>",
      "python": "3.12.1",
      "platform": "Linux-...",
      "repeat": 3,
      "cells": [
        {"app": ..., "protocol": ..., "n_procs": ..., "scale": ...,
         "events": ..., "wall_s": ..., "events_per_sec": ...,
         "execution_time": ...},
        ...
      ],
      "totals": {"events": ..., "wall_s": ..., "events_per_sec": ...}
    }

``events`` and ``execution_time`` are deterministic (pinned by the
golden parity suite); only ``wall_s`` / ``events_per_sec`` vary with
the machine.  Wall time per cell is the minimum over ``repeat`` runs,
which is the standard way to suppress scheduler noise.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.config import SystemConfig
from repro.system import System
from repro.workloads import build_workload

SCHEMA_VERSION = 1

#: (app, protocol, n_procs, scale) cells of the quick (CI smoke)
#: matrix: the hot-path microbenchmark the fast path targets, plus
#: paper cells covering every extension and the busiest combination.
QUICK_MATRIX: tuple[tuple[str, str, int, float], ...] = (
    ("hitpath", "BASIC", 1, 1.0),
    ("mp3d", "BASIC", 16, 0.3),
    ("mp3d", "P+CW+M", 16, 0.3),
    ("water", "P", 16, 0.3),
    ("lu", "BASIC", 16, 0.3),
    ("cholesky", "CW", 16, 0.3),
    ("ocean", "M", 16, 0.3),
    # wall-clock cost at scale: an 8x8-mesh machine (64 homes, wider
    # invalidation fan-out) so throughput regressions that only bite
    # past the paper's 16 processors are caught too.
    ("mp3d", "P+CW", 64, 0.1),
)

#: the five paper applications under all eight protocol combinations
FULL_MATRIX: tuple[tuple[str, str, int, float], ...] = tuple(
    (app, proto, 16, 0.3)
    for app in ("mp3d", "cholesky", "water", "lu", "ocean")
    for proto in (
        "BASIC", "P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M"
    )
)


def git_revision(repo: Path | None = None) -> str:
    """Short git revision of ``repo`` (cwd), ``+dirty`` when unclean."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo, capture_output=True, text=True, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return rev + ("+dirty" if dirty else "")


def run_cell(
    app: str, protocol: str, n_procs: int, scale: float, repeat: int = 3
) -> dict:
    """Run one matrix cell ``repeat`` times; report the best wall time."""
    cfg = SystemConfig(n_procs=n_procs).with_protocol(protocol)
    streams = build_workload(app, cfg, scale=scale)
    best = None
    events = execution_time = 0
    for _ in range(max(1, repeat)):
        system = System(cfg)
        t0 = time.perf_counter()
        stats = system.run(streams)
        wall = time.perf_counter() - t0
        events = system.sim.events_fired
        execution_time = stats.execution_time
        if best is None or wall < best:
            best = wall
    return {
        "app": app,
        "protocol": protocol,
        "n_procs": n_procs,
        "scale": scale,
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(events / best, 1),
        "execution_time": execution_time,
    }


def run_matrix(
    matrix=QUICK_MATRIX, repeat: int = 3, verbose: bool = False
) -> dict:
    """Run every cell of ``matrix``; return the result document."""
    cells = []
    for app, protocol, n_procs, scale in matrix:
        cell = run_cell(app, protocol, n_procs, scale, repeat=repeat)
        cells.append(cell)
        if verbose:
            print(
                f"  {app:<10} {protocol:<8} np={n_procs:<3} "
                f"events={cell['events']:>9} wall={cell['wall_s']:.4f}s "
                f"ev/s={cell['events_per_sec']:>11.0f}",
                flush=True,
            )
    tot_events = sum(c["events"] for c in cells)
    tot_wall = sum(c["wall_s"] for c in cells)
    return {
        "schema_version": SCHEMA_VERSION,
        "revision": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": repeat,
        "cells": cells,
        "totals": {
            "events": tot_events,
            "wall_s": round(tot_wall, 6),
            "events_per_sec": round(tot_events / tot_wall, 1),
        },
    }


def cell_key(cell: dict) -> tuple:
    """Identity of a cell, for matching across result documents."""
    return (cell["app"], cell["protocol"], cell["n_procs"], cell["scale"])


def compare(current: dict, baseline: dict, threshold: float = 2.0) -> list:
    """Cells of ``current`` slower than ``baseline`` by > ``threshold``.

    Returns ``(key, current_evps, baseline_evps, slowdown)`` tuples;
    an empty list means no cell regressed.  Cells present in only one
    document are ignored (the matrix may grow between revisions).
    """
    base_by_key = {cell_key(c): c for c in baseline.get("cells", [])}
    regressions = []
    for cell in current.get("cells", []):
        base = base_by_key.get(cell_key(cell))
        if base is None:
            continue
        cur_evps = cell["events_per_sec"]
        base_evps = base["events_per_sec"]
        if cur_evps <= 0 or base_evps <= 0:
            continue
        slowdown = base_evps / cur_evps
        if slowdown > threshold:
            regressions.append(
                (cell_key(cell), cur_evps, base_evps, round(slowdown, 2))
            )
    return regressions


def write_result(result: dict, out: Path) -> None:
    """Write a result document as stable, diff-friendly JSON."""
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def load_result(path: Path) -> dict:
    """Load a result document, checking the schema version."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    return doc


def add_bench_args(parser) -> None:
    """Register the harness options on ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "--full", action="store_true",
        help="run the full 5x8 paper matrix instead of the quick one",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="runs per cell; wall time is the minimum (default 3)",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="output JSON path (default BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="allowed slowdown factor per cell for --check (default 2)",
    )


def run_bench(args) -> int:
    """Run the harness from a parsed argument namespace."""
    matrix = FULL_MATRIX if args.full else QUICK_MATRIX
    name = "full" if args.full else "quick"
    print(f"running {name} matrix ({len(matrix)} cells, "
          f"min of {args.repeat} runs; python {platform.python_version()})")
    result = run_matrix(matrix, repeat=args.repeat, verbose=True)
    totals = result["totals"]
    print(f"TOTAL events={totals['events']} wall={totals['wall_s']:.4f}s "
          f"ev/s={totals['events_per_sec']:.0f}")

    out = Path(args.out) if args.out else Path(
        f"BENCH_{result['revision']}.json"
    )
    write_result(result, out)
    print(f"wrote {out}")

    if args.check:
        baseline = load_result(Path(args.check))
        regressions = compare(result, baseline, threshold=args.threshold)
        if regressions:
            print(f"REGRESSION vs {args.check} (threshold {args.threshold}x):")
            for key, cur, base, slowdown in regressions:
                print(f"  {key}: {base:.0f} -> {cur:.0f} ev/s "
                      f"({slowdown}x slower)")
            return 1
        print(f"no regression vs {args.check} "
              f"(threshold {args.threshold}x, "
              f"baseline rev {baseline['revision']})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for standalone use (``python -m repro.bench``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench", description="benchmark regression harness"
    )
    add_bench_args(parser)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
