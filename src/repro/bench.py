"""Benchmark regression harness: ``repro bench``.

Runs a fixed matrix of (workload x protocol) cells, reports simulator
throughput (events/sec, min-of-N wall time) and emits the results as
``BENCH_<rev>.json`` in a stable schema so that any two revisions can
be compared cell by cell.  CI runs the quick matrix as a smoke job and
fails when a cell regresses more than the allowed factor against the
committed ``benchmarks/baseline.json``.

Schema (``SCHEMA_VERSION = 2``)::

    {
      "schema_version": 2,
      "revision": "<git short rev, '+dirty' suffix when unclean>",
      "python": "3.12.1",
      "platform": "Linux-...",
      "repeat": 3,
      "cells": [
        {"app": ..., "protocol": ..., "n_procs": ..., "scale": ...,
         "backend": ..., "events": ..., "wall_s": ...,
         "events_per_sec": ..., "execution_time": ...},
        ...
      ],
      "totals": {"events": ..., "wall_s": ..., "events_per_sec": ...}
    }

v2 adds the ``backend`` execution tier (see :mod:`repro.sim.backend`)
to every cell and to the cell identity used by ``--check``, so a
replay-tier cell is never compared against an event-tier baseline.

``events`` and ``execution_time`` are deterministic (pinned by the
golden parity suite); only ``wall_s`` / ``events_per_sec`` vary with
the machine.  On the event tiers ``events`` counts fired simulator
events; on the replay tier it counts replayed references (that tier's
unit of work).  Wall time per cell is the minimum over ``repeat``
runs, which is the standard way to suppress scheduler noise.
"""

from __future__ import annotations

import json
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.config import SystemConfig
from repro.sim.backend import BACKEND_NAMES
from repro.system import System
from repro.workloads import build_workload

SCHEMA_VERSION = 2

#: (app, protocol, n_procs, scale[, backend]) cells of the quick (CI
#: smoke) matrix: the hot-path microbenchmark the fast path targets,
#: plus paper cells covering every extension and the busiest
#: combination.  A missing fifth element means the event tier.
QUICK_MATRIX: tuple[tuple, ...] = (
    ("hitpath", "BASIC", 1, 1.0),
    ("mp3d", "BASIC", 16, 0.3),
    ("mp3d", "P+CW+M", 16, 0.3),
    ("water", "P", 16, 0.3),
    ("lu", "BASIC", 16, 0.3),
    ("cholesky", "CW", 16, 0.3),
    ("ocean", "M", 16, 0.3),
    # wall-clock cost at scale: an 8x8-mesh machine (64 homes, wider
    # invalidation fan-out) so throughput regressions that only bite
    # past the paper's 16 processors are caught too.
    ("mp3d", "P+CW", 64, 0.1),
    # the replay fast tier on the busiest paper cell, timed against
    # the identical event-tier cell above.
    ("mp3d", "P+CW+M", 16, 0.3, "replay"),
)

#: the five paper applications under all eight protocol combinations
FULL_MATRIX: tuple[tuple, ...] = tuple(
    (app, proto, 16, 0.3)
    for app in ("mp3d", "cholesky", "water", "lu", "ocean")
    for proto in (
        "BASIC", "P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M"
    )
)


def git_revision(repo: Path | None = None) -> str:
    """Short git revision of ``repo`` (cwd), ``+dirty`` when unclean."""
    try:
        rev = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=repo, capture_output=True, text=True, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            cwd=repo, capture_output=True, text=True, check=True,
        ).stdout.strip()
    except (OSError, subprocess.CalledProcessError):
        return "unknown"
    return rev + ("+dirty" if dirty else "")


def run_cell(
    app: str, protocol: str, n_procs: int, scale: float,
    backend: str = "event", repeat: int = 3,
) -> dict:
    """Run one matrix cell ``repeat`` times; report the best wall time.

    The replay tier records its reference trace (or loads a previously
    recorded one) *outside* the timed region, so ``wall_s`` measures
    replay throughput, not one-time recording cost.
    """
    if backend not in BACKEND_NAMES:
        raise ValueError(
            f"unknown execution backend {backend!r}; "
            f"expected one of {', '.join(BACKEND_NAMES)}"
        )
    cfg = SystemConfig(n_procs=n_procs).with_protocol(protocol)
    best = None
    events = execution_time = 0
    if backend == "replay":
        from repro.sim.backend import get_backend
        from repro.sim.replay import replay_trace
        from repro.sweep import RunSpec

        spec = RunSpec.for_run(app, protocol=protocol, n_procs=n_procs,
                               scale=scale, backend="replay")
        trace = get_backend("replay").store().get_or_record(spec)
        for _ in range(max(1, repeat)):
            t0 = time.perf_counter()
            stats = replay_trace(cfg, trace)
            wall = time.perf_counter() - t0
            events = trace.total_ops()
            execution_time = stats.execution_time
            if best is None or wall < best:
                best = wall
    else:
        if backend == "specialized":
            from repro.sim.specialized import SpecializedSystem as sys_cls
        else:
            sys_cls = System
        streams = build_workload(app, cfg, scale=scale)
        for _ in range(max(1, repeat)):
            system = sys_cls(cfg)
            t0 = time.perf_counter()
            stats = system.run(streams)
            wall = time.perf_counter() - t0
            events = system.sim.events_fired
            execution_time = stats.execution_time
            if best is None or wall < best:
                best = wall
    return {
        "app": app,
        "protocol": protocol,
        "n_procs": n_procs,
        "scale": scale,
        "backend": backend,
        "events": events,
        "wall_s": round(best, 6),
        "events_per_sec": round(events / best, 1),
        "execution_time": execution_time,
    }


def run_matrix(
    matrix=QUICK_MATRIX, repeat: int = 3, verbose: bool = False,
    backend: str | None = None,
) -> dict:
    """Run every cell of ``matrix``; return the result document.

    ``backend`` forces every cell onto one execution tier; ``None``
    (the default) honors each row's own tier (fifth tuple element,
    event when absent).
    """
    cells = []
    for row in matrix:
        app, protocol, n_procs, scale = row[:4]
        tier = backend or (row[4] if len(row) > 4 else "event")
        cell = run_cell(app, protocol, n_procs, scale, backend=tier,
                        repeat=repeat)
        cells.append(cell)
        if verbose:
            print(
                f"  {app:<10} {protocol:<8} np={n_procs:<3} "
                f"{tier:<11} "
                f"events={cell['events']:>9} wall={cell['wall_s']:.4f}s "
                f"ev/s={cell['events_per_sec']:>11.0f}",
                flush=True,
            )
    tot_events = sum(c["events"] for c in cells)
    tot_wall = sum(c["wall_s"] for c in cells)
    return {
        "schema_version": SCHEMA_VERSION,
        "revision": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": repeat,
        "cells": cells,
        "totals": {
            "events": tot_events,
            "wall_s": round(tot_wall, 6),
            "events_per_sec": round(tot_events / tot_wall, 1),
        },
    }


# -- sweep-orchestration suite ------------------------------------------
#
# Cells that measure the *sweep engine* (pool spawn/reuse, scheduling,
# result-cache tiers) in specs/sec rather than the simulator core in
# events/sec.  They share the cell schema -- ``events`` counts specs,
# the unit of work -- under the synthetic tier name ``"sweep"`` so the
# identity used by ``--check`` can never collide with a simulator cell
# (``"sweep"`` is not a RunSpec backend).

#: number of workers the sweep suite fans out to.
SWEEP_BENCH_JOBS = 4

#: hot-tier size used when the suite runs with the current defaults.
SWEEP_BENCH_HOT_ENTRIES = 512


def _sweep_specs_cold16() -> list:
    """16 small uncached cells: 8 protocol combos x 2 machine sizes."""
    from repro.sweep import RunSpec

    protos = ("BASIC", "P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M")
    return [
        RunSpec.for_run("mp3d", protocol=p, n_procs=np, scale=0.05)
        for np in (4, 8) for p in protos
    ]


def _sweep_specs_cachedmix() -> list:
    """32 cells mixing protocols and seeds (the repeat-heavy shape)."""
    from repro.sweep import RunSpec

    protos = ("BASIC", "P", "CW", "M", "P+CW", "P+M", "CW+M", "P+CW+M")
    return [
        RunSpec.for_run("mp3d", protocol=p, n_procs=4, scale=0.05, seed=s)
        for s in (12345, 23456, 34567, 45678) for p in protos
    ]


def run_sweep_cell(
    name: str, specs: list, repeat: int = 3, *, jobs: int = 1,
    pool: str = "persistent", hot_entries: int = 0,
    write_batch: int = 1, cold: bool = True,
) -> dict:
    """Time ``SweepEngine.run`` over ``specs``; report best specs/sec.

    ``cold=True`` starts every repeat from an empty result cache (the
    timed region simulates every cell); ``cold=False`` prepopulates the
    cache once per repeat outside the timed region, so the timed region
    measures pure result-serving throughput (disk tier vs hot tier).
    Each repeat uses a fresh cache directory; the persistent worker
    pool, by design, stays warm across repeats -- that amortization is
    exactly what the suite exists to measure.
    """
    import shutil
    import tempfile

    from repro.sweep import ResultCache, SweepEngine

    best = None
    for _ in range(max(1, repeat)):
        tmp = tempfile.mkdtemp(prefix="repro-bench-sweep-")
        try:
            cache = ResultCache(
                tmp, hot_entries=hot_entries, write_batch=write_batch
            )
            engine = SweepEngine(
                executor="process" if jobs > 1 else "serial",
                max_workers=jobs, cache=cache, pool=pool,
            )
            if not cold:
                engine.run(specs)
            t0 = time.perf_counter()
            engine.run(specs)
            wall = time.perf_counter() - t0
            engine.close()
        finally:
            shutil.rmtree(tmp, ignore_errors=True)
        if best is None or wall < best:
            best = wall
    n = len(specs)
    return {
        "app": name,
        "protocol": "-",
        "n_procs": jobs,
        "scale": 1.0,
        "backend": "sweep",
        "events": n,
        "wall_s": round(best, 6),
        "events_per_sec": round(n / best, 1),
        "execution_time": 0,
    }


def run_sweep_suite(
    repeat: int = 3, verbose: bool = False, *,
    pool: str = "persistent", hot_entries: int = SWEEP_BENCH_HOT_ENTRIES,
) -> dict:
    """Run the sweep-orchestration cells; return a result document.

    ``pool``/``hot_entries`` select the configuration under test; the
    committed baseline was captured with the legacy configuration
    (``pool="per-run"``, ``hot_entries=0``), so ``--check`` against it
    measures the orchestration overhaul itself.
    """
    write_batch = 32 if hot_entries else 1
    rows = (
        ("cold16", _sweep_specs_cold16(), True),
        ("cachedmix", _sweep_specs_cachedmix(), False),
    )
    cells = []
    for name, specs, cold in rows:
        cell = run_sweep_cell(
            name, specs, repeat, jobs=SWEEP_BENCH_JOBS, pool=pool,
            hot_entries=hot_entries, write_batch=write_batch, cold=cold,
        )
        cells.append(cell)
        if verbose:
            print(
                f"  {name:<10} {'-':<8} jobs={SWEEP_BENCH_JOBS:<2} "
                f"pool={pool:<10} hot={hot_entries:<4} "
                f"specs={cell['events']:>3} wall={cell['wall_s']:.4f}s "
                f"specs/s={cell['events_per_sec']:>8.1f}",
                flush=True,
            )
    from repro.sweep import shutdown_shared_pool

    shutdown_shared_pool()
    tot_specs = sum(c["events"] for c in cells)
    tot_wall = sum(c["wall_s"] for c in cells)
    return {
        "schema_version": SCHEMA_VERSION,
        "revision": git_revision(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "repeat": repeat,
        "cells": cells,
        "totals": {
            "events": tot_specs,
            "wall_s": round(tot_wall, 6),
            "events_per_sec": round(tot_specs / tot_wall, 1),
        },
    }


def speedups(current: dict, baseline: dict) -> list:
    """Per-cell throughput ratios current/baseline for matched cells."""
    base_by_key = {cell_key(c): c for c in baseline.get("cells", [])}
    out = []
    for cell in current.get("cells", []):
        base = base_by_key.get(cell_key(cell))
        if base is None or base["events_per_sec"] <= 0:
            continue
        out.append((
            cell_key(cell),
            round(cell["events_per_sec"] / base["events_per_sec"], 2),
        ))
    return out


def cell_key(cell: dict) -> tuple:
    """Identity of a cell, for matching across result documents.

    Includes the execution tier (``"event"`` when absent, which is what
    every v1 document meant), so replay-tier throughput is never
    compared against an event-tier baseline.
    """
    return (cell["app"], cell["protocol"], cell["n_procs"], cell["scale"],
            cell.get("backend", "event"))


def compare(current: dict, baseline: dict, threshold: float = 2.0) -> list:
    """Cells of ``current`` slower than ``baseline`` by > ``threshold``.

    Returns ``(key, current_evps, baseline_evps, slowdown)`` tuples;
    an empty list means no cell regressed.  Cells present in only one
    document never count as regressions (the matrix may grow between
    revisions); :func:`unmatched` lists them so ``--check`` can warn.
    """
    base_by_key = {cell_key(c): c for c in baseline.get("cells", [])}
    regressions = []
    for cell in current.get("cells", []):
        base = base_by_key.get(cell_key(cell))
        if base is None:
            continue
        cur_evps = cell["events_per_sec"]
        base_evps = base["events_per_sec"]
        if cur_evps <= 0 or base_evps <= 0:
            continue
        slowdown = base_evps / cur_evps
        if slowdown > threshold:
            regressions.append(
                (cell_key(cell), cur_evps, base_evps, round(slowdown, 2))
            )
    return regressions


def unmatched(current: dict, baseline: dict) -> tuple[list, list]:
    """Cell keys present in only one of the two result documents.

    Returns ``(only_current, only_baseline)``; either list being
    non-empty means the regression check silently skipped those cells,
    which ``--check`` surfaces as warnings.
    """
    cur_keys = [cell_key(c) for c in current.get("cells", [])]
    base_keys = [cell_key(c) for c in baseline.get("cells", [])]
    cur_set, base_set = set(cur_keys), set(base_keys)
    return ([k for k in cur_keys if k not in base_set],
            [k for k in base_keys if k not in cur_set])


def write_result(result: dict, out: Path) -> None:
    """Write a result document as stable, diff-friendly JSON."""
    out.write_text(json.dumps(result, indent=2, sort_keys=True) + "\n")


def load_result(path: Path) -> dict:
    """Load a result document, checking the schema version."""
    doc = json.loads(Path(path).read_text())
    version = doc.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r}, expected {SCHEMA_VERSION}"
        )
    return doc


def add_bench_args(parser) -> None:
    """Register the harness options on ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "--full", action="store_true",
        help="run the full 5x8 paper matrix instead of the quick one",
    )
    parser.add_argument(
        "--repeat", type=int, default=3,
        help="runs per cell; wall time is the minimum (default 3)",
    )
    parser.add_argument(
        "--out", metavar="FILE",
        help="output JSON path (default BENCH_<rev>.json)",
    )
    parser.add_argument(
        "--check", metavar="BASELINE",
        help="compare against a baseline JSON; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold", type=float, default=2.0,
        help="allowed slowdown factor per cell for --check (default 2)",
    )
    parser.add_argument(
        "--backend", choices=BACKEND_NAMES, default=None,
        help="force every cell onto one execution tier "
             "(default: each matrix row's own tier)",
    )
    parser.add_argument(
        "--suite", choices=("cells", "sweep"), default="cells",
        help="'cells' times the simulator core (events/sec); 'sweep' "
             "times the sweep engine itself in specs/sec (default cells)",
    )
    parser.add_argument(
        "--pool", choices=("persistent", "per-run"), default="persistent",
        help="[suite=sweep] process-pool flavor under test "
             "(default persistent)",
    )
    parser.add_argument(
        "--hot-cache-entries", type=int, default=SWEEP_BENCH_HOT_ENTRIES,
        metavar="N",
        help="[suite=sweep] hot-tier size under test; 0 disables "
             f"(default {SWEEP_BENCH_HOT_ENTRIES})",
    )


def run_bench(args) -> int:
    """Run the harness from a parsed argument namespace."""
    suite = getattr(args, "suite", "cells")
    if suite == "sweep":
        print(f"running sweep suite (min of {args.repeat} runs; "
              f"python {platform.python_version()})")
        result = run_sweep_suite(
            repeat=args.repeat, verbose=True,
            pool=getattr(args, "pool", "persistent"),
            hot_entries=getattr(
                args, "hot_cache_entries", SWEEP_BENCH_HOT_ENTRIES
            ),
        )
        unit = "specs"
    else:
        matrix = FULL_MATRIX if args.full else QUICK_MATRIX
        name = "full" if args.full else "quick"
        print(f"running {name} matrix ({len(matrix)} cells, "
              f"min of {args.repeat} runs; "
              f"python {platform.python_version()})")
        result = run_matrix(matrix, repeat=args.repeat, verbose=True,
                            backend=getattr(args, "backend", None))
        unit = "events"
    totals = result["totals"]
    print(f"TOTAL {unit}={totals['events']} wall={totals['wall_s']:.4f}s "
          f"{unit[:-1]}s/s={totals['events_per_sec']:.0f}")

    out = Path(args.out) if args.out else Path(
        f"BENCH_{result['revision']}.json"
    )
    write_result(result, out)
    print(f"wrote {out}")

    if args.check:
        baseline = load_result(Path(args.check))
        only_cur, only_base = unmatched(result, baseline)
        for key in only_cur:
            print(f"WARNING: {key} has no baseline cell; not checked")
        for key in only_base:
            print(f"WARNING: {key} is in the baseline only; not checked")
        regressions = compare(result, baseline, threshold=args.threshold)
        if regressions:
            print(f"REGRESSION vs {args.check} (threshold {args.threshold}x):")
            for key, cur, base, slowdown in regressions:
                print(f"  {key}: {base:.0f} -> {cur:.0f} {unit}/s "
                      f"({slowdown}x slower)")
            return 1
        for key, ratio in speedups(result, baseline):
            print(f"  speedup {key}: {ratio}x vs baseline")
        print(f"no regression vs {args.check} "
              f"(threshold {args.threshold}x, "
              f"baseline rev {baseline['revision']})")
    return 0


def main(argv: list[str] | None = None) -> int:
    """Entry point for standalone use (``python -m repro.bench``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro bench", description="benchmark regression harness"
    )
    add_bench_args(parser)
    return run_bench(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
