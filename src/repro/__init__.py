"""repro -- reproduction of Dahlgren, Dubois & Stenström (ISCA 1994),
"Combined Performance Gains of Simple Cache Protocol Extensions".

A detailed architectural simulator of a 16-node directory-based
CC-NUMA multiprocessor with three cache-protocol extensions --
adaptive sequential prefetching (P), the migratory sharing
optimization (M) and a competitive-update mechanism with write caches
(CW) -- evaluated alone and in combination under sequential and
release consistency, with contention-free and wormhole-mesh networks.

Quickstart::

    from repro import SystemConfig, System
    from repro.workloads import build_workload

    cfg = SystemConfig().with_protocol("P+CW")
    streams = build_workload("mp3d", cfg, scale=0.5)
    stats = System(cfg).run(streams)
    print(stats.execution_time, stats.miss_rate("coherence"))
"""

from repro import api
from repro.config import (
    ALL_PROTOCOLS,
    SC_PROTOCOLS,
    CacheConfig,
    CompetitiveConfig,
    Consistency,
    NetworkConfig,
    NetworkKind,
    PrefetchConfig,
    ProtocolConfig,
    SystemConfig,
    TimingConfig,
)
from repro.stats.counters import MachineStats
from repro.sweep import ResultCache, RunResult, RunSpec, SweepEngine, sweep
from repro.system import System, run_system

__version__ = "1.0.0"

__all__ = [
    "ALL_PROTOCOLS",
    "api",
    "CacheConfig",
    "CompetitiveConfig",
    "Consistency",
    "MachineStats",
    "NetworkConfig",
    "NetworkKind",
    "PrefetchConfig",
    "ProtocolConfig",
    "ResultCache",
    "RunResult",
    "RunSpec",
    "SC_PROTOCOLS",
    "SweepEngine",
    "System",
    "SystemConfig",
    "TimingConfig",
    "run_system",
    "sweep",
]
