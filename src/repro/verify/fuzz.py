"""Seeded long-run invariant fuzzer over randomized configurations.

The model checker is exhaustive but tiny; the fuzzer is the opposite
arm of the same tong: long randomized reference streams (5k+ ops per
processor) on randomized machine configurations spanning every knob
the library exposes -- protocols, consistency models, bounded caches,
small write buffers, mesh links, page placement, competitive-update
variants, fixed prefetch degrees -- with the full invariant battery
checked after the run.  ``tests/test_fuzz_matrix.py`` reuses
:func:`fuzz_stream` / :func:`random_config` for its shorter CI sweep.

A failing trial is shrunk by greedy chunked deletion over the
per-processor streams (:func:`shrink_streams`), preserving each
stream's trailing barrier so a shrunk candidate can still terminate,
and reported as a replayable :class:`FuzzFailure`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable

from repro.config import (
    ALL_PROTOCOLS,
    SC_PROTOCOLS,
    CacheConfig,
    CompetitiveConfig,
    Consistency,
    NetworkConfig,
    NetworkKind,
    PrefetchConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.core.invariants import InvariantViolation, check_all
from repro.sim.engine import SimulationError
from repro.system import System

#: one processor's reference stream: (op, arg) tuples.
Stream = list[tuple]

ProgressFn = Callable[[str], None]


def fuzz_stream(pid: int, seed: int, nops: int = 220) -> Stream:
    """A deterministic random reference stream (reads/writes/locks)."""
    rng = random.Random(seed)
    ops: Stream = []
    in_cs = False
    lock = 0x10000
    for _ in range(nops):
        r = rng.random()
        if in_cs and r < 0.15:
            ops.append(("release", lock))
            in_cs = False
            continue
        if not in_cs and r < 0.05:
            lock = 0x10000 + rng.randrange(3) * 4096
            ops.append(("acquire", lock))
            in_cs = True
            continue
        a = rng.randrange(48) * 32 + rng.randrange(8) * 4
        ops.append(("read", a) if r < 0.6 else ("write", a))
        if rng.random() < 0.3:
            ops.append(("think", rng.randrange(1, 8)))
    if in_cs:
        ops.append(("release", lock))
    ops.append(("barrier", 0))
    return ops


def random_config(rng: random.Random) -> SystemConfig:
    """A randomized machine configuration spanning every exposed knob."""
    model = rng.choice([Consistency.RC, Consistency.RC, Consistency.SC])
    protos = ALL_PROTOCOLS if model is Consistency.RC else SC_PROTOCOLS
    proto = ProtocolConfig.from_name(rng.choice(protos))
    if proto.competitive_update and rng.random() < 0.4:
        proto = replace(
            proto,
            competitive_params=rng.choice(
                [
                    CompetitiveConfig.classic(),
                    CompetitiveConfig(exclusive_grant=True),
                    CompetitiveConfig(threshold=2),
                ]
            ),
        )
    if proto.prefetch and rng.random() < 0.3:
        proto = replace(
            proto,
            prefetch_params=PrefetchConfig(initial_degree=4, adaptive=False),
        )
    return SystemConfig(
        n_procs=rng.choice([4, 9, 16]),
        consistency=model,
        protocol=proto,
        cache=CacheConfig(
            slc_size=rng.choice([None, 1024, 2048]),
            slwb_entries=rng.choice([2, 4, 16]),
            flwb_entries=rng.choice([1, 4, 8]),
        ),
        network=(
            NetworkConfig(
                kind=NetworkKind.MESH,
                link_width_bits=rng.choice([16, 32, 64]),
            )
            if rng.random() < 0.4
            else NetworkConfig()
        ),
        page_placement=rng.choice(["round_robin", "first_touch"]),
    )


def _run_trial(
    cfg: SystemConfig, streams: list[Stream], max_events: int
) -> Exception | None:
    """Run one trial; returns the failure exception, or None."""
    try:
        system = System(cfg)
        system.run([list(s) for s in streams], max_events=max_events)
        check_all(system)
    except (InvariantViolation, SimulationError) as exc:
        return exc
    return None


def shrink_streams(
    cfg: SystemConfig,
    streams: list[Stream],
    failure_type: type,
    max_events: int,
    max_runs: int = 150,
) -> list[Stream]:
    """Chunked greedy deletion over every stream while the failure holds.

    Each stream's final op (its terminating barrier) is never deleted,
    so a candidate can still run to completion; a candidate failing
    with a *different* exception type than the original counts as not
    failing.  ``max_runs`` bounds the replay budget (each replay is a
    full simulation).
    """
    runs = 0

    def still_fails(candidate: list[Stream]) -> bool:
        nonlocal runs
        if runs >= max_runs:
            return False
        runs += 1
        exc = _run_trial(cfg, candidate, max_events)
        return type(exc) is failure_type

    current = [list(s) for s in streams]
    for pid in range(len(current)):
        chunk = max(1, (len(current[pid]) - 1) // 2)
        while chunk >= 1 and runs < max_runs:
            i = 0
            changed = False
            # never touch the trailing barrier
            while i < len(current[pid]) - 1:
                candidate = [list(s) for s in current]
                del candidate[pid][i:min(i + chunk, len(candidate[pid]) - 1)]
                if still_fails(candidate):
                    current = candidate
                    changed = True
                else:
                    i += chunk
            if chunk == 1 and not changed:
                break
            chunk //= 2
    return current


@dataclass
class FuzzFailure:
    """One failing fuzz trial, with its shrunk reproduction."""

    trial: int
    seed: int
    config: SystemConfig
    streams: list[Stream]
    error: str

    def replay(self) -> None:
        """Re-run the shrunk reproduction (raises the failure)."""
        system = System(self.config)
        system.run([list(s) for s in self.streams])
        check_all(system)


@dataclass
class FuzzResult:
    """Outcome of a fuzzing campaign."""

    trials: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def run_fuzz(
    seed: int = 0,
    trials: int = 5,
    nops: int = 5000,
    max_events: int = 80_000_000,
    shrink: bool = True,
    progress: ProgressFn | None = None,
) -> FuzzResult:
    """Run ``trials`` randomized long-stream trials from ``seed``."""
    result = FuzzResult(trials=trials)
    for trial in range(trials):
        trial_seed = seed * 1_000_003 + trial
        rng = random.Random(trial_seed)
        cfg = random_config(rng)
        streams = [
            fuzz_stream(i, trial_seed * 977 + i, nops=nops)
            for i in range(cfg.n_procs)
        ]
        exc = _run_trial(cfg, streams, max_events)
        if exc is None:
            if progress is not None:
                progress(
                    f"trial {trial}: ok -- {cfg.protocol.name} / "
                    f"{cfg.directory.name} / {cfg.consistency.value}, "
                    f"{cfg.n_procs} procs, {nops} ops/proc"
                )
            continue
        if shrink:
            streams = shrink_streams(cfg, streams, type(exc), max_events)
            exc = _run_trial(cfg, streams, max_events) or exc
        failure = FuzzFailure(
            trial=trial,
            seed=trial_seed,
            config=cfg,
            streams=streams,
            error=f"{type(exc).__name__}: {exc}",
        )
        result.failures.append(failure)
        if progress is not None:
            total = sum(len(s) for s in streams)
            progress(
                f"trial {trial}: FAILED ({failure.error}); "
                f"shrunk to {total} ops"
            )
    return result
