"""Transition-coverage accounting for the model checker.

A bounded exploration is only as convincing as the protocol surface it
actually exercised, so every run keeps two sets of FSM state×event
pairs:

* **directory side** -- ``(MemoryState, MsgType)`` observed by a home
  controller's ``process_request`` (instrumented per instance; the
  home always dispatches through ``self.process_request``, so wrapping
  the attribute intercepts both fresh deliveries and the drain of the
  pending queue);
* **requester side** -- ``(CacheState-or-INVALID, op kind)`` recorded
  at operation granularity by the stepper (the cache-side message
  handlers are resolved once at ``System`` construction, so they
  cannot be intercepted per instance).

The per-combo report prints the reached pairs sorted, which makes the
*unreached* ones -- dead states, unexplored events -- visible by
omission.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.core.messages import Message, MsgType
from repro.core.states import MemoryState

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.core.home import HomeController
    from repro.system import System


class CoverageTracker:
    """Reached FSM state×event pairs, shared across an exploration."""

    def __init__(self) -> None:
        #: directory transitions: (memory-state name, message name).
        self.directory: set[tuple[str, str]] = set()
        #: requester transitions: (cache-line state name, op kind).
        self.requester: set[tuple[str, str]] = set()

    # -- recording -----------------------------------------------------

    def record_home(self, state: MemoryState, mtype: MsgType) -> None:
        self.directory.add((state.name, MsgType(mtype).name))

    def record_op(self, line_state: str, op_kind: str) -> None:
        self.requester.add((line_state, op_kind))

    def instrument(self, system: "System") -> None:
        """Wrap every home's ``process_request`` to record transitions."""
        for node in system.nodes:
            self._instrument_home(node.home)

    def _instrument_home(self, home: "HomeController") -> None:
        orig = home.process_request

        def recording_process_request(msg: Message, t: int) -> None:
            entry = home._dir_entries.get(msg.block)
            state = MemoryState.CLEAN if entry is None else entry.state
            self.record_home(state, msg.mtype)
            orig(msg, t)

        # instance attribute shadows the bound method; the home always
        # calls ``self.process_request`` dynamically.
        home.process_request = recording_process_request  # type: ignore[method-assign]

    # -- aggregation / reporting ---------------------------------------

    def merge(self, other: "CoverageTracker") -> None:
        self.directory |= other.directory
        self.requester |= other.requester

    @property
    def pairs(self) -> int:
        """Total number of distinct state×event pairs reached."""
        return len(self.directory) + len(self.requester)

    def report_lines(self) -> list[str]:
        """Human-readable coverage listing (sorted, one pair a line)."""
        lines = [f"directory transitions reached: {len(self.directory)}"]
        lines += [
            f"  {state:10s} x {event}"
            for state, event in sorted(self.directory)
        ]
        lines.append(f"requester transitions reached: {len(self.requester)}")
        lines += [
            f"  {state:10s} x {event}"
            for state, event in sorted(self.requester)
        ]
        return lines
