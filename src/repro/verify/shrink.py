"""Counterexample shrinking (greedy op-deletion).

A violating sequence found by the explorer or fuzzer is usually padded
with ops that set up cache/directory state the bug does not need.  The
shrinkers below repeatedly delete parts of the input while a caller-
supplied *failure predicate* keeps holding, converging on a locally
minimal (1-minimal) reproduction: removing any single remaining
element no longer fails.

The predicate owns the notion of "still fails": for the model checker
it replays the candidate on a fresh system and reports whether the
*target* failure (invariant violation / deadlock) recurs -- candidate
sequences that become structurally invalid (an unlock without its
lock) simply count as not failing.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")

FailsFn = Callable[[tuple], bool]


def shrink_ops(ops: Sequence[T], fails: FailsFn) -> tuple[T, ...]:
    """Greedy deletion to a 1-minimal failing subsequence.

    Starts with whole-chunk deletions (halving chunk sizes) so long
    padded sequences collapse quickly, then finishes with single-op
    passes until a fixpoint.  ``fails(candidate)`` must be
    deterministic; the input itself must fail.
    """
    current = list(ops)
    chunk = max(1, len(current) // 2)
    while chunk >= 1:
        i = 0
        changed = False
        while i < len(current):
            candidate = current[:i] + current[i + chunk:]
            if candidate and fails(tuple(candidate)):
                current = candidate
                changed = True
            else:
                i += chunk
        if chunk == 1 and not changed:
            break
        chunk = chunk // 2 if chunk > 1 else (1 if changed else 0)
    return tuple(current)
