"""Protocol verification: bounded model checking and invariant fuzzing.

Benchmarking shows an extension is *fast*; this package shows it is
*correct*.  Two complementary arms:

* :func:`check_model` -- exhaustive BFS over every interleaving of a
  small op alphabet (read / write / replacement-forcing conflict
  access, plus guarded lock/unlock for sync-sensitive combos) on a
  tiny machine (2-3 nodes x 1-2 blocks), with every visited quiescent
  state passing the full :mod:`repro.core.invariants` battery and the
  mid-flight-safe subset holding between individual simulator events.
  States dedupe on a canonical form modulo node renaming
  (:mod:`repro.verify.canon`); failures come back as minimized,
  replayable :class:`Counterexample` sequences.
* :func:`run_fuzz` -- seeded 5k+-op random streams on randomized full
  machine configurations, with greedy stream shrinking on failure.

``repro verify model`` / ``repro verify fuzz`` / ``repro verify
registry`` surface both on the CLI; ``docs/verification.md`` explains
how to verify a new extension before registering it.
"""

from repro.verify.canon import agent_permutations, canonical_key
from repro.verify.coverage import CoverageTracker
from repro.verify.explorer import (
    Counterexample,
    ModelCheckResult,
    check_model,
    matrix_configs,
    registry_combos,
    verify_matrix,
)
from repro.verify.fuzz import (
    FuzzFailure,
    FuzzResult,
    fuzz_stream,
    random_config,
    run_fuzz,
)
from repro.verify.shrink import shrink_ops
from repro.verify.stepper import (
    Op,
    Stepper,
    VerifyConfig,
    VerifyDeadlock,
)

__all__ = [
    "Counterexample",
    "CoverageTracker",
    "FuzzFailure",
    "FuzzResult",
    "ModelCheckResult",
    "Op",
    "Stepper",
    "VerifyConfig",
    "VerifyDeadlock",
    "agent_permutations",
    "canonical_key",
    "check_model",
    "fuzz_stream",
    "matrix_configs",
    "random_config",
    "registry_combos",
    "run_fuzz",
    "shrink_ops",
    "verify_matrix",
]
