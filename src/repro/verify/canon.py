"""Canonical global-state extraction, modulo node renaming.

The checker dedupes explored states on a hashable *canonical form* of
the quiescent machine state:

* per-cache: resident SLC lines with their protocol metadata, resident
  FLC blocks, and the CW write-cache contents;
* per-home: non-default directory entries (state, owner, believed
  sharers, overflow bit, migratory metadata);
* per-home: held locks and their waiter queues.

Node ids are canonicalized as *agents* only: a permutation renames the
caches (and every node id recorded in directory entries and lock
tables), while the block->home mapping -- and therefore the physical
directory an entry lives in -- stays fixed.  The canonical form is the
minimum over all admissible permutations; for a coarse-vector
directory only region-structure-preserving permutations are admissible
(an arbitrary renaming could turn a representable region-aligned
believed set into an unrepresentable one).

Soundness: nodes are architecturally identical, so two states equal
under an admissible renaming can only differ in *which* physical node
plays which role -- e.g. whether a requester is local to a block's
home, which shifts latencies but not the protocol decisions reachable
from a quiescent state.  If that ever merged two genuinely different
states, the checker would explore fewer interleavings -- a coverage
loss, never a false violation, since every *visited* state is checked
on its own replay.  Set ``VerifyConfig.symmetry=False`` to disable the
reduction and explore with identity renaming only.
"""

from __future__ import annotations

from itertools import permutations
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - type hints only
    from repro.node.node import Node
    from repro.system import System

#: canonical-form type: nested tuples of primitives (hashable).
StateKey = tuple


def agent_permutations(system: "System") -> list[tuple[int, ...]]:
    """Admissible agent renamings for ``system``'s configuration."""
    n = system.cfg.n_procs
    perms = list(permutations(range(n)))
    org = system.nodes[0].home.directory.org
    if getattr(org, "kind", "") == "coarse" and org.region_size > 1:
        k = org.region_size

        def preserves_regions(p: tuple[int, ...]) -> bool:
            for lo in range(0, n, k):
                image = sorted(p[i] for i in range(lo, min(lo + k, n)))
                if image[0] % k or image != list(
                    range(image[0], image[0] + len(image))
                ):
                    return False
            return True

        perms = [p for p in perms if preserves_regions(p)]
    return perms


def canonical_key(system: "System", symmetry: bool = True) -> StateKey:
    """The canonical form of ``system``'s quiescent global state."""
    if not symmetry or system.cfg.n_procs == 1:
        return _state_under(system, tuple(range(system.cfg.n_procs)))
    return min(
        _state_under(system, perm) for perm in agent_permutations(system)
    )


def _state_under(system: "System", perm: tuple[int, ...]) -> StateKey:
    """The global state with agent ``i`` renamed to ``perm[i]``."""
    caches: list = [None] * len(system.nodes)
    for node in system.nodes:
        caches[perm[node.node_id]] = _cache_repr(node)
    homes = tuple(_home_repr(node, perm) for node in system.nodes)
    locks = tuple(_locks_repr(node, perm) for node in system.nodes)
    return (tuple(caches), homes, locks)


def _cache_repr(node: "Node") -> StateKey:
    cache = node.cache
    slc = tuple(
        sorted(
            (
                line.block,
                line.state.name,
                line.prefetched,
                line.comp_count,
                line.accessed_since_update,
                line.modified_since_update,
            )
            for line in cache.slc.resident_lines()
        )
    )
    flc = tuple(sorted(cache.flc.resident_blocks()))
    wcache = cache.wcache
    wc = (
        ()
        if wcache is None
        else tuple(
            sorted(
                (e.block, tuple(sorted(e.dirty_words)), e.had_copy)
                for e in wcache._entries.values()
            )
        )
    )
    return (slc, flc, wc)


def _rename(node_id: int | None, perm: tuple[int, ...]) -> int | None:
    return None if node_id is None else perm[node_id]


def _home_repr(node: "Node", perm: tuple[int, ...]) -> StateKey:
    entries = []
    for block in sorted(node.home.directory._entries):
        e = node.home.directory._entries[block]
        overflowed = bool(getattr(e.sharers, "overflowed", False))
        rec = (
            block,
            e.state.name,
            _rename(e.owner, perm),
            tuple(sorted(perm[s] for s in e.sharers)),
            overflowed,
            e.migratory,
            _rename(e.last_writer, perm),
            _rename(e.last_updater, perm),
        )
        # a default entry (CLEAN, nobody) is observationally identical
        # to a lazily absent one; normalizing it away merges states
        # that differ only in whether a block was ever referenced.
        if rec[1:] != ("CLEAN", None, (), False, False, None, None):
            entries.append(rec)
    return tuple(entries)


def _locks_repr(node: "Node", perm: tuple[int, ...]) -> StateKey:
    locks = []
    for block in sorted(node.home.locks._locks):
        state = node.home.locks._locks[block]
        if not state.held and not state.queue:
            continue
        locks.append(
            (
                block,
                _rename(state.holder, perm),
                tuple(perm[w] for w in state.queue),
            )
        )
    return tuple(locks)
