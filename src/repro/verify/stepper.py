"""Drive a real ``System`` through the model checker's op alphabet.

The checker never snapshots simulator state (the event heap, FCFS
ledgers and extension closures make that fragile); instead every
explored state is *reconstructed* by replaying its operation sequence
on a fresh :class:`~repro.system.System` through this stepper.  Each
operation is issued against one node's :class:`CacheController` public
API -- no :class:`Processor` objects -- and the event heap is then run
to empty one event at a time, asserting the mid-flight-safe invariant
subset (:func:`~repro.core.invariants.check_safety`) between events
and the full battery (:func:`~repro.core.invariants.check_all`) at the
resulting quiescent state.

Block geometry: logical block ``i`` maps to block number
``129 * i`` -- one page plus one block apart, so every logical block
lives on a *distinct page* (distinct home under round-robin placement)
and in a *distinct set* of the deliberately tiny 4-set SLC.  The
replacement-forcing ``conflict`` op reads block ``129 * 4``, which
shares SLC set 0 with logical block 0 but lives on its own page.
Prefetching combos will additionally touch sequential neighbours of
these blocks (the ``speculative_reads`` trait); that only widens the
explored space.

Lock/unlock ops are *guarded*: ``lock(n)`` is only enabled when the
lock is free and ``unlock(n)`` only when node ``n`` holds it, so every
enabled sequence runs to quiescence (an acquire against a held lock
parks the requester in the home's queue with no completion event --
a legal protocol state, but one the stepper cannot distinguish from a
lost grant).  The lock-table state is part of the canonical state, so
the guards never hide reachable protocol states.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.config import (
    CacheConfig,
    Consistency,
    DirectoryConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.core.invariants import check_all, check_safety
from repro.core.states import CacheState
from repro.system import System
from repro.verify.coverage import CoverageTracker

#: logical-block spacing: one 4-KB page (128 blocks) + 1, giving each
#: logical block a distinct home *and* a distinct SLC set.
BLOCK_STRIDE = 129
#: sets in the deliberately bounded verification SLC.
SLC_SETS = 4
#: block number of the replacement-forcing conflict access (SLC set 0,
#: same as logical block 0, but a different page).
CONFLICT_BLOCK = BLOCK_STRIDE * SLC_SETS
#: block number of the single lock variable.
LOCK_BLOCK = BLOCK_STRIDE * SLC_SETS * 2

#: an operation: ("read", node, blk) / ("write", node, blk) /
#: ("conflict", node) / ("lock", node) / ("unlock", node).
Op = tuple


class VerifyDeadlock(AssertionError):
    """An operation failed to complete although the event heap drained."""


@dataclass(frozen=True)
class VerifyConfig:
    """One model-checking scenario (machine shape + exploration bounds)."""

    n_nodes: int = 2
    n_blocks: int = 1
    depth: int = 6
    #: protocol-combination name ("BASIC", "P+CW+M", "p,cw", ...).
    extensions: str = "BASIC"
    #: directory organization ("full_map", "limited:1", "coarse:2").
    directory: str = "full_map"
    consistency: Consistency = Consistency.RC
    #: stop exploring after this many distinct canonical states.
    max_states: int = 50_000
    #: event budget for settling a single operation (livelock guard).
    events_per_op: int = 50_000
    #: dedupe states modulo node renaming (see :mod:`repro.verify.canon`).
    symmetry: bool = True

    def protocol(self) -> ProtocolConfig:
        return ProtocolConfig.from_name(self.extensions)

    def system_config(self) -> SystemConfig:
        return SystemConfig(
            n_procs=self.n_nodes,
            consistency=self.consistency,
            protocol=self.protocol(),
            cache=CacheConfig(slc_size=SLC_SETS * 32),
            directory=DirectoryConfig.from_name(self.directory),
        )

    @property
    def sync_ops(self) -> bool:
        """Lock/unlock belong to the alphabet (sync-sensitive combo)."""
        return self.protocol().has_trait("sync_sensitive")

    def describe(self) -> str:
        name = self.protocol().name
        return (
            f"{name} / {self.directory} / {self.consistency.value} "
            f"({self.n_nodes} nodes x {self.n_blocks} blocks, "
            f"depth {self.depth})"
        )


@dataclass
class Stepper:
    """Replays op sequences on a fresh system, checking as it goes."""

    cfg: VerifyConfig
    coverage: CoverageTracker | None = None
    system: System = field(init=False)

    def __post_init__(self) -> None:
        self.system = System(self.cfg.system_config())
        if self.coverage is not None:
            self.coverage.instrument(self.system)
        self._sc = self.cfg.consistency is Consistency.SC
        bsize = self.cfg.system_config().cache.block_size
        self._block_addrs = [
            BLOCK_STRIDE * i * bsize for i in range(self.cfg.n_blocks)
        ]
        self._conflict_addr = CONFLICT_BLOCK * bsize
        self._lock_addr = LOCK_BLOCK * bsize
        self._lock_home = self.system.nodes[
            self.system.nodes[0].cache._home_of(LOCK_BLOCK)
        ].home

    # -- state queries (valid at quiescence) ----------------------------

    def lock_holder(self) -> int | None:
        return self._lock_home.locks.holder_of(LOCK_BLOCK)

    def enabled_ops(self) -> list[Op]:
        """The alphabet restricted to ops that can complete from here."""
        ops: list[Op] = []
        for n in range(self.cfg.n_nodes):
            for b in range(self.cfg.n_blocks):
                ops.append(("read", n, b))
                ops.append(("write", n, b))
            ops.append(("conflict", n))
        if self.cfg.sync_ops:
            holder = self.lock_holder()
            if holder is None:
                ops += [("lock", n) for n in range(self.cfg.n_nodes)]
            else:
                ops.append(("unlock", holder))
        return ops

    # -- op application --------------------------------------------------

    def run(self, ops: tuple[Op, ...] | list[Op]) -> System:
        """Apply every op in sequence; returns the quiescent system."""
        for op in ops:
            self.apply(op)
        return self.system

    def apply(self, op: Op) -> None:
        kind, node = op[0], op[1]
        cache = self.system.nodes[node].cache
        if kind in ("read", "write"):
            addr = self._block_addrs[op[2]]
        elif kind == "conflict":
            addr = self._conflict_addr
        elif kind in ("lock", "unlock"):
            addr = self._lock_addr
        else:
            raise ValueError(f"unknown verify op {op!r}")
        if self.coverage is not None:
            self.coverage.record_op(self._line_state(cache, addr), kind)

        if kind in ("read", "conflict"):
            done: list[int] = []
            cache.read(addr, lambda: done.append(1))
            self._settle(op)
            if not done:
                raise VerifyDeadlock(f"read never completed: op {op!r}")
        elif kind == "write":
            if self._sc:
                done = []
                cache.write_blocking(addr, lambda: done.append(1))
                self._settle(op)
                if not done:
                    raise VerifyDeadlock(f"write never performed: op {op!r}")
            else:
                if not cache.can_buffer_write():
                    raise VerifyDeadlock(
                        f"FLWB full at quiescence before op {op!r}"
                    )
                cache.buffer_write(addr)
                self._settle(op)
                if len(cache.flwb):
                    raise VerifyDeadlock(f"FLWB not drained: op {op!r}")
        elif kind == "lock":
            if self.lock_holder() is not None:
                raise ValueError(
                    f"invalid sequence: {op!r} while lock is held"
                )
            done = []
            cache.acquire(addr, lambda: done.append(1))
            self._settle(op)
            if not done:
                raise VerifyDeadlock(f"lock never granted: op {op!r}")
        else:  # unlock
            if self.lock_holder() != node:
                raise ValueError(
                    f"invalid sequence: {op!r} but lock holder is "
                    f"{self.lock_holder()}"
                )
            done = []
            cache.release(addr, on_performed=lambda: done.append(1))
            self._settle(op)
            if not done:
                raise VerifyDeadlock(f"release never performed: op {op!r}")
        check_all(self.system)

    def _settle(self, op: Op) -> None:
        """Run the heap dry, checking safety between every two events."""
        sim = self.system.sim
        budget = self.cfg.events_per_op
        fired = 0
        while sim.step():
            check_safety(self.system)
            fired += 1
            if fired > budget:
                raise VerifyDeadlock(
                    f"event budget {budget} exhausted settling op {op!r} "
                    "(livelock?)"
                )

    @staticmethod
    def _line_state(cache, addr: int) -> str:
        line = cache.slc.lookup(addr // cache._bsize)
        return CacheState.INVALID.name if line is None else line.state.name
