"""Bounded model checker: BFS over canonicalized quiescent states.

``check_model`` enumerates every interleaving of the stepper's op
alphabet up to ``depth`` operations for one :class:`VerifyConfig`:

* a state is an op *sequence* -- expansion replays it on a fresh
  :class:`~repro.verify.stepper.Stepper` (no simulator snapshots);
* every replayed op settles the machine to quiescence with the full
  invariant battery asserted (and the mid-flight-safe subset between
  individual events), so *every visited state is checked*;
* successors are deduped on the canonical state key of
  :mod:`repro.verify.canon`, which both bounds the search and makes
  the explored-state count meaningful;
* the first failing sequence is greedily shrunk
  (:mod:`repro.verify.shrink`) and returned as a replayable
  :class:`Counterexample` -- BFS order makes it a shortest violating
  sequence even before shrinking removes unneeded setup ops.

``registry_combos`` and ``verify_matrix`` run the checker across the
registry cross-product of extension combinations x directory
organizations x consistency models.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.config import Consistency
from repro.core.extensions import registered_extensions, resolve_names
from repro.core.invariants import InvariantViolation
from repro.sim.engine import SimulationError
from repro.verify.canon import StateKey, canonical_key
from repro.verify.coverage import CoverageTracker
from repro.verify.shrink import shrink_ops
from repro.verify.stepper import Op, Stepper, VerifyConfig, VerifyDeadlock

#: exception types the checker treats as a protocol violation.
VIOLATIONS = (InvariantViolation, VerifyDeadlock)

ProgressFn = Callable[[str], None]


@dataclass
class Counterexample:
    """A minimized, replayable violating op sequence."""

    config: VerifyConfig
    ops: tuple[Op, ...]
    error: str

    def replay(self) -> None:
        """Re-run the sequence on a fresh system (raises the failure)."""
        Stepper(self.config).run(self.ops)

    def describe(self) -> str:
        steps = "\n".join(f"  {i}: {op}" for i, op in enumerate(self.ops))
        return (
            f"counterexample for {self.config.describe()}:\n{steps}\n"
            f"  -> {self.error}"
        )


@dataclass
class ModelCheckResult:
    """Outcome of one bounded exploration."""

    config: VerifyConfig
    explored: int = 0
    transitions: int = 0
    depth_reached: int = 0
    truncated: bool = False
    coverage: CoverageTracker = field(default_factory=CoverageTracker)
    violation: Counterexample | None = None

    @property
    def ok(self) -> bool:
        return self.violation is None

    def summary(self) -> str:
        status = "ok" if self.ok else "VIOLATION"
        extra = " (state cap hit)" if self.truncated else ""
        return (
            f"{self.config.describe()}: {status} -- "
            f"{self.explored} states, {self.transitions} transitions, "
            f"depth {self.depth_reached}/{self.config.depth}, "
            f"{self.coverage.pairs} coverage pairs{extra}"
        )


def _sequence_fails(cfg: VerifyConfig) -> Callable[[tuple], bool]:
    def fails(ops: tuple) -> bool:
        try:
            Stepper(cfg).run(ops)
        except VIOLATIONS:
            return True
        except (ValueError, SimulationError):
            # structurally invalid after deletion (unlock without its
            # lock) or a different failure -- not the target.
            return False
        return False

    return fails


def _counterexample(cfg: VerifyConfig, ops: tuple[Op, ...]) -> Counterexample:
    shrunk = shrink_ops(ops, _sequence_fails(cfg))
    try:
        Stepper(cfg).run(shrunk)
        error = "failure did not reproduce on replay"  # pragma: no cover
    except VIOLATIONS as exc:
        error = f"{type(exc).__name__}: {exc}"
    return Counterexample(config=cfg, ops=shrunk, error=error)


def check_model(
    cfg: VerifyConfig,
    coverage: CoverageTracker | None = None,
    progress: ProgressFn | None = None,
) -> ModelCheckResult:
    """Exhaustively explore ``cfg`` to its depth bound."""
    result = ModelCheckResult(
        config=cfg, coverage=coverage if coverage is not None else CoverageTracker()
    )
    try:
        initial = Stepper(cfg, result.coverage)
    except VIOLATIONS as exc:  # pragma: no cover - defensive
        result.violation = Counterexample(cfg, (), f"{type(exc).__name__}: {exc}")
        return result
    seen: set[StateKey] = {canonical_key(initial.system, cfg.symmetry)}
    frontier: deque[tuple[tuple[Op, ...], list[Op]]] = deque(
        [((), initial.enabled_ops())]
    )
    result.explored = 1
    while frontier:
        ops, enabled = frontier.popleft()
        if len(ops) >= cfg.depth:
            continue
        for op in enabled:
            result.transitions += 1
            seq = (*ops, op)
            stepper = Stepper(cfg, result.coverage)
            try:
                system = stepper.run(seq)
            except VIOLATIONS:
                result.violation = _counterexample(cfg, seq)
                return result
            key = canonical_key(system, cfg.symmetry)
            if key in seen:
                continue
            if len(seen) >= cfg.max_states:
                result.truncated = True
                continue
            seen.add(key)
            depth = len(seq)
            if depth > result.depth_reached:
                result.depth_reached = depth
                if progress is not None:
                    progress(
                        f"depth {depth}: {len(seen)} states, "
                        f"{result.transitions} transitions"
                    )
            frontier.append((seq, stepper.enabled_ops()))
    result.explored = len(seen)
    return result


# ----------------------------------------------------------------------
# registry cross-product
# ----------------------------------------------------------------------

#: the directory organizations the matrix covers: the exact full map
#: plus the two inexact ones at their most aggressive small-machine
#: settings (a 1-pointer Dir_i-B overflows on the second sharer; a
#: 2-node coarse region over-approximates from the first).
MATRIX_DIRECTORIES = ("full_map", "limited:1", "coarse:2")


def registry_combos(consistency: Consistency) -> list[str]:
    """Every conflict-free extension combination, from the registry.

    Includes "BASIC" (no extensions) and filters combos whose traits
    are invalid under ``consistency`` (``requires_rc`` under SC).
    """
    infos = registered_extensions()
    combos: list[str] = []
    for mask in range(1 << len(infos)):
        chosen = [info for i, info in enumerate(infos) if mask >> i & 1]
        if consistency is Consistency.SC and any(
            "requires_rc" in info.traits for info in chosen
        ):
            continue
        try:
            names = resolve_names(info.name for info in chosen)
        except ValueError:
            continue  # conflicting combination (e.g. P with PF)
        combos.append("+".join(names) if names else "BASIC")
    return combos


def matrix_configs(
    n_nodes: int = 2,
    n_blocks: int = 1,
    depth: int = 4,
    directories: Iterable[str] = MATRIX_DIRECTORIES,
    consistencies: Iterable[Consistency] = (Consistency.RC, Consistency.SC),
    **kw,
) -> list[VerifyConfig]:
    """The full registry cross-product as :class:`VerifyConfig` list."""
    configs = []
    for consistency in consistencies:
        for combo in registry_combos(consistency):
            for directory in directories:
                configs.append(
                    VerifyConfig(
                        n_nodes=n_nodes,
                        n_blocks=n_blocks,
                        depth=depth,
                        extensions=combo,
                        directory=directory,
                        consistency=consistency,
                        **kw,
                    )
                )
    return configs


def verify_matrix(
    configs: Iterable[VerifyConfig],
    progress: ProgressFn | None = None,
) -> list[ModelCheckResult]:
    """Model-check every config; keeps going past violations."""
    results = []
    for cfg in configs:
        result = check_model(cfg)
        results.append(result)
        if progress is not None:
            progress(result.summary())
    return results
