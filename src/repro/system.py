"""Top-level machine: nodes + interconnect + message routing.

Builds the 16-node CC-NUMA machine of paper §2/§4, wires the selected
protocol extensions into every node, runs a set of per-processor
reference streams to completion and returns the collected statistics.
"""

from __future__ import annotations

import gc
from heapq import heappush
from typing import Iterable

from repro.config import SystemConfig
from repro.core.messages import (
    HEADER_BYTES,
    HOME_BOUND,
    MSG_NAMES,
    SIZE_BY_TYPE,
    Message,
)
from repro.mem.addrmap import AddressMap
from repro.mem.placement import make_placement
from repro.network import build_network
from repro.network.uniform import UniformNetwork
from repro.node.node import Node
from repro.node.processor import Op, Processor
from repro.sim.engine import SimulationError, Simulator
from repro.stats.counters import MachineStats


class System:
    """One configured multiprocessor ready to run workloads."""

    def __init__(self, cfg: SystemConfig) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        self.stats = MachineStats.for_nodes(cfg.n_procs)
        self.amap = AddressMap(
            block_size=cfg.cache.block_size,
            page_size=cfg.cache.page_size,
            n_nodes=cfg.n_procs,
        )
        self.network = build_network(cfg.network, cfg.n_procs, self.stats.network)
        self.placement = make_placement(cfg.page_placement, cfg.n_procs)
        self.nodes = [
            Node(
                i, self.sim, cfg, self.amap, self._send,
                self.stats.caches[i], placement=self.placement,
            )
            for i in range(cfg.n_procs)
        ]
        self.processors: list[Processor] = []
        self._finished = 0
        #: constant node-to-node latency when the interconnect is the
        #: contention-free uniform network (the paper's default); None
        #: for topologies whose arrival time depends on placement/load.
        self._flat_latency = (
            self.network._latency
            if isinstance(self.network, UniformNetwork)
            else None
        )
        # transport hot-path caches: bus geometry is uniform across
        # nodes (cfg.timing), so the per-message reservations reduce to
        # arithmetic on each node's FCFS ledger, and the delivery
        # handler (home vs cache side) is resolved once at send time.
        self._bus_res = [n.bus._res for n in self.nodes]
        self._bus_width = cfg.timing.bus_width_bytes
        self._bus_cycle = cfg.timing.bus_transaction
        # one handler table per node, indexed by message type: every
        # type is either home- or cache-bound, so the transport indexes
        # straight to the final handler with no membership test or
        # ``deliver`` frame per message.  Cache-bound kinds the handler
        # table does not know (extension-owned) fall back to the
        # dispatching ``CacheController.deliver``.
        n_types = len(SIZE_BY_TYPE)
        self._deliver_fns = []
        for n in self.nodes:
            cache = n.cache
            by_type = [cache.deliver] * n_types
            for mt, handler in cache._handlers.items():
                by_type[mt] = handler
            for mt in HOME_BOUND:
                by_type[mt] = n.home.handler_for(mt)
            self._deliver_fns.append(by_type)

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------

    def _send(self, msg: Message, ready: int) -> None:
        """Route a message: source bus -> network -> destination bus.

        The hottest code in the simulator: the message size comes from
        a per-type table (variable-size kinds fall back to the
        property) and is threaded through the chain, the source-bus
        reservation and the uniform network's accounting/arrival
        arithmetic are inlined (the generic path stays for other
        topologies), the delivery handler is resolved here once, and
        the delivery event is pushed straight onto the heap.
        """
        src, dst, mtype = msg.src, msg.dst, msg.mtype
        size = SIZE_BY_TYPE[mtype]
        if size < 0:
            size = msg.size_bytes
        # source-bus reservation (SplitTransactionBus.access, inlined)
        cycles = -(-size // self._bus_width)
        if cycles < 1:
            cycles = 1
        occ = cycles * self._bus_cycle
        res = self._bus_res[src]
        free = res._free_at
        start = ready if ready > free else free
        t_out = start + occ
        res._free_at = t_out
        res.busy_cycles += occ
        res.reservations += 1
        lat = self._flat_latency
        if lat is None:
            self.network.record(
                MSG_NAMES[mtype], src, dst, size, size > HEADER_BYTES
            )
            arrive = self.network.arrival_time(src, dst, size, t_out)
        elif src != dst:
            ns = self.stats.network
            ns.messages += 1
            ns.bytes += size
            if size > HEADER_BYTES:
                ns.data_messages += 1
            by_type = ns.by_type
            name = MSG_NAMES[mtype]
            by_type[name] = by_type.get(name, 0) + 1
            arrive = t_out + lat
        else:
            arrive = t_out
        fn = self._deliver_fns[dst][mtype]
        sim = self.sim
        if src == dst:
            # local: a single traversal of the shared node bus
            heappush(sim._heap, (arrive, sim._seq, fn, (msg, arrive)))
        else:
            # both buses are the same width, so the destination-bus
            # occupancy equals the one just computed for the source
            heappush(
                sim._heap,
                (arrive, sim._seq, self._deliver_remote, (msg, occ, fn)),
            )
        sim._seq += 1

    def _deliver_remote(self, msg: Message, occ: int, fn) -> None:
        sim = self.sim
        # destination-bus reservation (SplitTransactionBus.access, inlined)
        res = self._bus_res[msg.dst]
        free = res._free_at
        now = sim.now
        start = now if now > free else free
        t_in = start + occ
        res._free_at = t_in
        res.busy_cycles += occ
        res.reservations += 1
        heap = sim._heap
        if (not heap or heap[0][0] > t_in) and t_in <= sim._until:
            # No event can fire before the destination bus hands the
            # message over, and scheduling the dispatch was this
            # event's last action -- so run it now with the clock
            # advanced.  Crediting keeps ``events_fired`` identical to
            # the fully event-driven schedule.
            sim.now = t_in
            sim._events_fired += 1
            fn(msg, t_in)
        else:
            heappush(heap, (t_in, sim._seq, fn, (msg, t_in)))
            sim._seq += 1

    def _dispatch(self, msg: Message, t: int) -> None:
        """Deliver ``msg`` to the right controller (generic slow path,
        kept for tests and external callers; the transport above
        resolves the handler at send time)."""
        node = self.nodes[msg.dst]
        if msg.mtype in HOME_BOUND:
            node.home.deliver(msg, t)
        else:
            node.cache.deliver(msg, t)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def _proc_finished(self, node_id: int) -> None:
        self._finished += 1

    def _make_processor(self, i: int, workload: Iterable[Op]) -> Processor:
        """Build processor ``i``; subclasses may wrap or specialize it."""
        return Processor(
            i,
            self.sim,
            self.cfg,
            self.nodes[i].cache,
            workload,
            self.stats.procs[i],
            self._proc_finished,
        )

    def run(
        self,
        workloads: list[Iterable[Op]],
        max_events: int | None = 200_000_000,
    ) -> MachineStats:
        """Run one reference stream per processor to completion."""
        if len(workloads) != self.cfg.n_procs:
            raise ValueError(
                f"need {self.cfg.n_procs} workload streams, got {len(workloads)}"
            )
        self.processors = [
            self._make_processor(i, workloads[i]) for i in range(self.cfg.n_procs)
        ]
        for proc in self.processors:
            proc.start()
        # The event loop allocates only short-lived tuples and
        # messages; pausing cyclic GC for the run avoids pointless
        # whole-heap collections triggered by that churn.
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self.sim.run(max_events=max_events)
        finally:
            if gc_was_enabled:
                gc.enable()
        if self._finished != self.cfg.n_procs:
            stuck = [p.node_id for p in self.processors if not p.finished]
            raise SimulationError(
                f"simulation quiesced with processors {stuck} unfinished "
                f"at t={self.sim.now} (deadlock or lost message)"
            )
        self.stats.execution_time = max(
            p.finish_time for p in self.stats.procs
        )
        self.stats.network.peak_link_utilization = (
            self.network.max_link_utilization(self.stats.execution_time)
        )
        return self.stats


def run_system(cfg: SystemConfig, workloads: list[Iterable[Op]]) -> MachineStats:
    """Convenience helper: build a system, run it, return statistics."""
    return System(cfg).run(workloads)
