"""Top-level machine: nodes + interconnect + message routing.

Builds the 16-node CC-NUMA machine of paper §2/§4, wires the selected
protocol extensions into every node, runs a set of per-processor
reference streams to completion and returns the collected statistics.
"""

from __future__ import annotations

from typing import Iterable

from repro.config import SystemConfig
from repro.core.messages import HOME_BOUND, Message
from repro.mem.addrmap import AddressMap
from repro.mem.placement import make_placement
from repro.network import build_network
from repro.node.node import Node
from repro.node.processor import Op, Processor
from repro.sim.engine import SimulationError, Simulator
from repro.stats.counters import MachineStats


class System:
    """One configured multiprocessor ready to run workloads."""

    def __init__(self, cfg: SystemConfig) -> None:
        self.cfg = cfg
        self.sim = Simulator()
        self.stats = MachineStats.for_nodes(cfg.n_procs)
        self.amap = AddressMap(
            block_size=cfg.cache.block_size,
            page_size=cfg.cache.page_size,
            n_nodes=cfg.n_procs,
        )
        self.network = build_network(cfg.network, cfg.n_procs, self.stats.network)
        self.placement = make_placement(cfg.page_placement, cfg.n_procs)
        self.nodes = [
            Node(
                i, self.sim, cfg, self.amap, self._send,
                self.stats.caches[i], placement=self.placement,
            )
            for i in range(cfg.n_procs)
        ]
        self.processors: list[Processor] = []
        self._finished = 0

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------

    def _send(self, msg: Message, ready: int) -> None:
        """Route a message: source bus -> network -> destination bus."""
        t_out = self.nodes[msg.src].bus.access(ready, msg.size_bytes)
        self.network.record(
            msg.mtype.name, msg.src, msg.dst, msg.size_bytes, msg.carries_data
        )
        arrive = self.network.arrival_time(msg.src, msg.dst, msg.size_bytes, t_out)
        if msg.src == msg.dst:
            # local: a single traversal of the shared node bus
            self.sim.at(arrive, self._dispatch, msg, arrive)
        else:
            self.sim.at(arrive, self._deliver_remote, msg)

    def _deliver_remote(self, msg: Message) -> None:
        t_in = self.nodes[msg.dst].bus.access(self.sim.now, msg.size_bytes)
        self.sim.at(t_in, self._dispatch, msg, t_in)

    def _dispatch(self, msg: Message, t: int) -> None:
        node = self.nodes[msg.dst]
        if msg.mtype in HOME_BOUND:
            node.home.deliver(msg, t)
        else:
            node.cache.deliver(msg, t)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def _proc_finished(self, node_id: int) -> None:
        self._finished += 1

    def run(
        self,
        workloads: list[Iterable[Op]],
        max_events: int | None = 200_000_000,
    ) -> MachineStats:
        """Run one reference stream per processor to completion."""
        if len(workloads) != self.cfg.n_procs:
            raise ValueError(
                f"need {self.cfg.n_procs} workload streams, got {len(workloads)}"
            )
        self.processors = [
            Processor(
                i,
                self.sim,
                self.cfg,
                self.nodes[i].cache,
                workloads[i],
                self.stats.procs[i],
                self._proc_finished,
            )
            for i in range(self.cfg.n_procs)
        ]
        for proc in self.processors:
            proc.start()
        self.sim.run(max_events=max_events)
        if self._finished != self.cfg.n_procs:
            stuck = [p.node_id for p in self.processors if not p.finished]
            raise SimulationError(
                f"simulation quiesced with processors {stuck} unfinished "
                f"at t={self.sim.now} (deadlock or lost message)"
            )
        self.stats.execution_time = max(
            p.finish_time for p in self.stats.procs
        )
        self.stats.network.peak_link_utilization = (
            self.network.max_link_utilization(self.stats.execution_time)
        )
        return self.stats


def run_system(cfg: SystemConfig, workloads: list[Iterable[Op]]) -> MachineStats:
    """Convenience helper: build a system, run it, return statistics."""
    return System(cfg).run(workloads)
