"""Memory consistency models (paper §2, §5.1, §5.2).

The implementation of the two models is distributed across the
processor (stall behaviour) and the cache controller (buffering), but
their *policies* are centralized here:

* **SC** -- the processor stalls for each shared reference until it is
  globally performed; single-entry FLWB/SLWB (except that P keeps a
  multi-entry SLWB for pending prefetches); the competitive-update
  mechanism is not feasible.
* **RC** (RCpc) -- writes retire into the FLWB and their latency is
  hidden by the lockup-free SLC + SLWB; a release is issued only after
  all previously issued ownership requests (and write-cache flushes)
  have completed; the processor does not stall on releases.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import Consistency, ProtocolConfig


@dataclass(frozen=True)
class ConsistencyPolicy:
    """Processor-visible behaviour of one consistency model."""

    model: Consistency
    blocking_writes: bool
    blocking_releases: bool
    write_latency_hidden: bool

    @staticmethod
    def for_model(model: Consistency) -> "ConsistencyPolicy":
        """The policy for SC or RC."""
        if model is Consistency.SC:
            return ConsistencyPolicy(
                model=model,
                blocking_writes=True,
                blocking_releases=True,
                write_latency_hidden=False,
            )
        return ConsistencyPolicy(
            model=model,
            blocking_writes=False,
            blocking_releases=False,
            write_latency_hidden=True,
        )


def protocol_feasible(protocol: ProtocolConfig, model: Consistency) -> bool:
    """Whether a protocol can be implemented under a consistency model.

    §5.2: "We omit CW because it is not feasible under sequential
    consistency" -- update combining in the write cache requires the
    freedom to delay write propagation until a synchronization point.
    """
    if model is Consistency.SC and protocol.competitive_update:
        return False
    return True
