"""Sequential and release consistency policies."""

from repro.consistency.models import ConsistencyPolicy, protocol_feasible

__all__ = ["ConsistencyPolicy", "protocol_feasible"]
