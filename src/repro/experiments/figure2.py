"""Figure 2: execution times relative to BASIC under release consistency.

For every application, all eight protocols (BASIC, P, CW, M, P+CW,
P+M, CW+M, P+CW+M) run under RC with the contention-free uniform
network, and the execution time is decomposed into busy, read-stall
and acquire-stall time.  The paper's headline results:

* P and CW are the strongest single extensions,
* P+CW combines additively -- close to a factor-of-two speedup for
  some applications,
* M contributes mainly through the acquire stall (write latency is
  already hidden), and CW+M wipes out CW's gain for migratory apps.
"""

from __future__ import annotations

import argparse

from repro.config import ALL_PROTOCOLS
from repro.experiments.formats import decomposition, render_stacked_bars, render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)
from repro.workloads import APP_NAMES


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
        protocols: tuple[str, ...] = ALL_PROTOCOLS,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """Simulate the full protocol matrix; returns {app: {proto: result}}."""
    specs = [
        RunSpec.for_run(app, protocol=proto, scale=scale, seed=seed)
        for app in apps
        for proto in protocols
    ]
    results = iter(execute(specs, engine))
    return {app: {proto: next(results) for proto in protocols} for app in apps}


def render(data: dict) -> str:
    """Text rendering: one stacked-bar chart per application."""
    chunks = ["Figure 2: execution time relative to BASIC (release consistency)"]
    for app, results in data.items():
        base = results["BASIC"].execution_time
        bars = []
        for proto, res in results.items():
            parts = decomposition(res.stats)
            bars.append((proto, parts))
        chunks.append("")
        chunks.append(render_stacked_bars(bars, reference=base, title=f"[{app}]"))
        rows = [
            (proto, res.execution_time / base)
            for proto, res in results.items()
        ]
        chunks.append(render_table(("protocol", "relative exec time"), rows))
    return "\n".join(chunks)


def csv_rows(data: dict) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for CSV export of the full decomposition."""
    headers = (
        "app", "protocol", "exec_time", "relative",
        "busy", "read_stall", "write_stall", "acquire_stall",
        "release_stall",
    )
    rows = []
    for app, results in data.items():
        base = results["BASIC"].execution_time
        for proto, res in results.items():
            d = decomposition(res.stats)
            rows.append((
                app, proto, res.execution_time,
                res.execution_time / base,
                d["busy"], d["read"], d["write"], d["acquire"], d["release"],
            ))
    return headers, rows


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.figure2 [--scale S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--apps", nargs="*", default=list(APP_NAMES))
    parser.add_argument("--csv", help="also write the series to this CSV file")
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    data = run(scale=args.scale, apps=tuple(args.apps), engine=engine,
               seed=args.seed)
    print(render(data))
    if args.csv:
        from repro.experiments.formats import write_csv

        headers, rows = csv_rows(data)
        write_csv(args.csv, headers, rows)
        print(f"\nwrote {args.csv}")
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
