"""Table 2: cold and coherence miss-rate components (percent).

Reported for BASIC, P, CW and P+CW under release consistency.  The
paper's composition property is the point of this table: P+CW's cold
miss rate equals P's, and its coherence miss rate equals CW's -- the
two extensions remove *different* misses, which is why their gains add
up in Figure 2.
"""

from __future__ import annotations

import argparse

from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)
from repro.workloads import APP_NAMES

PROTOCOLS = ("BASIC", "P", "CW", "P+CW")


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """Measure miss-rate components; {app: {proto: (cold, coh)}}."""
    specs = [
        RunSpec.for_run(app, protocol=proto, scale=scale, seed=seed)
        for app in apps
        for proto in PROTOCOLS
    ]
    results = iter(execute(specs, engine))
    out: dict = {}
    for app in apps:
        out[app] = {}
        for proto in PROTOCOLS:
            res = next(results)
            out[app][proto] = (
                res.stats.miss_rate("cold"),
                res.stats.miss_rate("coherence"),
            )
    return out


def render(data: dict) -> str:
    """Text table in the paper's layout (cold | coh per protocol)."""
    headers = ["Appl."]
    for proto in PROTOCOLS:
        headers += [f"{proto} cold", f"{proto} coh"]
    rows = []
    for app, per_proto in data.items():
        row: list[object] = [app]
        for proto in PROTOCOLS:
            cold, coh = per_proto[proto]
            row += [cold, coh]
        rows.append(row)
    return render_table(
        headers,
        rows,
        title="Table 2: cold and coherence miss rates (% of shared refs)",
    )


def composition_errors(data: dict) -> dict[str, tuple[float, float]]:
    """|P+CW cold - P cold| and |P+CW coh - CW coh| per application."""
    out = {}
    for app, per in data.items():
        out[app] = (
            abs(per["P+CW"][0] - per["P"][0]),
            abs(per["P+CW"][1] - per["CW"][1]),
        )
    return out


def csv_rows(data: dict) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for CSV export."""
    headers = ("app", "protocol", "cold_pct", "coherence_pct")
    rows = [
        (app, proto, cold, coh)
        for app, per in data.items()
        for proto, (cold, coh) in per.items()
    ]
    return headers, rows


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.table2 [--scale S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--csv", help="also write the rows to this CSV file")
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    data = run(scale=args.scale, engine=engine, seed=args.seed)
    print(render(data))
    if args.csv:
        from repro.experiments.formats import write_csv

        headers, rows = csv_rows(data)
        write_csv(args.csv, headers, rows)
    print()
    errs = composition_errors(data)
    print("composition check (|P+CW - P| cold, |P+CW - CW| coherence):")
    for app, (dc, dh) in errs.items():
        print(f"  {app:10s} {dc:.2f}  {dh:.2f}")
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
