"""§5.4: sensitivity to buffer sizes and to a limited SLC.

Two studies:

* **buffers** -- rerun the §5.1 experiments with 4-entry FLWB and SLWB
  (instead of 8/16).  The paper finds that only BASIC and P suffer,
  and only through pending *write* requests; CW, M and combinations
  including them are unaffected (P+CW and P+M "need less complex
  SLWBs than BASIC").
* **slc** -- rerun with a limited (16 KB) direct-mapped SLC.  The
  combinations that win with infinite caches still win; P gets even
  better because it also removes replacement misses.
"""

from __future__ import annotations

import argparse

from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    limited_slc_cache,
    print_sweep_summary,
    small_buffer_cache,
)
from repro.workloads import APP_NAMES

PROTOCOLS = ("BASIC", "P", "CW", "M", "P+CW", "P+M")


def run_buffers(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
                engine: SweepEngine | None = None,
                seed: int = DEFAULT_SEED,
                backend: str = "event") -> dict:
    """{app: {proto: slowdown with 4-entry buffers}}.

    ``backend`` may be any execution tier: sensitivity studies compare
    cells against each other, so the replay tier's documented
    tolerances cancel out of the ratios (unlike the paper tables,
    which stay pinned to the event-exact tiers).
    """
    specs = []
    for app in apps:
        for proto in PROTOCOLS:
            specs.append(RunSpec.for_run(app, protocol=proto, scale=scale,
                                         seed=seed, backend=backend))
            specs.append(RunSpec.for_run(app, protocol=proto, scale=scale,
                                         seed=seed, backend=backend,
                                         cache=small_buffer_cache()))
    results = iter(execute(specs, engine))
    out: dict = {}
    for app in apps:
        out[app] = {}
        for proto in PROTOCOLS:
            full = next(results)
            small = next(results)
            out[app][proto] = small.execution_time / full.execution_time
    return out


def run_limited_slc(
    scale: float = 1.0,
    apps: tuple[str, ...] = APP_NAMES,
    slc_bytes: int = 16 * 1024,
    engine: SweepEngine | None = None,
    seed: int = DEFAULT_SEED,
    backend: str = "event",
) -> dict:
    """{app: {proto: (relative exec vs BASIC, replacement miss %)}}."""
    specs = [
        RunSpec.for_run(app, protocol=proto, scale=scale, seed=seed,
                        backend=backend,
                        cache=limited_slc_cache(slc_bytes))
        for app in apps
        for proto in PROTOCOLS
    ]
    results = iter(execute(specs, engine))
    out: dict = {}
    for app in apps:
        out[app] = {}
        base = None
        for proto in PROTOCOLS:
            res = next(results)
            if base is None:
                base = res.execution_time
            out[app][proto] = (
                res.execution_time / base,
                res.stats.miss_rate("replacement"),
            )
    return out


def render_buffers(data: dict) -> str:
    """Slowdown table: 4-entry buffers vs paper-default buffers."""
    apps = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        row += [data[app][proto] for app in apps]
        rows.append(row)
    return render_table(
        ["Protocol"] + apps,
        rows,
        title="S5.4a: slowdown with 4-entry FLWB/SLWB (1.00 = unaffected)",
    )


def render_limited_slc(data: dict) -> str:
    """Relative execution times with a bounded 16-KB SLC."""
    apps = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        row += [data[app][proto][0] for app in apps]
        rows.append(row)
    repl: list[object] = ["repl-miss % (BASIC)"]
    repl += [data[app]["BASIC"][1] for app in apps]
    rows.append(repl)
    return render_table(
        ["Protocol"] + apps,
        rows,
        title="S5.4b: relative execution time with a 16-KB SLC",
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.sensitivity [--scale S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument(
        "--backend", choices=("event", "specialized", "replay"),
        default="event",
        help="execution tier; replay is valid here because the study "
             "only reports relative numbers (see docs/engine.md)")
    parser.add_argument(
        "--study", choices=("buffers", "slc", "both"), default="both"
    )
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    if args.study in ("buffers", "both"):
        print(render_buffers(run_buffers(scale=args.scale, engine=engine,
                                         seed=args.seed,
                                         backend=args.backend)))
        print()
    if args.study in ("slc", "both"):
        print(render_limited_slc(run_limited_slc(scale=args.scale,
                                                 engine=engine,
                                                 seed=args.seed,
                                                 backend=args.backend)))
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
