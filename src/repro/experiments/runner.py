"""Shared experiment plumbing on top of the sweep engine.

Historically every table/figure driver called ``run_once`` in a
hand-rolled nested loop.  The drivers now build
:class:`~repro.sweep.RunSpec` batches and push them through one
:class:`~repro.sweep.SweepEngine`, which parallelizes across worker
processes (``--jobs``) and memoizes completed cells on disk
(``--cache-dir`` / ``--no-cache``).  This module keeps:

* the paper-default config helpers (:func:`make_config`,
  :func:`mesh_network`, :func:`small_buffer_cache`,
  :func:`limited_slc_cache`),
* the argparse plumbing every driver CLI shares
  (:func:`add_sweep_args`, :func:`engine_from_args`,
  :func:`print_sweep_summary`).

``run_once`` finished its deprecation cycle and is gone; calling it
raises with a migration recipe (see ``docs/sweeps.md``).
"""

from __future__ import annotations

import argparse
import sys
from typing import Any, Iterable

from repro.config import (
    CacheConfig,
    Consistency,
    NetworkConfig,
    NetworkKind,
    SystemConfig,
)
from repro.sweep import (
    DEFAULT_SEED,
    POOL_MODES,
    ProgressEvent,
    ResultCache,
    RunResult,
    RunSpec,
    SweepEngine,
    default_cache_dir,
)

#: hot-tier size the CLI surfaces default to (the bare ResultCache
#: defaults to 0 so library users opt in explicitly).
DEFAULT_HOT_ENTRIES = 512

__all__ = [
    "DEFAULT_HOT_ENTRIES",
    "DEFAULT_SEED",
    "RunResult",
    "RunSpec",
    "add_sweep_args",
    "engine_from_args",
    "execute",
    "limited_slc_cache",
    "make_config",
    "mesh_network",
    "print_sweep_summary",
    "small_buffer_cache",
]


def make_config(
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    n_procs: int = 16,
) -> SystemConfig:
    """A paper-default SystemConfig with the given overrides."""
    cfg = SystemConfig(
        n_procs=n_procs,
        consistency=consistency,
        network=network or NetworkConfig(),
        cache=cache or CacheConfig(),
    )
    return cfg.with_protocol(protocol)


def run_once(*args: Any, **kwargs: Any) -> RunResult:
    """Removed.  Raises with the migration recipe.

    The deprecation shim (PR 1) warned for several releases; the
    single-cell path now goes through the spec/engine API exclusively::

        from repro.sweep import RunSpec, run_spec
        res = run_spec(RunSpec.for_run("water", protocol="P", scale=0.5))

    ``RunSpec.for_run`` mirrors the old ``run_once`` signature, and
    ``RunResult.app/.protocol/.consistency/.execution_time`` mirror the
    old attribute surface.
    """
    raise RuntimeError(
        "run_once was removed; build a repro.sweep.RunSpec "
        "(RunSpec.for_run mirrors the old signature) and execute it with "
        "repro.sweep.run_spec or SweepEngine.run -- see docs/sweeps.md, "
        "'Migrating from run_once'"
    )


def execute(
    specs: Iterable[RunSpec], engine: SweepEngine | None = None
) -> list[RunResult]:
    """Run a spec batch through ``engine`` (serial one-off if None)."""
    return (engine or SweepEngine()).run(specs)


def mesh_network(link_width_bits: int) -> NetworkConfig:
    """The §5.3 wormhole mesh with the given link width."""
    return NetworkConfig(kind=NetworkKind.MESH, link_width_bits=link_width_bits)


def small_buffer_cache() -> CacheConfig:
    """§5.4: 4-entry FLWB and SLWB."""
    return CacheConfig(flwb_entries=4, slwb_entries=4)


def limited_slc_cache(size: int = 16 * 1024) -> CacheConfig:
    """§5.4: bounded direct-mapped SLC (16 KB by default)."""
    return CacheConfig(slc_size=size)


# ----------------------------------------------------------------------
# CLI plumbing shared by every experiment driver
# ----------------------------------------------------------------------

def add_sweep_args(parser: argparse.ArgumentParser) -> None:
    """Install the engine's ``--jobs/--cache-dir/--no-cache/--seed``."""
    group = parser.add_argument_group("sweep engine")
    group.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the sweep (1 = serial, the default)",
    )
    group.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             f"{default_cache_dir()!s})",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="always simulate; neither read nor write the result cache",
    )
    group.add_argument(
        "--seed", type=int, default=DEFAULT_SEED,
        help="workload generation seed (default: %(default)s)",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="report per-cell completion on stderr",
    )
    group.add_argument(
        "--pool", choices=POOL_MODES, default="persistent",
        help="process-pool flavor for --jobs > 1: 'persistent' reuses "
             "one warm worker pool across sweeps, 'per-run' builds a "
             "fresh pool per batch (default: %(default)s)",
    )
    group.add_argument(
        "--hot-cache-entries", type=int, default=DEFAULT_HOT_ENTRIES,
        metavar="N",
        help="in-memory hot tier in front of the result cache; 0 "
             "disables it (default: %(default)s)",
    )


def _progress_printer(event: ProgressEvent) -> None:
    print(
        f"[sweep {event.index + 1}/{event.total}] {event.spec.label()} "
        f"{event.wall_time:.2f}s ({event.source})",
        file=sys.stderr,
        flush=True,
    )


def engine_from_args(args: argparse.Namespace) -> SweepEngine:
    """Build the engine described by :func:`add_sweep_args` flags."""
    cache = None
    if not args.no_cache:
        cache = ResultCache(
            args.cache_dir or default_cache_dir(),
            hot_entries=getattr(
                args, "hot_cache_entries", DEFAULT_HOT_ENTRIES
            ),
        )
    return SweepEngine(
        executor="process" if args.jobs > 1 else "serial",
        max_workers=args.jobs,
        cache=cache,
        on_result=_progress_printer if args.progress else None,
        pool=getattr(args, "pool", "persistent"),
    )


def print_sweep_summary(engine: SweepEngine) -> None:
    """Counter digest on stderr (stdout stays byte-identical)."""
    print(engine.summary(), file=sys.stderr, flush=True)
