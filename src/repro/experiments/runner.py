"""Shared experiment runner.

Every table/figure driver goes through :func:`run_once`, which builds a
machine for (application, protocol, consistency, network), runs the
application's reference streams and returns the statistics.  ``scale``
shrinks the workloads proportionally so the benchmark harness can run
quickly while the full-scale experiments regenerate the paper's data.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Any

from repro.config import (
    CacheConfig,
    Consistency,
    NetworkConfig,
    NetworkKind,
    SystemConfig,
)
from repro.stats.counters import MachineStats
from repro.system import System
from repro.workloads import build_workload


@dataclass
class RunResult:
    """Statistics of one simulation plus its configuration."""

    app: str
    protocol: str
    consistency: str
    stats: MachineStats
    system: System

    @property
    def execution_time(self) -> int:
        """Parallel-section execution time in pclocks."""
        return self.stats.execution_time


def make_config(
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    n_procs: int = 16,
) -> SystemConfig:
    """A paper-default SystemConfig with the given overrides."""
    cfg = SystemConfig(
        n_procs=n_procs,
        consistency=consistency,
        network=network or NetworkConfig(),
        cache=cache or CacheConfig(),
    )
    return cfg.with_protocol(protocol)


def run_once(
    app: str,
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    scale: float = 1.0,
    seed: int = 1994,
    **workload_kw: Any,
) -> RunResult:
    """Simulate one (application, machine) pair to completion."""
    cfg = make_config(protocol, consistency, network, cache)
    streams = build_workload(app, cfg, scale=scale, seed=seed, **workload_kw)
    system = System(cfg)
    stats = system.run(streams)
    return RunResult(
        app=app,
        protocol=protocol,
        consistency=consistency.value,
        stats=stats,
        system=system,
    )


def mesh_network(link_width_bits: int) -> NetworkConfig:
    """The §5.3 wormhole mesh with the given link width."""
    return NetworkConfig(kind=NetworkKind.MESH, link_width_bits=link_width_bits)


def small_buffer_cache() -> CacheConfig:
    """§5.4: 4-entry FLWB and SLWB."""
    return CacheConfig(flwb_entries=4, slwb_entries=4)


def limited_slc_cache(size: int = 16 * 1024) -> CacheConfig:
    """§5.4: bounded direct-mapped SLC (16 KB by default)."""
    return CacheConfig(slc_size=size)
