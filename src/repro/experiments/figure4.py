"""Figure 4: total network traffic normalized to BASIC.

Bytes crossing the network under BASIC, P, CW, M, P+CW and P+M with
release consistency.  The paper's shape: the prefetching protocols add
traffic, the migratory optimization *reduces* it below BASIC for
migratory applications (freeing bandwidth that P can spend), and P+CW
is the hungriest combination -- which is why it is the one hurt by
narrow mesh links in Table 3.
"""

from __future__ import annotations

import argparse

from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)
from repro.workloads import APP_NAMES

PROTOCOLS = ("BASIC", "P", "CW", "M", "P+CW", "P+M")


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """{app: {proto: normalized traffic}} (BASIC == 100)."""
    specs = [
        RunSpec.for_run(app, protocol=proto, scale=scale, seed=seed)
        for app in apps
        for proto in PROTOCOLS
    ]
    results = iter(execute(specs, engine))
    out: dict = {}
    for app in apps:
        out[app] = {}
        base_bytes = None
        for proto in PROTOCOLS:
            res = next(results)
            if base_bytes is None:
                base_bytes = res.stats.network.bytes or 1
            out[app][proto] = 100.0 * res.stats.network.bytes / base_bytes
    return out


def render(data: dict) -> str:
    """Traffic table (percent of BASIC) in the figure's series order."""
    apps = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        row += [data[app][proto] for app in apps]
        rows.append(row)
    return render_table(
        ["Protocol"] + apps,
        rows,
        title="Figure 4: total network traffic normalized to BASIC (=100)",
    )


def csv_rows(data: dict) -> tuple[tuple[str, ...], list[tuple]]:
    """(headers, rows) for CSV export."""
    headers = ("app", "protocol", "traffic_pct_of_basic")
    rows = [
        (app, proto, value)
        for app, per in data.items()
        for proto, value in per.items()
    ]
    return headers, rows


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.figure4 [--scale S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--csv", help="also write the rows to this CSV file")
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    data = run(scale=args.scale, engine=engine, seed=args.seed)
    print(render(data))
    if args.csv:
        from repro.experiments.formats import write_csv

        headers, rows = csv_rows(data)
        write_csv(args.csv, headers, rows)
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
