"""Machine-size scaling study (extension beyond the paper).

The paper evaluates a fixed 16-processor 4x4 mesh.  This driver varies
the processor count -- any count works now that the mesh factors into
the squarest W x H rectangle (4 -> 2x2, 64 -> 8x8, 256 -> 16x16) --
and the directory organization, and reports, per protocol:

* **speedup vs nodes** -- execution time at each size relative to the
  same protocol at the smallest size (how far the machine actually
  scales), plus execution time relative to BASIC at each size (whether
  the extension gains survive scale),
* **directory storage cost** -- bits per memory block of each
  organization at each size, the reason full-map directories stop at
  small machines and Dir_i-B / coarse vectors exist.

Two effects the protocol extensions interact with:

* more processors -> more sharers per block -> longer invalidation
  chains (BASIC's write cost grows) and more update fan-out (CW's
  traffic grows),
* migratory chains visit more processors -> M's detection pays off
  once per block regardless, so its relative gain is stable.

Inexact directory organizations add a third effect: Dir_i-B overflow
broadcasts and coarse-vector region fan-out turn each invalidation
into up-to-N messages, which the mesh must carry.

Run:  python -m repro.experiments.scaling [--scale S] [--app mp3d]
          [--sizes 4,16,64,256] [--directories full_map,limited:4]
"""

from __future__ import annotations

import argparse

from repro.config import DirectoryConfig
from repro.core.directory import make_directory_org
from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)

#: any count factors into a W x H mesh; the defaults are the paper's
#: machine plus the 1/4x and 4x/16x points of the scalability study.
MACHINE_SIZES = (4, 16, 64, 256)
PROTOCOLS = ("BASIC", "P", "CW", "M", "P+CW", "P+M")
#: the paper's organization plus one scalable one.
DIRECTORIES = ("full_map", "limited:4")


def run(app: str = "mp3d", scale: float = 1.0,
        sizes: tuple[int, ...] = MACHINE_SIZES,
        directories: tuple[str, ...] = DIRECTORIES,
        protocols: tuple[str, ...] = PROTOCOLS,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED,
        backend: str = "event") -> dict:
    """{org: {n_procs: {proto: (exec_time, rel_to_basic, net_bytes)}}}.

    ``backend`` may be any execution tier: the study reports relative
    numbers, so the replay tier is a valid (much faster) choice for
    the 64/256-processor points.
    """
    specs = [
        RunSpec.for_run(app, protocol=proto, n_procs=n, scale=scale,
                        seed=seed, directory=org, backend=backend)
        for org in directories
        for n in sizes
        for proto in protocols
    ]
    results = iter(execute(specs, engine))
    out: dict = {}
    for org in directories:
        out[org] = {}
        for n in sizes:
            out[org][n] = {}
            base = None
            for proto in protocols:
                stats = next(results).stats
                if base is None:
                    base = stats.execution_time
                out[org][n][proto] = (
                    stats.execution_time,
                    stats.execution_time / base,
                    stats.network.bytes,
                )
    return out


def render(data: dict, app: str = "",
           protocols: tuple[str, ...] = PROTOCOLS) -> str:
    """Speedup-vs-nodes and relative-time tables per organization."""
    blocks = []
    for org, per_size in data.items():
        sizes = list(per_size)
        smallest = sizes[0]
        rows = []
        for proto in protocols:
            row: list[object] = [proto]
            # speedup over the same protocol at the smallest size:
            # > 1.0 means more nodes actually helped.
            row += [
                per_size[smallest][proto][0] / per_size[n][proto][0]
                for n in sizes
            ]
            rows.append(row)
        blocks.append(render_table(
            ["Protocol"] + [f"{n} procs" for n in sizes],
            rows,
            title=f"[{org}] speedup vs {smallest}-proc machine"
                  f"{f' [{app}]' if app else ''}",
        ))
        rows = []
        for proto in protocols:
            row = [proto]
            row += [per_size[n][proto][1] for n in sizes]
            rows.append(row)
        blocks.append(render_table(
            ["Protocol"] + [f"{n} procs" for n in sizes],
            rows,
            title=f"[{org}] execution time relative to BASIC at each size",
        ))
    return "\n\n".join(blocks)


def render_storage(sizes: tuple[int, ...],
                   directories: tuple[str, ...]) -> str:
    """Directory storage cost (bits per memory block) per size."""
    rows = []
    for name in directories:
        org_cfg = DirectoryConfig.from_name(name)
        row: list[object] = [name]
        for n in sizes:
            org = make_directory_org(org_cfg, n)
            row.append(
                f"{org.bits_per_block()}/{org.bits_per_block(True)}"
            )
        rows.append(row)
    return render_table(
        ["Directory"] + [f"{n} procs" for n in sizes],
        rows,
        title="directory storage cost, bits per block (BASIC / with M)",
    )


def _csv(text: str) -> list[str]:
    return [part.strip() for part in text.split(",") if part.strip()]


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.scaling``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--app", default="mp3d")
    parser.add_argument(
        "--backend", choices=("event", "specialized", "replay"),
        default="event",
        help="execution tier; replay is valid here because the study "
             "only reports relative numbers (see docs/engine.md)")
    parser.add_argument(
        "--sizes", default=",".join(str(n) for n in MACHINE_SIZES),
        help="comma-separated processor counts (default: %(default)s)",
    )
    parser.add_argument(
        "--directories", default=",".join(DIRECTORIES),
        help="comma-separated directory organizations "
             "(default: %(default)s)",
    )
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    sizes = tuple(int(n) for n in _csv(args.sizes))
    directories = tuple(_csv(args.directories))
    engine = engine_from_args(args)
    print(render(run(app=args.app, scale=args.scale, sizes=sizes,
                     directories=directories, engine=engine,
                     seed=args.seed, backend=args.backend),
                 app=args.app))
    print()
    print(render_storage(sizes, directories))
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
