"""Machine-size scaling study (extension beyond the paper).

The paper evaluates a fixed 16-processor machine.  This driver varies
the processor count (the mesh requires square counts: 4, 9, 16) and
reports, per protocol, how the execution time and the extension gains
scale.  Two effects the protocol extensions interact with:

* more processors -> more sharers per block -> longer invalidation
  chains (BASIC's write cost grows) and more update fan-out (CW's
  traffic grows),
* migratory chains visit more processors -> M's detection pays off
  once per block regardless, so its relative gain is stable.

Run:  python -m repro.experiments.scaling [--scale S] [--app mp3d]
"""

from __future__ import annotations

import argparse

from repro.config import SystemConfig
from repro.experiments.formats import render_table
from repro.system import System
from repro.workloads import build_workload

MACHINE_SIZES = (4, 9, 16)
PROTOCOLS = ("BASIC", "P", "CW", "M", "P+CW", "P+M")


def run(app: str = "mp3d", scale: float = 1.0,
        sizes: tuple[int, ...] = MACHINE_SIZES) -> dict:
    """{n_procs: {proto: (exec_time, rel_to_basic, net_bytes)}}."""
    out: dict = {}
    for n in sizes:
        out[n] = {}
        base = None
        for proto in PROTOCOLS:
            cfg = SystemConfig(n_procs=n).with_protocol(proto)
            streams = build_workload(app, cfg, scale=scale)
            stats = System(cfg).run(streams)
            if base is None:
                base = stats.execution_time
            out[n][proto] = (
                stats.execution_time,
                stats.execution_time / base,
                stats.network.bytes,
            )
    return out


def render(data: dict, app: str = "") -> str:
    """Relative-time table across machine sizes."""
    sizes = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        row += [data[n][proto][1] for n in sizes]
        rows.append(row)
    return render_table(
        ["Protocol"] + [f"{n} procs" for n in sizes],
        rows,
        title=f"scaling study{f' [{app}]' if app else ''}: "
              "execution time relative to BASIC at each size",
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.scaling``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--app", default="mp3d")
    args = parser.parse_args(argv)
    print(render(run(app=args.app, scale=args.scale), app=args.app))


if __name__ == "__main__":
    main()
