"""Machine-size scaling study (extension beyond the paper).

The paper evaluates a fixed 16-processor machine.  This driver varies
the processor count (the mesh requires square counts: 4, 9, 16) and
reports, per protocol, how the execution time and the extension gains
scale.  Two effects the protocol extensions interact with:

* more processors -> more sharers per block -> longer invalidation
  chains (BASIC's write cost grows) and more update fan-out (CW's
  traffic grows),
* migratory chains visit more processors -> M's detection pays off
  once per block regardless, so its relative gain is stable.

Run:  python -m repro.experiments.scaling [--scale S] [--app mp3d]
"""

from __future__ import annotations

import argparse

from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)

MACHINE_SIZES = (4, 9, 16)
PROTOCOLS = ("BASIC", "P", "CW", "M", "P+CW", "P+M")


def run(app: str = "mp3d", scale: float = 1.0,
        sizes: tuple[int, ...] = MACHINE_SIZES,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """{n_procs: {proto: (exec_time, rel_to_basic, net_bytes)}}."""
    specs = [
        RunSpec.for_run(app, protocol=proto, n_procs=n, scale=scale, seed=seed)
        for n in sizes
        for proto in PROTOCOLS
    ]
    results = iter(execute(specs, engine))
    out: dict = {}
    for n in sizes:
        out[n] = {}
        base = None
        for proto in PROTOCOLS:
            stats = next(results).stats
            if base is None:
                base = stats.execution_time
            out[n][proto] = (
                stats.execution_time,
                stats.execution_time / base,
                stats.network.bytes,
            )
    return out


def render(data: dict, app: str = "") -> str:
    """Relative-time table across machine sizes."""
    sizes = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        row += [data[n][proto][1] for n in sizes]
        rows.append(row)
    return render_table(
        ["Protocol"] + [f"{n} procs" for n in sizes],
        rows,
        title=f"scaling study{f' [{app}]' if app else ''}: "
              "execution time relative to BASIC at each size",
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.scaling``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    parser.add_argument("--app", default="mp3d")
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    print(render(run(app=args.app, scale=args.scale, engine=engine,
                     seed=args.seed), app=args.app))
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
