"""Text rendering for experiment output: tables and bar charts.

The drivers print the same rows/series the paper reports; figures are
rendered as horizontal ASCII bar charts with the paper's stall-time
decomposition.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width text table."""
    str_rows = [[_fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return f"{cell:.2f}"
    return str(cell)


def to_csv(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """CSV rendering (for plotting the data with external tools)."""
    import csv
    import io

    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(headers)
    for row in rows:
        writer.writerow(row)
    return buf.getvalue()


def write_csv(
    path: str, headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> None:
    """Write a CSV file for external plotting."""
    with open(path, "w", newline="") as fh:
        fh.write(to_csv(headers, rows))


#: glyph per stall component, in the paper's stacking order
_SEGMENT_GLYPHS = {
    "busy": "#",
    "read": "r",
    "write": "w",
    "acquire": "a",
    "release": "l",
}


def render_stacked_bars(
    bars: Sequence[tuple[str, dict[str, float]]],
    width: int = 60,
    reference: float | None = None,
    title: str | None = None,
) -> str:
    """Horizontal stacked bars of execution-time components.

    ``bars`` is ``[(label, {"busy": x, "read": y, ...}), ...]``; values
    are normalized against the largest total (or ``reference``).  A
    legend line explains the glyphs.
    """
    totals = [sum(parts.values()) for _lbl, parts in bars]
    scale = reference if reference is not None else max(totals or [1.0])
    if scale <= 0:
        scale = 1.0
    lines = []
    if title:
        lines.append(title)
    label_w = max((len(lbl) for lbl, _p in bars), default=0)
    for (label, parts), total in zip(bars, totals):
        bar = ""
        for key, glyph in _SEGMENT_GLYPHS.items():
            value = parts.get(key, 0.0)
            bar += glyph * int(round(width * value / scale))
        lines.append(f"{label.ljust(label_w)} |{bar}  {total / scale:.2f}")
    legend = ", ".join(f"{g}={k}" for k, g in _SEGMENT_GLYPHS.items())
    lines.append(f"({legend}; numbers are relative to the first/reference bar)")
    return "\n".join(lines)


def decomposition(stats) -> dict[str, float]:
    """The paper's execution-time decomposition from MachineStats."""
    return {
        "busy": stats.mean_busy,
        "read": stats.mean_read_stall,
        "write": stats.mean_write_stall,
        "acquire": stats.mean_acquire_stall,
        "release": stats.mean_release_stall,
    }
