"""Table 1: hardware needed by BASIC and by each extension.

Unlike the other experiments this is a static inventory, computed from
the same configuration objects the simulator runs with, so the claimed
hardware budget and the modelled mechanisms cannot drift apart.
"""

from __future__ import annotations

import argparse

from repro.core.hwcost import cost_table, directory_overhead_fraction
from repro.experiments.formats import render_table
from repro.experiments.runner import make_config


def run(n_procs: int = 16) -> list:
    """The Table 1 rows for an ``n_procs``-node machine."""
    return cost_table(n_procs=n_procs)


def render(rows: list) -> str:
    """Text rendering of the hardware-budget inventory."""
    table_rows = []
    for cost in rows:
        table_rows.append(
            (
                cost.protocol,
                f"{cost.slc_state_bits_per_line} bits",
                "; ".join(cost.extra_cache_mechanisms) or "none",
                f"{cost.slwb_entries} entries"
                + (" (block-sized)" if cost.slwb_entry_holds_block else ""),
                f"{cost.memory_state_bits_per_line} bits",
            )
        )
    text = render_table(
        (
            "Protocol",
            "SLC line state",
            "Additional mechanisms",
            "SLWB",
            "Memory line state",
        ),
        table_rows,
        title="Table 1: hardware support per protocol (16 nodes, RC)",
    )
    basic = make_config("BASIC")
    mig = make_config("M")
    text += (
        f"\n\ndirectory overhead: BASIC "
        f"{directory_overhead_fraction(basic) * 100:.1f}% of data bits, "
        f"M {directory_overhead_fraction(mig) * 100:.1f}%"
    )
    return text


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.table1``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--procs", type=int, default=16)
    args = parser.parse_args(argv)
    print(render(run(n_procs=args.procs)))


if __name__ == "__main__":
    main()
