"""Page-placement study: §4's round-robin vs first-touch (extension).

The paper spreads pages round-robin across nodes, which balances home
load but makes almost every miss remote.  First-touch placement homes
a page at its first toucher: private data (particle records, matrix
panels, interior grid rows) becomes node-local, cutting two network
hops off its cold misses -- while truly shared pages concentrate at
one home.  This driver compares both policies per application and
protocol.

Run:  python -m repro.experiments.placement [--scale S]
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.config import SystemConfig
from repro.experiments.formats import render_table
from repro.system import System
from repro.workloads import APP_NAMES, build_workload

PROTOCOLS = ("BASIC", "P+CW")
POLICIES = ("round_robin", "first_touch")


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES) -> dict:
    """{app: {(protocol, policy): exec_time}}."""
    out: dict = {}
    for app in apps:
        out[app] = {}
        for proto in PROTOCOLS:
            for policy in POLICIES:
                cfg = replace(
                    SystemConfig().with_protocol(proto),
                    page_placement=policy,
                )
                streams = build_workload(app, cfg, scale=scale)
                stats = System(cfg).run(streams)
                out[app][(proto, policy)] = stats.execution_time
    return out


def render(data: dict) -> str:
    """First-touch execution time relative to round-robin."""
    apps = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        for app in apps:
            rr = data[app][(proto, "round_robin")]
            ft = data[app][(proto, "first_touch")]
            row.append(ft / rr)
        rows.append(row)
    return render_table(
        ["Protocol"] + apps,
        rows,
        title=(
            "placement study: first-touch execution time relative to "
            "round-robin (< 1.00 means first-touch wins)"
        ),
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.placement``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args(argv)
    print(render(run(scale=args.scale)))


if __name__ == "__main__":
    main()
