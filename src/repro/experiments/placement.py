"""Page-placement study: §4's round-robin vs first-touch (extension).

The paper spreads pages round-robin across nodes, which balances home
load but makes almost every miss remote.  First-touch placement homes
a page at its first toucher: private data (particle records, matrix
panels, interior grid rows) becomes node-local, cutting two network
hops off its cold misses -- while truly shared pages concentrate at
one home.  This driver compares both policies per application and
protocol.

Run:  python -m repro.experiments.placement [--scale S]
"""

from __future__ import annotations

import argparse

from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)
from repro.workloads import APP_NAMES

PROTOCOLS = ("BASIC", "P+CW")
POLICIES = ("round_robin", "first_touch")


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """{app: {(protocol, policy): exec_time}}."""
    specs = [
        RunSpec.for_run(app, protocol=proto, page_placement=policy,
                        scale=scale, seed=seed)
        for app in apps
        for proto in PROTOCOLS
        for policy in POLICIES
    ]
    results = iter(execute(specs, engine))
    out: dict = {}
    for app in apps:
        out[app] = {}
        for proto in PROTOCOLS:
            for policy in POLICIES:
                out[app][(proto, policy)] = next(results).execution_time
    return out


def render(data: dict) -> str:
    """First-touch execution time relative to round-robin."""
    apps = list(data)
    rows = []
    for proto in PROTOCOLS:
        row: list[object] = [proto]
        for app in apps:
            rr = data[app][(proto, "round_robin")]
            ft = data[app][(proto, "first_touch")]
            row.append(ft / rr)
        rows.append(row)
    return render_table(
        ["Protocol"] + apps,
        rows,
        title=(
            "placement study: first-touch execution time relative to "
            "round-robin (< 1.00 means first-touch wins)"
        ),
    )


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.placement``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    print(render(run(scale=args.scale, engine=engine, seed=args.seed)))
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
