"""Table 3: impact of network contention on P+CW and P+M.

The execution-time ratio (ETR) of P+CW and P+M against BASIC, where
all three run on the *same* wormhole-routed mesh, for link widths of
64, 32 and 16 bits.  The paper's observation: P+CW's extra traffic
makes its gains shrink (or vanish) as links narrow, while P+M -- whose
migratory optimization *frees* bandwidth for the prefetcher -- is
nearly insensitive to link width.
"""

from __future__ import annotations

import argparse

from repro.experiments.formats import render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    mesh_network,
    print_sweep_summary,
)
from repro.workloads import APP_NAMES

LINK_WIDTHS = (64, 32, 16)
PROTOCOLS = ("P+CW", "P+M")


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """{proto: {app: {width: ETR}}} plus link utilization data."""
    specs = [
        RunSpec.for_run(app, protocol=proto, network=mesh_network(width),
                        scale=scale, seed=seed)
        for app in apps
        for width in LINK_WIDTHS
        for proto in ("BASIC", *PROTOCOLS)
    ]
    results = iter(execute(specs, engine))
    out: dict = {proto: {app: {} for app in apps} for proto in PROTOCOLS}
    out["utilization"] = {app: {} for app in apps}
    for app in apps:
        for width in LINK_WIDTHS:
            base = next(results)
            out["utilization"][app][width] = (
                base.stats.network.peak_link_utilization
            )
            for proto in PROTOCOLS:
                res = next(results)
                out[proto][app][width] = res.execution_time / base.execution_time
    return out


def render(data: dict) -> str:
    """The paper's two-row-group table (ETR per link width)."""
    apps = list(data[PROTOCOLS[0]])
    chunks = []
    for proto in PROTOCOLS:
        rows = []
        for width in LINK_WIDTHS:
            row: list[object] = [f"{width}-bit links"]
            row += [data[proto][app][width] for app in apps]
            rows.append(row)
        chunks.append(
            render_table(
                ["Links"] + apps,
                rows,
                title=f"Table 3 ({proto}): execution time / BASIC on the same mesh",
            )
        )
        chunks.append("")
    util_rows = []
    for width in LINK_WIDTHS:
        row: list[object] = [f"{width}-bit links"]
        row += [data["utilization"][app][width] for app in apps]
        util_rows.append(row)
    chunks.append(
        render_table(
            ["BASIC max link util"] + apps,
            util_rows,
            title="(saturation indicator: peak link utilization under BASIC)",
        )
    )
    return "\n".join(chunks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.table3 [--scale S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    print(render(run(scale=args.scale, engine=engine, seed=args.seed)))
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
