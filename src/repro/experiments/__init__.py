"""Experiment drivers: one module per table/figure of the paper.

* :mod:`repro.experiments.table1` -- hardware-cost inventory
* :mod:`repro.experiments.figure2` -- RC execution times, all protocols
* :mod:`repro.experiments.table2` -- cold/coherence miss components
* :mod:`repro.experiments.figure3` -- SC execution times
* :mod:`repro.experiments.table3` -- mesh link-width sensitivity
* :mod:`repro.experiments.figure4` -- network traffic
* :mod:`repro.experiments.sensitivity` -- §5.4 buffer/SLC studies
* :mod:`repro.experiments.scaling` -- machine-size study (extension)
* :mod:`repro.experiments.placement` -- page-placement study (extension)
* :mod:`repro.experiments.report` -- everything, into EXPERIMENTS.md

Each module offers ``run(scale=...)`` returning structured data,
``render(data)`` producing the paper-style text output, and a CLI
(``python -m repro.experiments.<name> --scale 0.5``).
"""

from repro.experiments.runner import (
    RunResult,
    RunSpec,
    SweepEngine,
    execute,
    limited_slc_cache,
    make_config,
    mesh_network,
    small_buffer_cache,
)

__all__ = [
    "RunResult",
    "RunSpec",
    "SweepEngine",
    "execute",
    "limited_slc_cache",
    "make_config",
    "mesh_network",
    "small_buffer_cache",
]
