"""Figure 3: execution times under sequential consistency.

B-SC, P, M-SC and P+M relative to B-SC, decomposed into busy, read,
write, acquire and release stall; the dashed line of the paper --
BASIC under release consistency -- is reported alongside.  Headlines:

* M-SC attacks the write and acquire stalls of migratory applications
  (up to ~39 % execution-time reduction for MP3D),
* P attacks the read stall (up to ~26 % for Cholesky) at the price of
  a slightly increased write stall,
* P+M is additive (MP3D ~46 %, Cholesky ~55 %) and outperforms BASIC
  under RC for some applications.
"""

from __future__ import annotations

import argparse

from repro.config import SC_PROTOCOLS, Consistency
from repro.experiments.formats import decomposition, render_stacked_bars, render_table
from repro.experiments.runner import (
    DEFAULT_SEED,
    RunSpec,
    SweepEngine,
    add_sweep_args,
    engine_from_args,
    execute,
    print_sweep_summary,
)
from repro.workloads import APP_NAMES


def run(scale: float = 1.0, apps: tuple[str, ...] = APP_NAMES,
        engine: SweepEngine | None = None,
        seed: int = DEFAULT_SEED) -> dict:
    """{app: {"sc": {proto: result}, "basic_rc": exec_time}}."""
    specs = []
    for app in apps:
        specs += [
            RunSpec.for_run(app, protocol=proto, consistency=Consistency.SC,
                            scale=scale, seed=seed)
            for proto in SC_PROTOCOLS
        ]
        specs.append(RunSpec.for_run(app, protocol="BASIC",
                                     consistency=Consistency.RC,
                                     scale=scale, seed=seed))
    results = iter(execute(specs, engine))
    out: dict = {}
    for app in apps:
        sc = {proto: next(results) for proto in SC_PROTOCOLS}
        rc = next(results)
        out[app] = {"sc": sc, "basic_rc": rc.execution_time}
    return out


_SC_LABEL = {"BASIC": "B-SC", "P": "P", "M": "M-SC", "P+M": "P+M"}


def render(data: dict) -> str:
    """One stacked-bar chart per application plus the RC reference."""
    chunks = ["Figure 3: execution time under sequential consistency"]
    for app, entry in data.items():
        results = entry["sc"]
        base = results["BASIC"].execution_time
        bars = [
            (_SC_LABEL[proto], decomposition(res.stats))
            for proto, res in results.items()
        ]
        chunks.append("")
        chunks.append(render_stacked_bars(bars, reference=base, title=f"[{app}]"))
        rows = [
            (_SC_LABEL[proto], res.execution_time / base)
            for proto, res in results.items()
        ]
        rows.append(("BASIC-RC (dashed)", entry["basic_rc"] / base))
        chunks.append(render_table(("design", "relative exec time"), rows))
    return "\n".join(chunks)


def main(argv: list[str] | None = None) -> None:
    """CLI entry: ``python -m repro.experiments.figure3 [--scale S]``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    add_sweep_args(parser)
    args = parser.parse_args(argv)
    engine = engine_from_args(args)
    print(render(run(scale=args.scale, engine=engine, seed=args.seed)))
    print_sweep_summary(engine)


if __name__ == "__main__":
    main()
