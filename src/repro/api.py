"""High-level convenience API.

One-call helpers for the common questions a user of the library asks:

>>> from repro import api
>>> summary = api.run_app("mp3d", protocol="P+CW")
>>> summary.speedup_over("BASIC")   # needs a comparison; see below
>>> ranking = api.compare_protocols("mp3d")
>>> ranking.best().protocol
'P+CW'

Everything here is a thin, typed wrapper over
:class:`~repro.system.System` + :mod:`repro.workloads`; use those
directly for anything the helpers do not expose.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import (
    ALL_PROTOCOLS,
    CacheConfig,
    Consistency,
    NetworkConfig,
    SystemConfig,
)
from repro.stats.counters import MachineStats
from repro.system import System
from repro.workloads import build_workload


@dataclass(frozen=True)
class RunSummary:
    """Digest of one simulation."""

    app: str
    protocol: str
    consistency: str
    execution_time: int
    busy_fraction: float
    read_stall_fraction: float
    write_stall_fraction: float
    acquire_stall_fraction: float
    cold_miss_rate: float
    coherence_miss_rate: float
    network_bytes: int
    stats: MachineStats

    @classmethod
    def from_stats(cls, app: str, cfg: SystemConfig,
                   stats: MachineStats) -> "RunSummary":
        """Build a summary from raw machine statistics."""
        et = stats.execution_time or 1
        return cls(
            app=app,
            protocol=cfg.protocol.name,
            consistency=cfg.consistency.value,
            execution_time=stats.execution_time,
            busy_fraction=stats.mean_busy / et,
            read_stall_fraction=stats.mean_read_stall / et,
            write_stall_fraction=stats.mean_write_stall / et,
            acquire_stall_fraction=stats.mean_acquire_stall / et,
            cold_miss_rate=stats.miss_rate("cold"),
            coherence_miss_rate=stats.miss_rate("coherence"),
            network_bytes=stats.network.bytes,
            stats=stats,
        )


def run_app(
    app: str,
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    scale: float = 1.0,
    n_procs: int = 16,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    seed: int = 1994,
) -> RunSummary:
    """Simulate one application on one machine; returns a digest."""
    cfg = SystemConfig(
        n_procs=n_procs,
        consistency=consistency,
        network=network or NetworkConfig(),
        cache=cache or CacheConfig(),
    ).with_protocol(protocol)
    streams = build_workload(app, cfg, scale=scale, seed=seed)
    stats = System(cfg).run(streams)
    return RunSummary.from_stats(app, cfg, stats)


@dataclass(frozen=True)
class Ranking:
    """Protocols ranked by execution time on one application."""

    app: str
    summaries: tuple[RunSummary, ...]

    def best(self) -> RunSummary:
        """The fastest protocol's summary."""
        return self.summaries[0]

    def relative_time(self, protocol: str) -> float:
        """Execution time of ``protocol`` relative to BASIC."""
        base = self["BASIC"].execution_time
        return self[protocol].execution_time / base

    def __getitem__(self, protocol: str) -> RunSummary:
        for summary in self.summaries:
            if summary.protocol == protocol:
                return summary
        raise KeyError(protocol)

    def __iter__(self):
        return iter(self.summaries)


def compare_protocols(
    app: str,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    consistency: Consistency = Consistency.RC,
    scale: float = 1.0,
    **kw,
) -> Ranking:
    """Run several protocols on one application and rank them."""
    if "BASIC" not in protocols:
        protocols = ("BASIC", *protocols)
    summaries = [
        run_app(app, protocol=p, consistency=consistency, scale=scale, **kw)
        for p in protocols
    ]
    summaries.sort(key=lambda s: s.execution_time)
    return Ranking(app=app, summaries=tuple(summaries))
