"""High-level convenience API.

One-call helpers for the common questions a user of the library asks:

>>> from repro import api
>>> ranking = api.compare_protocols("mp3d")
>>> ranking.best().protocol
'P+CW'
>>> ranking.speedups()["P+CW"]          # execution time / baseline
0.55
>>> summary = api.run_app("mp3d", protocol="P+CW")
>>> summary.speedup_over(ranking["BASIC"])
1.8

Everything here is a thin, typed wrapper over the sweep engine
(:mod:`repro.sweep`), which in turn drives
:class:`~repro.system.System` + :mod:`repro.workloads`; use those
directly for anything the helpers do not expose.  Pass an explicit
:class:`~repro.sweep.SweepEngine` to fan comparisons out across
processes or to reuse cached results.

Serialization goes through **one** path end to end: a cell is
described by a :class:`~repro.sweep.RunSpec` (versioned wire form via
``to_wire``/``to_json``), and a completed cell is digested by
:class:`RunSummary` -- every summary, whatever produced it, is built
by the same constructor from the same ``MachineStats``, and
:meth:`RunSummary.to_dict` / :meth:`Ranking.to_dict` are the only
JSON shapes.  The CLI tables, the experiment reports and the HTTP
service (:mod:`repro.service`) all render from these dicts instead of
keeping private formats, so a number shown anywhere is the same
number stored in the cache and served over the wire.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import (
    ALL_PROTOCOLS,
    CacheConfig,
    Consistency,
    DirectoryConfig,
    NetworkConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.stats.counters import MachineStats
from repro.sweep import (
    DEFAULT_SEED,
    ResultCache,
    RunResult,
    RunSpec,
    SweepEngine,
)


def make_engine(
    jobs: int = 1,
    cache_dir: str | None = None,
    pool: str = "persistent",
    hot_cache_entries: int = 512,
    write_batch: int = 1,
) -> SweepEngine:
    """A sweep engine in the throughput configuration.

    ``jobs > 1`` fans out across worker processes -- on the process-wide
    persistent warm pool by default, or a fresh per-batch pool with
    ``pool="per-run"``.  ``cache_dir`` enables on-disk memoization with
    an in-memory hot tier of ``hot_cache_entries`` deserialized results
    in front of it (0 disables the tier) and ``write_batch``-way
    coalesced disk writes.  Pass the result to :func:`run_app` /
    :func:`compare_protocols`, and call ``engine.close()`` when done to
    flush batched cache writes.
    """
    cache = None
    if cache_dir is not None:
        cache = ResultCache(
            cache_dir, hot_entries=hot_cache_entries,
            write_batch=write_batch,
        )
    return SweepEngine(
        executor="process" if jobs > 1 else "serial",
        max_workers=jobs,
        cache=cache,
        pool=pool,
    )


@dataclass(frozen=True)
class RunSummary:
    """Digest of one simulation: a ratio-level view of a RunResult."""

    app: str
    protocol: str
    consistency: str
    execution_time: int
    busy_fraction: float
    read_stall_fraction: float
    write_stall_fraction: float
    acquire_stall_fraction: float
    release_stall_fraction: float
    cold_miss_rate: float
    coherence_miss_rate: float
    replacement_miss_rate: float
    network_bytes: int
    stats: MachineStats
    #: the spec that produced this summary (None for summaries built
    #: from raw stats without one).
    spec: RunSpec | None = None

    @classmethod
    def build(
        cls,
        app: str,
        protocol: str,
        consistency: str,
        stats: MachineStats,
        spec: RunSpec | None = None,
    ) -> "RunSummary":
        """The one construction path every summary goes through."""
        et = stats.execution_time or 1
        return cls(
            app=app,
            protocol=protocol,
            consistency=consistency,
            execution_time=stats.execution_time,
            busy_fraction=stats.mean_busy / et,
            read_stall_fraction=stats.mean_read_stall / et,
            write_stall_fraction=stats.mean_write_stall / et,
            acquire_stall_fraction=stats.mean_acquire_stall / et,
            release_stall_fraction=stats.mean_release_stall / et,
            cold_miss_rate=stats.miss_rate("cold"),
            coherence_miss_rate=stats.miss_rate("coherence"),
            replacement_miss_rate=stats.miss_rate("replacement"),
            network_bytes=stats.network.bytes,
            stats=stats,
            spec=spec,
        )

    @classmethod
    def from_result(cls, result: RunResult) -> "RunSummary":
        """The summary view of a sweep-engine result."""
        return cls.build(
            app=result.app,
            protocol=result.protocol,
            consistency=result.consistency,
            stats=result.stats,
            spec=result.spec,
        )

    @classmethod
    def from_stats(cls, app: str, cfg: SystemConfig,
                   stats: MachineStats) -> "RunSummary":
        """Build a summary from raw machine statistics."""
        return cls.build(
            app=app,
            protocol=cfg.protocol.name,
            consistency=cfg.consistency.value,
            stats=stats,
        )

    def to_dict(self, include_stats: bool = False) -> dict:
        """JSON-able digest; the wire/report form of this summary.

        The full (versioned) ``MachineStats`` payload is included only
        on request -- it is an order of magnitude larger than the
        digest and most consumers only want the ratios.
        """
        d = {
            "app": self.app,
            "protocol": self.protocol,
            "consistency": self.consistency,
            "execution_time": self.execution_time,
            "busy_fraction": self.busy_fraction,
            "read_stall_fraction": self.read_stall_fraction,
            "write_stall_fraction": self.write_stall_fraction,
            "acquire_stall_fraction": self.acquire_stall_fraction,
            "release_stall_fraction": self.release_stall_fraction,
            "cold_miss_rate": self.cold_miss_rate,
            "coherence_miss_rate": self.coherence_miss_rate,
            "replacement_miss_rate": self.replacement_miss_rate,
            "network_bytes": self.network_bytes,
            "spec": self.spec.to_wire() if self.spec is not None else None,
        }
        if include_stats:
            d["stats"] = self.stats.to_dict()
        return d

    def speedup_over(self, baseline: "RunSummary") -> float:
        """How many times faster this run is than ``baseline``.

        > 1.0 means this configuration beats the baseline.
        """
        if not self.execution_time:
            raise ValueError("summary has zero execution time")
        return baseline.execution_time / self.execution_time


def _spec(
    app: str,
    protocol: str,
    consistency: Consistency,
    scale: float,
    n_procs: int,
    network: NetworkConfig | None,
    cache: CacheConfig | None,
    seed: int,
    directory: DirectoryConfig | str | None = None,
    backend: str = "event",
) -> RunSpec:
    return RunSpec.for_run(
        app,
        protocol=protocol,
        consistency=consistency,
        network=network,
        cache=cache,
        n_procs=n_procs,
        scale=scale,
        seed=seed,
        directory=directory,
        backend=backend,
    )


def run_app(
    app: str,
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    scale: float = 1.0,
    n_procs: int = 16,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    seed: int = DEFAULT_SEED,
    directory: DirectoryConfig | str | None = None,
    backend: str = "event",
    engine: SweepEngine | None = None,
) -> RunSummary:
    """Simulate one application on one machine; returns a digest.

    ``directory`` selects the directory organization (a
    :class:`~repro.config.DirectoryConfig` or a name like
    ``"limited:4"``; default full map).  ``backend`` selects the
    execution tier (see :mod:`repro.sim.backend`): ``"event"`` and
    ``"specialized"`` are counter-exact, ``"replay"`` trades documented
    tolerances for speed.
    """
    spec = _spec(app, protocol, consistency, scale, n_procs, network,
                 cache, seed, directory, backend)
    engine = engine or SweepEngine()
    return RunSummary.from_result(engine.run_one(spec))


@dataclass(frozen=True)
class Ranking:
    """Protocols ranked by execution time on one application."""

    app: str
    summaries: tuple[RunSummary, ...]
    #: protocol every relative number is normalized against.
    baseline: str = "BASIC"

    def best(self) -> RunSummary:
        """The fastest protocol's summary (first also wins ties)."""
        return self.summaries[0]

    def baseline_summary(self) -> RunSummary:
        """The baseline protocol's summary."""
        return self[self.baseline]

    def relative_time(self, protocol: str) -> float:
        """Execution time of ``protocol`` relative to the baseline."""
        base = self.baseline_summary().execution_time
        return self[protocol].execution_time / base

    def speedups(self) -> dict[str, float]:
        """``{protocol: execution_time / baseline_time}`` for all rows."""
        base = self.baseline_summary().execution_time
        return {s.protocol: s.execution_time / base for s in self.summaries}

    def to_dict(self, include_stats: bool = False) -> dict:
        """JSON-able ranking: summaries (fastest first) + speedups."""
        return {
            "app": self.app,
            "baseline": self.baseline,
            "speedups": self.speedups(),
            "summaries": [
                s.to_dict(include_stats=include_stats)
                for s in self.summaries
            ],
        }

    def __getitem__(self, protocol: str) -> RunSummary:
        for summary in self.summaries:
            if summary.protocol == protocol:
                return summary
        raise KeyError(protocol)

    def __iter__(self):
        return iter(self.summaries)


def compare_protocols(
    app: str,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    consistency: Consistency = Consistency.RC,
    scale: float = 1.0,
    n_procs: int = 16,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    seed: int = DEFAULT_SEED,
    directory: DirectoryConfig | str | None = None,
    backend: str = "event",
    baseline: str = "BASIC",
    engine: SweepEngine | None = None,
) -> Ranking:
    """Run several protocols on one application and rank them.

    The baseline protocol is always included in the comparison; all
    cells go through the sweep engine in one batch, so an engine with a
    process executor parallelizes the comparison and one with a cache
    memoizes it.
    """
    baseline = ProtocolConfig.from_name(baseline).name
    if baseline not in protocols:
        protocols = (baseline, *protocols)
    specs = [
        _spec(app, p, consistency, scale, n_procs, network, cache, seed,
              directory, backend)
        for p in protocols
    ]
    engine = engine or SweepEngine()
    summaries = [RunSummary.from_result(r) for r in engine.run(specs)]
    summaries.sort(key=lambda s: s.execution_time)
    return Ranking(app=app, summaries=tuple(summaries), baseline=baseline)
