"""High-level convenience API.

One-call helpers for the common questions a user of the library asks:

>>> from repro import api
>>> ranking = api.compare_protocols("mp3d")
>>> ranking.best().protocol
'P+CW'
>>> ranking.speedups()["P+CW"]          # execution time / baseline
0.55
>>> summary = api.run_app("mp3d", protocol="P+CW")
>>> summary.speedup_over(ranking["BASIC"])
1.8

Everything here is a thin, typed wrapper over the sweep engine
(:mod:`repro.sweep`), which in turn drives
:class:`~repro.system.System` + :mod:`repro.workloads`; use those
directly for anything the helpers do not expose.  Pass an explicit
:class:`~repro.sweep.SweepEngine` to fan comparisons out across
processes or to reuse cached results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.config import (
    ALL_PROTOCOLS,
    CacheConfig,
    Consistency,
    NetworkConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.stats.counters import MachineStats
from repro.sweep import DEFAULT_SEED, RunResult, RunSpec, SweepEngine


@dataclass(frozen=True)
class RunSummary:
    """Digest of one simulation: a ratio-level view of a RunResult."""

    app: str
    protocol: str
    consistency: str
    execution_time: int
    busy_fraction: float
    read_stall_fraction: float
    write_stall_fraction: float
    acquire_stall_fraction: float
    cold_miss_rate: float
    coherence_miss_rate: float
    network_bytes: int
    stats: MachineStats
    #: the spec that produced this summary (None for summaries built
    #: from raw stats without one).
    spec: RunSpec | None = None

    @classmethod
    def from_result(cls, result: RunResult) -> "RunSummary":
        """The summary view of a sweep-engine result."""
        stats = result.stats
        et = stats.execution_time or 1
        return cls(
            app=result.app,
            protocol=result.protocol,
            consistency=result.consistency,
            execution_time=stats.execution_time,
            busy_fraction=stats.mean_busy / et,
            read_stall_fraction=stats.mean_read_stall / et,
            write_stall_fraction=stats.mean_write_stall / et,
            acquire_stall_fraction=stats.mean_acquire_stall / et,
            cold_miss_rate=stats.miss_rate("cold"),
            coherence_miss_rate=stats.miss_rate("coherence"),
            network_bytes=stats.network.bytes,
            stats=stats,
            spec=result.spec,
        )

    @classmethod
    def from_stats(cls, app: str, cfg: SystemConfig,
                   stats: MachineStats) -> "RunSummary":
        """Build a summary from raw machine statistics."""
        et = stats.execution_time or 1
        return cls(
            app=app,
            protocol=cfg.protocol.name,
            consistency=cfg.consistency.value,
            execution_time=stats.execution_time,
            busy_fraction=stats.mean_busy / et,
            read_stall_fraction=stats.mean_read_stall / et,
            write_stall_fraction=stats.mean_write_stall / et,
            acquire_stall_fraction=stats.mean_acquire_stall / et,
            cold_miss_rate=stats.miss_rate("cold"),
            coherence_miss_rate=stats.miss_rate("coherence"),
            network_bytes=stats.network.bytes,
            stats=stats,
        )

    def speedup_over(self, baseline: "RunSummary") -> float:
        """How many times faster this run is than ``baseline``.

        > 1.0 means this configuration beats the baseline.
        """
        if not self.execution_time:
            raise ValueError("summary has zero execution time")
        return baseline.execution_time / self.execution_time


def _spec(
    app: str,
    protocol: str,
    consistency: Consistency,
    scale: float,
    n_procs: int,
    network: NetworkConfig | None,
    cache: CacheConfig | None,
    seed: int,
) -> RunSpec:
    return RunSpec.for_run(
        app,
        protocol=protocol,
        consistency=consistency,
        network=network,
        cache=cache,
        n_procs=n_procs,
        scale=scale,
        seed=seed,
    )


def run_app(
    app: str,
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    scale: float = 1.0,
    n_procs: int = 16,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    seed: int = DEFAULT_SEED,
    engine: SweepEngine | None = None,
) -> RunSummary:
    """Simulate one application on one machine; returns a digest."""
    spec = _spec(app, protocol, consistency, scale, n_procs, network,
                 cache, seed)
    engine = engine or SweepEngine()
    return RunSummary.from_result(engine.run_one(spec))


@dataclass(frozen=True)
class Ranking:
    """Protocols ranked by execution time on one application."""

    app: str
    summaries: tuple[RunSummary, ...]
    #: protocol every relative number is normalized against.
    baseline: str = "BASIC"

    def best(self) -> RunSummary:
        """The fastest protocol's summary (first also wins ties)."""
        return self.summaries[0]

    def baseline_summary(self) -> RunSummary:
        """The baseline protocol's summary."""
        return self[self.baseline]

    def relative_time(self, protocol: str) -> float:
        """Execution time of ``protocol`` relative to the baseline."""
        base = self.baseline_summary().execution_time
        return self[protocol].execution_time / base

    def speedups(self) -> dict[str, float]:
        """``{protocol: execution_time / baseline_time}`` for all rows."""
        base = self.baseline_summary().execution_time
        return {s.protocol: s.execution_time / base for s in self.summaries}

    def __getitem__(self, protocol: str) -> RunSummary:
        for summary in self.summaries:
            if summary.protocol == protocol:
                return summary
        raise KeyError(protocol)

    def __iter__(self):
        return iter(self.summaries)


def compare_protocols(
    app: str,
    protocols: Sequence[str] = ALL_PROTOCOLS,
    consistency: Consistency = Consistency.RC,
    scale: float = 1.0,
    n_procs: int = 16,
    network: NetworkConfig | None = None,
    cache: CacheConfig | None = None,
    seed: int = DEFAULT_SEED,
    baseline: str = "BASIC",
    engine: SweepEngine | None = None,
) -> Ranking:
    """Run several protocols on one application and rank them.

    The baseline protocol is always included in the comparison; all
    cells go through the sweep engine in one batch, so an engine with a
    process executor parallelizes the comparison and one with a cache
    memoizes it.
    """
    baseline = ProtocolConfig.from_name(baseline).name
    if baseline not in protocols:
        protocols = (baseline, *protocols)
    specs = [
        _spec(app, p, consistency, scale, n_procs, network, cache, seed)
        for p in protocols
    ]
    engine = engine or SweepEngine()
    summaries = [RunSummary.from_result(r) for r in engine.run(specs)]
    summaries.sort(key=lambda s: s.execution_time)
    return Ranking(app=app, summaries=tuple(summaries), baseline=baseline)
