"""Hot-path microbenchmark stream (not a paper workload).

Every real workload is dominated by ``think`` ops and first-level
cache hits -- references the paper's methodology charges a fixed,
contention-free latency.  This generator distils that common case
into a stream that is *almost entirely* think ops and FLC hits, with
a sprinkle of buffered writes: each processor loops over a small
private working set that stays resident in its FLC after warm-up, so
the simulator's per-reference overhead -- not protocol work -- is
what gets measured.  The benchmark harness uses it to track the cost
of the synchronous fast path across revisions.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder

#: resident blocks per processor; small enough to stay in any FLC
WORKING_SET_BLOCKS = 8


def streams(
    cfg: SystemConfig, scale: float = 1.0, seed: int = 1994, **_kw
) -> list[list[Op]]:
    """One hit-dominated loop per processor over a private page."""
    n_ops = max(1, int(40_000 * scale))
    out = []
    for p in range(cfg.n_procs):
        b = StreamBuilder(seed=seed + p)
        base = p * cfg.cache.page_size  # private page -> local home
        for i in range(WORKING_SET_BLOCKS):  # warm the working set
            b.read(base + i * BLOCK)
        for i in range(n_ops):
            b.think(2 + (i + p) % 7)
            b.read(base + (i % WORKING_SET_BLOCKS) * BLOCK)
            if i % 13 == 0:
                b.write(base + (i % WORKING_SET_BLOCKS) * BLOCK + 4)
        out.append(b.ops)
    return out
