"""Workload infrastructure.

Each workload module builds one reference stream per processor.  As in
the CacheMire methodology (paper §4), only *shared-data* references and
synchronization are emitted; instructions and private data are folded
into ``think`` cycles.  Streams are plain lists of ops:

    ('think', cycles) | ('read', addr) | ('write', addr)
    | ('acquire', addr) | ('release', addr) | ('barrier', id)

The generators are synthetic stand-ins for the five applications
(MP3D, Cholesky, Water, LU, Ocean): they reproduce each program's
*sharing signature* -- the mix of cold / replacement / coherence
misses, migratory read-write sequences, spatial locality and
synchronization intensity the protocol extensions are sensitive to --
which is what the extensions see, rather than the computation itself.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.config import SystemConfig
from repro.mem.addrmap import AddressMap, AddressSpace

Op = tuple

BLOCK = 32
WORD = 4


class StreamBuilder:
    """Convenience builder for one processor's reference stream."""

    def __init__(self, seed: int = 0) -> None:
        self.ops: list[Op] = []
        self.rng = random.Random(seed)

    def think(self, cycles: int) -> None:
        """Local computation (instructions + private data)."""
        if cycles > 0:
            self.ops.append(("think", cycles))

    def read(self, addr: int) -> None:
        """One shared read."""
        self.ops.append(("read", addr))

    def write(self, addr: int) -> None:
        """One shared write."""
        self.ops.append(("write", addr))

    def rmw(self, addr: int, think: int = 0) -> None:
        """Read-modify-write (the ``x := x + 1`` migratory idiom)."""
        self.read(addr)
        if think:
            self.think(think)
        self.write(addr)

    def acquire(self, addr: int) -> None:
        """Lock acquire."""
        self.ops.append(("acquire", addr))

    def release(self, addr: int) -> None:
        """Lock release."""
        self.ops.append(("release", addr))

    def barrier(self, bar_id: int) -> None:
        """Global barrier."""
        self.ops.append(("barrier", bar_id))

    def touch_run(self, base: int, n_blocks: int, reads: int = 2,
                  writes: int = 0, think: int = 2) -> None:
        """Sequential sweep over ``n_blocks`` consecutive blocks.

        The block-sequential pattern is what adaptive sequential
        prefetching exploits.
        """
        for i in range(n_blocks):
            addr = base + i * BLOCK
            for r in range(reads):
                self.read(addr + (r % (BLOCK // WORD)) * WORD)
            for w in range(writes):
                self.write(addr + (w % (BLOCK // WORD)) * WORD)
            self.think(think)


@dataclass(frozen=True)
class WorkloadLayout:
    """Shared address-space layout helpers for one workload."""

    cfg: SystemConfig

    def address_map(self) -> AddressMap:
        """The machine's address map."""
        return AddressMap(
            block_size=self.cfg.cache.block_size,
            page_size=self.cfg.cache.page_size,
            n_nodes=self.cfg.n_procs,
        )

    def space(self) -> AddressSpace:
        """A fresh allocator over the shared address space."""
        return AddressSpace(self.address_map())


def scaled(value: int, scale: float, minimum: int = 1) -> int:
    """Scale an iteration/size parameter, keeping a sane minimum."""
    return max(minimum, int(round(value * scale)))
