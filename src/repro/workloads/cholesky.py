"""Cholesky-like workload: sparse factorization with a task queue.

Cholesky (SPLASH, bcsstk14 in the paper) combines the two behaviours
the extensions split between them:

* a high cold miss rate throughout the run (direct method; Table 2:
  P cuts it from ~0.90 % to ~0.19 %),
* *migratory* sharing on the dynamic task-queue head and on the
  destination columns that successive processors update in turn, each
  inside the column's critical section (ref [12] cuts 69-96 % of
  Cholesky's ownership requests with M).

Synthetic structure: columns are processed in dependency-respecting
waves (the real program's task queue only releases a column once all
its updates have landed).  A task claims work through a lock-protected
global counter, reads its source column (sequential blocks, often
cold), and applies read-modify-write updates to destination columns in
later waves, each under that column's lock -- so any destination
column is written by a chain of different processors in turn, the
canonical migratory pattern, with no concurrent read-write overlap.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder, WorkloadLayout, scaled

#: cache blocks per column (a 192-byte sequential run for prefetching)
COL_BLOCKS = 6
#: destination columns updated per task
N_DEST = 3
#: lock spacing in bytes (spreads lock home nodes across pages)
LOCK_STRIDE = 256


def streams(
    cfg: SystemConfig,
    scale: float = 1.0,
    seed: int = 1994,
    n_cols: int = 192,
) -> list[list[Op]]:
    """Build one Cholesky-like reference stream per processor."""
    n = cfg.n_procs
    n_cols = scaled(n_cols, scale, minimum=6 * n)
    wave = 2 * n  # columns processed between barriers

    layout = WorkloadLayout(cfg)
    space = layout.space()
    cols = space.alloc_page_aligned("columns", n_cols * COL_BLOCKS * BLOCK)
    col_locks = space.alloc_page_aligned("col_locks", n_cols * LOCK_STRIDE)
    queue_lock = space.alloc_page_aligned("queue_lock", BLOCK)
    queue_head = space.alloc_page_aligned("queue_head", BLOCK)

    def col(j: int) -> int:
        return cols + j * COL_BLOCKS * BLOCK

    def lock_of(j: int) -> int:
        return col_locks + j * LOCK_STRIDE

    # destination columns: always at least one wave later.  With these
    # offsets every column d is updated twice by processor (d + n/2)
    # mod n in successive waves and once by its own task's processor,
    # then read and factored by the latter -- a migratory write chain
    # across two processors with no concurrent read-write overlap.
    dests = {
        j: [
            d
            for d in (
                j + wave + n // 2,
                j + 2 * wave + n // 2,
                j + 3 * wave,
            )[:N_DEST]
            if d < n_cols
        ]
        for j in range(n_cols)
    }

    builders = [StreamBuilder(seed=seed * 13 + pid) for pid in range(n)]
    bar = 0
    for w0 in range(0, n_cols, wave):
        for j in range(w0, min(w0 + wave, n_cols)):
            sb = builders[j % n]
            if (j // n) % 2 == 0:
                # claim a batch of tasks from the shared queue
                # (migratory read/write on the queue head)
                sb.acquire(queue_lock)
                sb.rmw(queue_head, think=2)
                sb.release(queue_lock)
            # read the source column: sequential, often cold
            for b in range(COL_BLOCKS):
                addr = col(j) + b * BLOCK
                sb.read(addr)
                sb.read(addr + 8)
                sb.think(6)
            sb.think(12)
            # update destination columns inside their critical
            # sections (migratory read/write sequences)
            for d in dests[j]:
                for b in range(COL_BLOCKS):
                    sb.read(col(j) + b * BLOCK)
                sb.acquire(lock_of(d))
                for b in range(COL_BLOCKS):
                    addr = col(d) + b * BLOCK
                    sb.read(addr)
                    sb.read(addr + 8)
                    sb.read(addr + 16)
                    sb.write(addr)
                    sb.write(addr + 8)
                    sb.write(addr + 16)
                    sb.think(4)
                sb.release(lock_of(d))
                sb.think(16)
            # factor the column in place once its updates are done
            for b in range(COL_BLOCKS):
                addr = col(j) + b * BLOCK
                sb.read(addr)
                sb.write(addr)
            sb.think(20)
        for b in builders:
            b.barrier(bar)
        bar += 1
    return [b.ops for b in builders]
