"""PTHOR-like workload: distributed-time logic simulation (extension).

PTHOR is the sixth program of the SPLASH suite used by the paper's
prefetching study (ref [3]: "six benchmark programs from the SPLASH
suite (five of them are used in this paper)").  It is included here as
an *extension* beyond the paper's five applications because it makes a
useful contrast case:

* circuit *elements* are evaluated by whichever processor dequeues
  them -- element state is strongly **migratory** (M's best case),
* element-to-element connectivity is irregular: the reference stream
  has almost **no sequential locality**, so adaptive prefetching turns
  itself off instead of spraying useless prefetches (the adaptation
  story of §3.1),
* per-processor task queues with stealing produce lock traffic.

Synthetic structure, per simulation phase: each processor pops tasks
from its queue (lock + migratory head counter), evaluates elements --
read-modify-write of the element record, reads of the (pseudo-random)
fan-in elements' output blocks -- and occasionally pushes work to a
neighbour's queue; a barrier ends the phase.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder, WorkloadLayout, scaled

#: cache blocks per element record (state + output)
ELEM_BLOCKS = 2
#: fan-in nets read per element evaluation
FANIN = 3


def streams(
    cfg: SystemConfig,
    scale: float = 1.0,
    seed: int = 1994,
    n_elements: int = 96,
    phases: int = 6,
    tasks_per_phase: int = 10,
) -> list[list[Op]]:
    """Build one PTHOR-like reference stream per processor."""
    n = cfg.n_procs
    n_elements = scaled(n_elements, scale, minimum=2 * n)
    phases = scaled(phases, scale, minimum=2)
    tasks_per_phase = scaled(tasks_per_phase, scale, minimum=2)

    layout = WorkloadLayout(cfg)
    space = layout.space()
    elems = space.alloc_page_aligned("elements", n_elements * ELEM_BLOCKS * BLOCK)
    queues = space.alloc_page_aligned("queues", n * BLOCK)
    locks = space.alloc_page_aligned("queue_locks", n * 256)

    def elem(e: int) -> int:
        return elems + e * ELEM_BLOCKS * BLOCK

    out: list[list[Op]] = []
    for pid in range(n):
        sb = StreamBuilder(seed=seed * 41 + pid)
        bar = 0
        for phase in range(phases):
            for task in range(tasks_per_phase):
                # pop a task from the local queue (migratory head)
                sb.acquire(locks + pid * 256)
                sb.rmw(queues + pid * BLOCK, think=2)
                sb.release(locks + pid * 256)
                # the element migrates: in a Chandy-Misra simulator any
                # processor may end up evaluating any element, so each
                # element is re-evaluated by a different processor in
                # successive phases
                e = (task * n + pid + phase * 5) % n_elements
                # evaluate: read fan-in outputs (irregular, no
                # sequential locality), then update the element record
                for k in range(FANIN):
                    src = (e * 17 + k * 71 + phase * 13) % n_elements
                    sb.read(elem(src) + BLOCK)  # the output block
                    sb.think(8)
                for b in range(ELEM_BLOCKS):
                    sb.rmw(elem(e) + b * BLOCK, think=6)
                sb.think(18)
                # sometimes schedule a follower on a neighbour's queue
                if sb.rng.random() < 0.25:
                    victim = sb.rng.randrange(n)
                    sb.acquire(locks + victim * 256)
                    sb.rmw(queues + victim * BLOCK, think=2)
                    sb.release(locks + victim * 256)
                    sb.think(6)
            sb.barrier(bar)
            bar += 1
        out.append(sb.ops)
    return out
