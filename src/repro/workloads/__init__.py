"""The five SPLASH-like synthetic workloads of the evaluation (§4)."""

from typing import Callable

from repro.config import SystemConfig
from repro.workloads import cholesky, hitpath, lu, mp3d, ocean, pthor, water
from repro.workloads.base import Op, StreamBuilder

#: workload registry, in the paper's presentation order, plus the
#: PTHOR extension (the sixth SPLASH program of ref [3]) and the
#: hot-path microbenchmark used by the benchmark harness
WORKLOADS: dict[str, Callable] = {
    "mp3d": mp3d.streams,
    "cholesky": cholesky.streams,
    "water": water.streams,
    "lu": lu.streams,
    "ocean": ocean.streams,
    "pthor": pthor.streams,
    "hitpath": hitpath.streams,
}

#: the five applications of the paper's evaluation
APP_NAMES = ("mp3d", "cholesky", "water", "lu", "ocean")

#: every available workload, including extensions
ALL_APP_NAMES = tuple(WORKLOADS)


def build_workload(
    name: str, cfg: SystemConfig, scale: float = 1.0, seed: int = 1994, **kw
) -> list[list[Op]]:
    """Build the named workload's per-processor reference streams."""
    try:
        factory = WORKLOADS[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown workload {name!r}; choose from {sorted(WORKLOADS)}"
        ) from None
    return factory(cfg, scale=scale, seed=seed, **kw)


__all__ = [
    "ALL_APP_NAMES",
    "APP_NAMES",
    "Op",
    "StreamBuilder",
    "WORKLOADS",
    "build_workload",
]
