"""Ocean-like workload: iterative grid relaxation with boundary sharing.

Ocean (Stanford, 128x128 grid in the paper) performs red-black
Gauss-Seidel sweeps over a partitioned grid.  Its signature:

* interior points hit after the first sweep (infinite SLC), so cold
  misses are confined to the start,
* coherence misses come from *boundary rows* exchanged with the
  neighbouring partitions every sweep, plus *false sharing* on cache
  blocks that straddle a partition boundary -- the paper speculates
  these "false sharing interactions cause blocks to become migratory
  at times" (§5.2),
* spatial locality across misses is poor (column-order phases, widely
  scattered boundary misses), so adaptive prefetching adapts its
  degree down and P barely reduces Ocean's read stall (§5.1),
* the interleaved reads and writes on boundary blocks are exactly the
  pattern where a competitive-update protocol keeps copies alive, so
  CW removes most of Ocean's coherence misses.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder, WorkloadLayout, scaled

#: cache blocks per grid row
ROW_BLOCKS = 16


def streams(
    cfg: SystemConfig,
    scale: float = 1.0,
    seed: int = 1994,
    rows_per_proc: int = 6,
    sweeps: int = 16,
) -> list[list[Op]]:
    """Build one Ocean-like reference stream per processor."""
    n = cfg.n_procs
    rows_per_proc = scaled(rows_per_proc, scale, minimum=2)
    sweeps = scaled(sweeps, scale, minimum=2)

    layout = WorkloadLayout(cfg)
    space = layout.space()
    grid = space.alloc_page_aligned(
        "grid", n * rows_per_proc * ROW_BLOCKS * BLOCK
    )
    # one straddling block per internal partition boundary: the low
    # words belong to processor p, the high words to processor p+1
    boundary = space.alloc_page_aligned("boundary", max(n - 1, 1) * BLOCK)

    def row(r: int) -> int:
        return grid + r * ROW_BLOCKS * BLOCK

    out: list[list[Op]] = []
    for pid in range(n):
        sb = StreamBuilder(seed=seed * 37 + pid)
        first = pid * rows_per_proc
        last = first + rows_per_proc - 1
        bar = 0
        for sweep in range(sweeps):
            col_phase = sweep % 2 == 1
            # interior relaxation over the owned rows
            for r in range(first, last + 1):
                if col_phase:
                    # column-order traversal: block stride breaks the
                    # sequential pattern P relies on
                    order = [
                        (b * 7) % ROW_BLOCKS for b in range(ROW_BLOCKS)
                    ]
                else:
                    order = list(range(ROW_BLOCKS))
                for b in order:
                    addr = row(r) + b * BLOCK
                    sb.read(addr)
                    sb.read(addr + 8)
                    sb.write(addr)
                    sb.think(8)
                # boundary blocks straddling the partition: every row
                # re-reads this processor's half, and the edge rows
                # write it.  The frequent reads interleave with the
                # neighbour's (infrequent) update flushes, so copies
                # survive under CW but ping-pong under write-invalidate.
                writes_boundary = r in (first, last)
                for nb_block, lo in ((pid - 1, False), (pid, True)):
                    if 0 <= nb_block < n - 1:
                        baddr = boundary + nb_block * BLOCK + (
                            0 if lo else 16
                        )
                        sb.read(baddr)
                        if writes_boundary:
                            sb.write(baddr)
                sb.think(4)
            # read the neighbours' edge rows: scattered accesses to
            # blocks the neighbour rewrote last sweep
            for nb_row, step in (
                (first - 1, 5),
                (last + 1, 3),
            ):
                if 0 <= nb_row < n * rows_per_proc:
                    for b in range(0, ROW_BLOCKS, step):
                        sb.read(row(nb_row) + b * BLOCK)
                    sb.think(4)
            sb.barrier(bar)
            bar += 1
        out.append(sb.ops)
    return out
