"""Water-like workload: cutoff molecular dynamics.

Water (SPLASH, 288 molecules / 4 steps in the paper) computes
intermolecular forces: each processor owns a set of molecules, reads
the *positions* of molecules within a cutoff radius over and over
(read sharing with very high reuse, so miss rates are low -- Table 2
shows Water with ~0.04 % cold and ~0.6 % coherence misses), and
accumulates into per-molecule *force* records inside per-molecule
critical sections -- migratory sharing that the M optimization targets
(ref [12] cuts most of Water's ownership requests).

Synthetic structure, per time step:

* force phase: for each owned molecule, many interactions against a
  small, persistent neighbour set; each interaction re-reads the
  neighbour's position blocks and occasionally updates the neighbour's
  force record under its lock,
* barrier,
* update phase: the owner folds the force into the position (writes),
* barrier.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder, WorkloadLayout, scaled

#: cache blocks per molecule position record
POS_BLOCKS = 2
#: interactions computed per owned molecule per step
INTERACTIONS = 40


def streams(
    cfg: SystemConfig,
    scale: float = 1.0,
    seed: int = 1994,
    mols_per_proc: int = 4,
    time_steps: int = 3,
    neighbours: int = 4,
) -> list[list[Op]]:
    """Build one Water-like reference stream per processor."""
    n = cfg.n_procs
    mols_per_proc = scaled(mols_per_proc, scale, minimum=2)
    time_steps = scaled(time_steps, scale, minimum=1)
    n_mols = n * mols_per_proc

    layout = WorkloadLayout(cfg)
    space = layout.space()
    pos = space.alloc_page_aligned("positions", n_mols * POS_BLOCKS * BLOCK)
    force = space.alloc_page_aligned("forces", n_mols * BLOCK)
    locks = space.alloc_page_aligned("locks", n_mols * BLOCK)

    def pos_of(m: int) -> int:
        return pos + m * POS_BLOCKS * BLOCK

    def force_of(m: int) -> int:
        return force + m * BLOCK

    def lock_of(m: int) -> int:
        return locks + m * BLOCK

    out: list[list[Op]] = []
    for pid in range(n):
        sb = StreamBuilder(seed=seed * 29 + pid)
        owned = [pid * mols_per_proc + i for i in range(mols_per_proc)]
        # persistent cutoff neighbour set (spatial locality of MD)
        neigh = {
            m: sorted(
                sb.rng.randrange(n_mols)
                for _ in range(neighbours)
            )
            for m in owned
        }
        bar = 0
        for step in range(time_steps):
            for m in owned:
                for _ in range(INTERACTIONS):
                    j = sb.rng.choice(neigh[m])
                    # re-read the neighbour's position (high reuse)
                    for b in range(POS_BLOCKS):
                        sb.read(pos_of(j) + b * BLOCK)
                        sb.read(pos_of(j) + b * BLOCK + 8)
                    sb.think(26)
                    if sb.rng.random() < 0.06:
                        # accumulate into the neighbour's force record
                        # inside its critical section (migratory)
                        sb.acquire(lock_of(j))
                        sb.rmw(force_of(j), think=1)
                        sb.rmw(force_of(j) + 8, think=1)
                        sb.release(lock_of(j))
                # fold the own contribution
                sb.acquire(lock_of(m))
                sb.rmw(force_of(m), think=2)
                sb.release(lock_of(m))
            sb.barrier(bar)
            bar += 1
            # update phase: integrate positions of owned molecules
            for m in owned:
                sb.read(force_of(m))
                for b in range(POS_BLOCKS):
                    sb.read(pos_of(m) + b * BLOCK)
                    sb.write(pos_of(m) + b * BLOCK)
                sb.think(8)
            sb.barrier(bar)
            bar += 1
        out.append(sb.ops)
    return out
