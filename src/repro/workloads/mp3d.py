"""MP3D-like workload: particle simulation with migratory cells.

MP3D (SPLASH) moves particles through a discretized wind tunnel.  Its
dominant sharing pattern is the ``x := x + 1`` read-modify-write of
space-cell records by whichever processor's particle currently occupies
the cell -- textbook *migratory sharing* (paper §3.2: "In the case of
MP3D, migratory sharing is attributable to [read/write sequences on
shared variables]").  The result is a very high coherence miss rate
(~9 % of shared references, Table 2) and heavy memory traffic, making
MP3D the first application to saturate narrow mesh links (§5.3).

Synthetic structure, per time step and particle:

* read the particle record (4 consecutive blocks -- spatial locality
  that P exploits; cold in the first step),
* move the particle with a random walk over a 2-D cell grid and
  read-modify-write the destination cell block (migratory),
* write the particle record back (2 blocks),
* one barrier per time step.
"""

from __future__ import annotations

import math

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder, WorkloadLayout, scaled

#: particle record size in cache blocks
PARTICLE_BLOCKS = 3
#: cell grid edge at the paper's 16-processor machine
#: (cells = edge**2, one block per cell)
CELL_EDGE = 9


def cell_edge_for(n_procs: int) -> int:
    """Cell-grid edge for an ``n_procs`` machine.

    The paper's 9x9 tunnel matches 16 processors; larger machines grow
    the tunnel with ``sqrt(n/16)`` so the cells-per-processor density
    (and hence contention per cell) stays roughly constant instead of
    cramming 256 processors into 81 cells.  Machines up to 16
    processors keep the paper's grid exactly.
    """
    if n_procs <= 16:
        return CELL_EDGE
    return round(CELL_EDGE * math.sqrt(n_procs / 16))


def streams(
    cfg: SystemConfig,
    scale: float = 1.0,
    seed: int = 1994,
    particles_per_proc: int = 24,
    time_steps: int = 14,
) -> list[list[Op]]:
    """Build one MP3D-like reference stream per processor."""
    n = cfg.n_procs
    particles_per_proc = scaled(particles_per_proc, scale, minimum=4)
    time_steps = scaled(time_steps, scale, minimum=2)

    layout = WorkloadLayout(cfg)
    space = layout.space()
    page = cfg.cache.page_size
    cell_edge = cell_edge_for(n)
    n_cells = cell_edge * cell_edge
    # one page per cell *row*: cells along x are adjacent blocks (the
    # true-sharing spatial locality that lets P remove some of MP3D's
    # coherence misses, §3.1) while rows spread across home nodes
    cells_base = space.alloc_page_aligned("cells", cell_edge * page)
    particles_base = space.alloc_page_aligned(
        "particles", n * particles_per_proc * PARTICLE_BLOCKS * BLOCK
    )

    out: list[list[Op]] = []
    for pid in range(n):
        sb = StreamBuilder(seed=seed * 31 + pid)
        # particle cell positions, persistent across steps
        cell_pos = [
            sb.rng.randrange(n_cells) for _ in range(particles_per_proc)
        ]
        my_base = particles_base + (
            pid * particles_per_proc * PARTICLE_BLOCKS * BLOCK
        )
        for step in range(time_steps):
            for p in range(particles_per_proc):
                rec = my_base + p * PARTICLE_BLOCKS * BLOCK
                # read the particle record (sequential blocks)
                for b in range(PARTICLE_BLOCKS):
                    sb.read(rec + b * BLOCK)
                sb.read(rec + 8)
                sb.think(18)
                # random walk to a neighbouring cell, then collide:
                # read-modify-write the cell record (migratory)
                x, y = cell_pos[p] % cell_edge, cell_pos[p] // cell_edge
                x = (x + sb.rng.choice((-1, 0, 1))) % cell_edge
                y = (y + sb.rng.choice((-1, 0, 1))) % cell_edge
                cell_pos[p] = y * cell_edge + x
                cell_addr = (
                    cells_base
                    + (cell_pos[p] // cell_edge) * page
                    + (cell_pos[p] % cell_edge) * BLOCK
                )
                sb.rmw(cell_addr, think=8)
                # write back position and velocity (2 blocks)
                sb.write(rec)
                sb.write(rec + BLOCK)
                sb.think(14)
            sb.barrier(step)
        out.append(sb.ops)
    return out
