"""LU-like workload: blocked dense factorization.

LU (Stanford, 200x200 input in the paper) is a *direct* solution
method: the cold miss rate stays high throughout the run (paper §3.1:
"the cold miss rate does not necessarily decline with time ...
exemplified by LU and Cholesky") and data is accessed in long
block-sequential sweeps, which is exactly what adaptive sequential
prefetching exploits (Table 2: P cuts LU's cold miss rate from ~0.96 %
to ~0.22 %).  Coherence misses are comparatively rare (pivot-panel
reads), so CW helps LU little.

Synthetic structure: an ``nb x nb`` grid of matrix blocks (each
spanning several consecutive cache blocks), 2-D block-cyclic ownership
over a 4x4 processor grid, right-looking factorization:

* step k: the diagonal owner factors block (k,k);
* the owners of column-k / row-k panels update them against the
  diagonal block;
* every owner of a trailing block (i,j), i,j > k reads the pivot
  panels (i,k) and (k,j) and read-modify-writes its own block;
* barriers separate the phases.
"""

from __future__ import annotations

import math

from repro.config import SystemConfig
from repro.workloads.base import BLOCK, Op, StreamBuilder, WorkloadLayout, scaled

#: cache blocks per matrix block (a 256-byte sequential run -- the
#: spatial-locality granularity adaptive prefetching thrives on)
MBLOCK = 8


def _owner(i: int, j: int, n_procs: int) -> int:
    """2-D block-cyclic placement (4x4 grid when n_procs == 16)."""
    side = int(round(math.sqrt(n_procs)))
    if side * side == n_procs:
        return (i % side) * side + (j % side)
    return (i + j) % n_procs


def block_grid_for(nb: int, n_procs: int) -> int:
    """Matrix-block grid edge for an ``n_procs`` machine.

    The default 12x12 block grid keeps a 16-processor machine busy;
    larger machines grow the matrix with ``sqrt(n/16)`` (the standard
    weak-scaling rule for dense factorization: blocks-per-processor
    stays roughly constant) so 64/256 processors factor a bigger
    matrix instead of idling on the paper-sized one.  Machines up to
    16 processors keep the paper's grid exactly.
    """
    if n_procs <= 16:
        return nb
    return round(nb * math.sqrt(n_procs / 16))


def streams(
    cfg: SystemConfig,
    scale: float = 1.0,
    seed: int = 1994,
    nb: int = 12,
) -> list[list[Op]]:
    """Build one LU-like reference stream per processor."""
    n = cfg.n_procs
    nb = block_grid_for(scaled(nb, scale, minimum=6), n)

    layout = WorkloadLayout(cfg)
    space = layout.space()
    matrix = space.alloc_page_aligned("matrix", nb * nb * MBLOCK * BLOCK)
    # partial-pivoting exchange: one block every processor re-reads
    # after the diagonal owner rewrites it (LU's coherence misses)
    pivot_info = space.alloc_page_aligned("pivot_info", BLOCK)

    def blk(i: int, j: int) -> int:
        return matrix + (i * nb + j) * MBLOCK * BLOCK

    builders = [StreamBuilder(seed=seed * 17 + pid) for pid in range(n)]
    bar = 0
    for k in range(nb):
        # factor the diagonal block and publish the pivot choice
        diag_owner = _owner(k, k, n)
        sb = builders[diag_owner]
        for b in range(MBLOCK):
            addr = blk(k, k) + b * BLOCK
            sb.read(addr)
            sb.read(addr + 4)
            sb.write(addr)
            sb.think(12)
        sb.write(pivot_info)
        for b in builders:
            b.barrier(bar)
        bar += 1
        # every processor reads the pivot exchange information the
        # diagonal owner just rewrote (a coherence miss per step)
        for b in builders:
            b.read(pivot_info)
            b.think(4)
        # panel updates: column k and row k against the diagonal
        for i in range(k + 1, nb):
            for pi, pj in ((i, k), (k, i)):
                sb = builders[_owner(pi, pj, n)]
                for b in range(MBLOCK):
                    sb.read(blk(k, k) + b * BLOCK)
                for b in range(MBLOCK):
                    addr = blk(pi, pj) + b * BLOCK
                    sb.read(addr)
                    sb.read(addr + 8)
                    sb.write(addr)
                    sb.write(addr + 8)
                sb.think(16)
        for b in builders:
            b.barrier(bar)
        bar += 1
        # trailing-submatrix update
        for i in range(k + 1, nb):
            for j in range(k + 1, nb):
                sb = builders[_owner(i, j, n)]
                # read the two pivot panels (coherence misses: written
                # by their owners in the panel phase)
                for b in range(MBLOCK):
                    sb.read(blk(i, k) + b * BLOCK)
                for b in range(MBLOCK):
                    sb.read(blk(k, j) + b * BLOCK)
                # update the owned block in place: several references
                # per cache block, sequential across the matrix block
                for b in range(MBLOCK):
                    addr = blk(i, j) + b * BLOCK
                    sb.read(addr)
                    sb.read(addr + 8)
                    sb.read(addr + 16)
                    sb.write(addr)
                    sb.write(addr + 8)
                    sb.write(addr + 16)
                sb.think(24)
        for b in builders:
            b.barrier(bar)
        bar += 1
    return [b.ops for b in builders]
