"""The write cache of the competitive-update mechanism (paper §3.3).

A small direct-mapped cache that allocates blocks on *writes only* and
keeps a dirty/valid bit per 4-byte word.  Consecutive writes to the
same block are combined; at a release, or when a block is victimized,
the dirty words are sent to the home node in a single request
(selective-word transmission).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class WriteCacheEntry:
    """One write-cache block with per-word dirty bits."""

    block: int
    dirty_words: set[int] = field(default_factory=set)
    #: processor held an SLC copy when the entry was allocated; the
    #: home uses this to decide whether the flusher stays a sharer.
    had_copy: bool = False


class WriteCache:
    """Direct-mapped write-combining cache (default: four blocks)."""

    def __init__(self, n_blocks: int) -> None:
        if n_blocks < 1:
            raise ValueError("write cache needs at least one block")
        self._n_blocks = n_blocks
        self._entries: dict[int, WriteCacheEntry] = {}
        self.writes_combined = 0
        self.allocations = 0

    def _index(self, block: int) -> int:
        return block % self._n_blocks

    def lookup(self, block: int) -> WriteCacheEntry | None:
        """The entry for ``block`` if resident."""
        entry = self._entries.get(self._index(block))
        if entry is not None and entry.block == block:
            return entry
        return None

    def write(self, block: int, word: int, had_copy: bool) -> WriteCacheEntry | None:
        """Record a write; returns a victimized entry needing a flush.

        If ``block`` conflicts with a resident entry, that entry is
        removed and returned so the controller can flush it.
        """
        idx = self._index(block)
        entry = self._entries.get(idx)
        victim = None
        if entry is not None and entry.block != block:
            victim = entry
            entry = None
            del self._entries[idx]
        if entry is None:
            entry = WriteCacheEntry(block=block, had_copy=had_copy)
            self._entries[idx] = entry
            self.allocations += 1
        else:
            self.writes_combined += 1
        entry.dirty_words.add(word)
        return victim

    def remove(self, block: int) -> WriteCacheEntry | None:
        """Remove the entry for ``block`` (flush or invalidation)."""
        idx = self._index(block)
        entry = self._entries.get(idx)
        if entry is not None and entry.block == block:
            del self._entries[idx]
            return entry
        return None

    def drain(self) -> list[WriteCacheEntry]:
        """Remove and return all entries (release-time flush)."""
        entries = list(self._entries.values())
        self._entries.clear()
        return entries

    def __len__(self) -> int:
        return len(self._entries)
