"""Page-placement policies.

The paper allocates "memory pages of size 4 Kbytes across nodes in a
round-robin fashion based on the least significant bits of the virtual
page number" (§4).  Round-robin spreads home-node load but ignores
locality; the classic alternative in CC-NUMA systems of the era is
*first-touch*, which homes each page at the node that first references
it -- private data becomes node-local at the price of potential home
hot spots for shared structures.  Both policies are provided so the
placement choice can be studied (``repro.experiments.placement``).
"""

from __future__ import annotations


class RoundRobinPlacement:
    """§4's policy: page number modulo node count."""

    name = "round-robin"

    def __init__(self, n_nodes: int) -> None:
        self._n_nodes = n_nodes

    def home_of_page(self, page: int, toucher: int | None = None) -> int:
        """The home node of ``page`` (static)."""
        return page % self._n_nodes


class FirstTouchPlacement:
    """Home each page at the node that references it first.

    When no toucher is known (e.g. static analysis asking for a home
    before any access), the policy falls back to round-robin for that
    page without recording it.
    """

    name = "first-touch"

    def __init__(self, n_nodes: int) -> None:
        self._n_nodes = n_nodes
        self._table: dict[int, int] = {}

    def home_of_page(self, page: int, toucher: int | None = None) -> int:
        """The home node of ``page``, assigning it on first touch."""
        home = self._table.get(page)
        if home is not None:
            return home
        if toucher is None:
            return page % self._n_nodes
        self._table[page] = toucher
        return toucher

    @property
    def assigned_pages(self) -> int:
        """Pages with a recorded first toucher."""
        return len(self._table)

    def distribution(self) -> dict[int, int]:
        """Pages homed per node (hot-spot diagnostics)."""
        out: dict[int, int] = {}
        for home in self._table.values():
            out[home] = out.get(home, 0) + 1
        return out


def make_placement(kind: str, n_nodes: int):
    """Factory: ``"round_robin"`` or ``"first_touch"``."""
    if kind == "round_robin":
        return RoundRobinPlacement(n_nodes)
    if kind == "first_touch":
        return FirstTouchPlacement(n_nodes)
    raise ValueError(f"unknown page placement {kind!r}")
