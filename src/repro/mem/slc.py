"""Second-level cache (SLC) line store.

Paper §2: direct-mapped, write-back, lockup-free, maintains inclusion
over the FLC.  The default configuration is an *infinite* SLC (§4); the
bounded direct-mapped variant is used in the §5.4 sensitivity study.

This module stores lines and their per-line protocol metadata; the
protocol state machine itself lives in :mod:`repro.core.cache_ctrl`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.states import CacheState


@dataclass(slots=True)
class CacheLine:
    """One SLC line with the extension metadata of Table 1."""

    block: int
    state: CacheState
    #: P: brought in by a prefetch and not yet referenced (1 of the
    #: 2 extra bits per line; the second marks it counted as useful).
    prefetched: bool = False
    #: CW: competitive countdown.  Preset to the threshold on load and
    #: on every local access; an incoming update decrements it only if
    #: no local access intervened since the previous update ("if a
    #: number of global updates equal to the competitive threshold
    #: reach the cache with no intervening local access, the block is
    #: invalidated", §3.3) -- actively used copies survive.
    comp_count: int = 0
    #: CW: local access since the last update from home.
    accessed_since_update: bool = True
    #: CW+M: block written locally since the last update from home
    #: (the extra bit of §3.4).
    modified_since_update: bool = False


class SecondLevelCache:
    """Infinite or bounded direct-mapped SLC."""

    def __init__(self, size_bytes: int | None, block_size: int) -> None:
        self._infinite = size_bytes is None
        if size_bytes is not None:
            if size_bytes % block_size:
                raise ValueError("SLC size must be a multiple of block size")
            self._n_sets = size_bytes // block_size
        else:
            self._n_sets = 0
        #: key -> line; key is the block number (infinite) or set index.
        self._lines: dict[int, CacheLine] = {}

    @property
    def infinite(self) -> bool:
        """True for the paper's default infinite SLC."""
        return self._infinite

    def _key(self, block: int) -> int:
        return block if self._infinite else block % self._n_sets

    def lookup(self, block: int) -> CacheLine | None:
        """The valid line holding ``block``, or None."""
        line = self._lines.get(
            block if self._infinite else block % self._n_sets
        )
        if (
            line is not None
            and line.block == block
            and line.state is not CacheState.INVALID
        ):
            return line
        return None

    def insert(self, block: int, state: CacheState) -> tuple[CacheLine, CacheLine | None]:
        """Install ``block``; returns (new line, evicted valid line or None)."""
        if not state.is_valid:
            raise ValueError("cannot insert an INVALID line")
        key = self._key(block)
        victim = self._lines.get(key)
        if victim is not None and (victim.block == block or not victim.state.is_valid):
            victim = None
        line = CacheLine(block=block, state=state)
        self._lines[key] = line
        return line, victim

    def invalidate(self, block: int) -> CacheLine | None:
        """Invalidate ``block`` if present; returns the old line."""
        key = self._key(block)
        line = self._lines.get(key)
        if line is not None and line.block == block and line.state.is_valid:
            del self._lines[key]
            return line
        return None

    def resident_lines(self) -> list[CacheLine]:
        """All valid lines (for invariant checks and statistics)."""
        return [ln for ln in self._lines.values() if ln.state.is_valid]

    def __len__(self) -> int:
        return len(self.resident_lines())
