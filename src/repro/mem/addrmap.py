"""Address arithmetic: blocks, words, pages and home-node placement.

The shared address space is flat and byte-addressed.  Coherence operates
on 32-byte blocks; the write cache tracks dirty state per 4-byte word;
4-KB pages are allocated across nodes round-robin on the virtual page
number (paper §4).
"""

from __future__ import annotations

from dataclasses import dataclass

WORD_SIZE = 4


@dataclass(frozen=True)
class AddressMap:
    """Maps byte addresses to blocks, words, pages and home nodes."""

    block_size: int = 32
    page_size: int = 4096
    n_nodes: int = 16

    def block_of(self, addr: int) -> int:
        """Block number containing ``addr``."""
        return addr // self.block_size

    def block_base(self, block: int) -> int:
        """First byte address of ``block``."""
        return block * self.block_size

    def word_of(self, addr: int) -> int:
        """Word index (0..block_size/4-1) of ``addr`` within its block."""
        return (addr % self.block_size) // WORD_SIZE

    def words_per_block(self) -> int:
        """Number of 4-byte words per block."""
        return self.block_size // WORD_SIZE

    def page_of(self, addr: int) -> int:
        """Virtual page number of ``addr``."""
        return addr // self.page_size

    def home_of_block(self, block: int) -> int:
        """Home node of a block: round-robin page placement (§4)."""
        return (self.block_base(block) // self.page_size) % self.n_nodes

    def home_of(self, addr: int) -> int:
        """Home node of a byte address."""
        return self.home_of_block(self.block_of(addr))


class AddressSpace:
    """Bump allocator for laying out shared data structures.

    Workload generators carve the shared address space into named regions
    so that distinct data structures never share a cache block unless a
    workload deliberately asks for it (false-sharing experiments).
    """

    def __init__(self, amap: AddressMap, base: int = 0) -> None:
        self._amap = amap
        self._next = base
        self._regions: dict[str, tuple[int, int]] = {}

    def alloc(self, name: str, size: int, *, align: int | None = None) -> int:
        """Allocate ``size`` bytes aligned to ``align`` (default: block)."""
        if name in self._regions:
            raise ValueError(f"region {name!r} already allocated")
        if size <= 0:
            raise ValueError("size must be positive")
        align = align or self._amap.block_size
        if align & (align - 1):
            raise ValueError("alignment must be a power of two")
        base = (self._next + align - 1) & ~(align - 1)
        self._next = base + size
        self._regions[name] = (base, size)
        return base

    def alloc_page_aligned(self, name: str, size: int) -> int:
        """Allocate a region starting on a fresh page."""
        return self.alloc(name, size, align=self._amap.page_size)

    def region(self, name: str) -> tuple[int, int]:
        """(base, size) of a named region."""
        return self._regions[name]

    @property
    def highest_address(self) -> int:
        """One past the last allocated byte."""
        return self._next
