"""Memory-hierarchy substrates: address map, caches, write buffers."""

from repro.mem.addrmap import WORD_SIZE, AddressMap, AddressSpace

__all__ = ["AddressMap", "AddressSpace", "WORD_SIZE"]
