"""First- and second-level write buffers.

* The **FLWB** (§2) buffers writes (and, under RC, lets the processor
  run past them) in FIFO order between the write-through FLC and the
  SLC.  A full FLWB stalls the processor.

* The **SLWB** (§2) is the lockup-free SLC's bookkeeping for *pending
  global requests*: ownership requests, prefetches, write-cache
  flushes and releases.  Entries retire out of order when their
  transaction completes.  A full SLWB stops the FLWB drain, which in
  turn backpressures the processor.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum, auto
from typing import Any


class SlwbKind(Enum):
    """What a pending SLWB entry is waiting for."""

    READ = auto()       # demand read miss
    OWNERSHIP = auto()  # OWN_REQ / RDX_REQ pending
    PREFETCH = auto()   # P: non-binding prefetch in flight
    WC_FLUSH = auto()   # CW: write-cache flush awaiting WC_ACK
    SYNC = auto()       # acquire / release / barrier in flight


@dataclass(slots=True)
class FlwbEntry:
    """One buffered write (or synchronization marker) in the FLWB.

    Markers (``marker`` is not None) keep FIFO ordering between writes
    and releases/barriers but do not occupy a buffer entry.
    """

    addr: int
    issue_time: int
    marker: Any = None


class Flwb:
    """FIFO first-level write buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("FLWB needs at least one entry")
        self.capacity = capacity
        self._fifo: deque[FlwbEntry] = deque()
        self._writes = 0
        self.peak_occupancy = 0
        self.full_stalls = 0

    @property
    def full(self) -> bool:
        """True when a new write cannot be accepted."""
        return self._writes >= self.capacity

    def push(self, entry: FlwbEntry) -> None:
        """Append an entry; caller checks :attr:`full` for writes."""
        if entry.marker is None:
            if self.full:
                raise OverflowError("FLWB overflow")
            self._writes += 1
            if self._writes > self.peak_occupancy:
                self.peak_occupancy = self._writes
        self._fifo.append(entry)

    def pop(self) -> FlwbEntry:
        """Remove and return the oldest entry."""
        entry = self._fifo.popleft()
        if entry.marker is None:
            self._writes -= 1
        return entry

    def peek(self) -> FlwbEntry:
        """The oldest entry without removing it."""
        return self._fifo[0]

    def contains_write_to(self, addr: int) -> bool:
        """True if a buffered write targets this exact address
        (store-to-load forwarding lookup)."""
        for entry in self._fifo:
            if entry.marker is None and entry.addr == addr:
                return True
        return False

    @property
    def empty(self) -> bool:
        """True when nothing (writes or markers) is buffered."""
        return not self._fifo

    def __len__(self) -> int:
        return self._writes


class Slwb:
    """Out-of-order second-level write buffer (pending-request table)."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("SLWB needs at least one entry")
        self.capacity = capacity
        self._entries: dict[int, SlwbKind] = {}
        self._next_id = 0
        self.peak_occupancy = 0
        self.full_rejections = 0

    @property
    def full(self) -> bool:
        """True when no entry is free."""
        return len(self._entries) >= self.capacity

    def has_room(self, n: int = 1) -> bool:
        """True when at least ``n`` entries are free."""
        return len(self._entries) + n <= self.capacity

    def alloc(self, kind: SlwbKind) -> int:
        """Allocate an entry; returns its id.  Caller checks room first."""
        entries = self._entries
        if len(entries) >= self.capacity:
            self.full_rejections += 1
            raise OverflowError("SLWB overflow")
        eid = self._next_id
        self._next_id = eid + 1
        entries[eid] = kind
        occupancy = len(entries)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        return eid

    def release(self, eid: int) -> SlwbKind:
        """Retire entry ``eid``; returns its kind."""
        return self._entries.pop(eid)

    def count(self, kind: SlwbKind | None = None) -> int:
        """Number of pending entries (optionally of one kind)."""
        if kind is None:
            return len(self._entries)
        return sum(1 for k in self._entries.values() if k is kind)

    def __len__(self) -> int:
        return len(self._entries)
