"""First-level cache (FLC).

Paper §2: direct-mapped, write-through, no allocation on write misses,
blocking on read misses.  Only presence is tracked -- data values are
not simulated.  Inclusion with the SLC is enforced from the outside
(the SLC controller invalidates FLC lines when SLC lines leave).
"""

from __future__ import annotations


class FirstLevelCache:
    """Direct-mapped presence-only first-level cache."""

    def __init__(self, size_bytes: int, block_size: int) -> None:
        if size_bytes % block_size:
            raise ValueError("FLC size must be a multiple of the block size")
        self._n_sets = size_bytes // block_size
        #: set index -> resident block number
        self._sets: dict[int, int] = {}

    @property
    def n_sets(self) -> int:
        """Number of direct-mapped sets."""
        return self._n_sets

    def _index(self, block: int) -> int:
        return block % self._n_sets

    def lookup(self, block: int) -> bool:
        """True if ``block`` is resident."""
        return self._sets.get(self._index(block)) == block

    def fill(self, block: int) -> int | None:
        """Install ``block``; returns the evicted block, if any."""
        idx = self._index(block)
        victim = self._sets.get(idx)
        self._sets[idx] = block
        return victim if victim is not None and victim != block else None

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident; returns True if it was."""
        idx = self._index(block)
        if self._sets.get(idx) == block:
            del self._sets[idx]
            return True
        return False

    def resident_blocks(self) -> set[int]:
        """All blocks currently resident (for invariant checks)."""
        return set(self._sets.values())
