"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run``         -- simulate one (application, protocol) pair and
  print the execution-time decomposition and miss rates,
* ``compare``     -- run several protocols on one application and
  print a ranking table,
* ``analyze``     -- static sharing-pattern census of a workload,
* ``trace``       -- dump a workload's reference streams to a trace
  file (or simulate from an existing trace file),
* ``bench``       -- benchmark regression harness (events/sec over a
  fixed workload x protocol matrix, JSON artifacts),
* ``experiments`` -- dispatch to the table/figure drivers,
* ``serve``       -- run the sweep service (HTTP API over the engine),
* ``submit``      -- send a sweep to a running service and print the
  ranking when it completes,
* ``verify``      -- protocol verification: bounded model checking
  (``verify model``), seeded invariant fuzzing (``verify fuzz``) and
  the static extension-metadata lint (``verify registry``).
"""

from __future__ import annotations

import argparse
import sys

from repro.config import (
    ALL_PROTOCOLS,
    Consistency,
    DirectoryConfig,
    NetworkConfig,
    NetworkKind,
    SystemConfig,
)
from repro.experiments.formats import render_table
from repro.experiments.runner import add_sweep_args
from repro.sweep import DEFAULT_SEED
from repro.system import System
from repro.workloads import ALL_APP_NAMES, build_workload


def _protocol_arg(args) -> str:
    """The requested protocol combination.

    ``--extensions`` accepts any combination of registered extensions
    ("p,m,cw", "PF+M", ...) and takes precedence over ``--protocol``,
    whose choices are limited to the paper's eight combinations.
    """
    return getattr(args, "extensions", None) or args.protocol


def _parse_mesh_dims(text: str) -> tuple[int, int]:
    """Parse a ``WxH`` mesh-dimension argument (e.g. ``8x2``)."""
    try:
        w, h = (int(part) for part in text.lower().split("x"))
        return w, h
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected WxH (e.g. 8x2), got {text!r}"
        ) from None


def _network_arg(args) -> NetworkConfig | None:
    """The NetworkConfig described by ``--mesh`` / ``--mesh-dims``."""
    dims = getattr(args, "mesh_dims", None)
    if getattr(args, "mesh", None):
        return NetworkConfig(
            kind=NetworkKind.MESH, link_width_bits=args.mesh, mesh_dims=dims,
        )
    if dims:
        return NetworkConfig(kind=NetworkKind.MESH, mesh_dims=dims)
    return None


def _directory_arg(args) -> DirectoryConfig:
    return DirectoryConfig.from_name(getattr(args, "directory", None)
                                     or "full_map")


def _make_config(args) -> SystemConfig:
    return SystemConfig(
        n_procs=args.procs,
        consistency=Consistency(args.consistency),
        network=_network_arg(args) or NetworkConfig(),
        directory=_directory_arg(args),
    ).with_protocol(_protocol_arg(args))


def _summary_rows(summary):
    """Render rows from the one true digest (RunSummary.to_dict)."""
    d = summary.to_dict()
    return [
        ("execution time (pclocks)", d["execution_time"]),
        ("busy %", 100 * d["busy_fraction"]),
        ("read stall %", 100 * d["read_stall_fraction"]),
        ("write stall %", 100 * d["write_stall_fraction"]),
        ("acquire stall %", 100 * d["acquire_stall_fraction"]),
        ("release stall %", 100 * d["release_stall_fraction"]),
        ("cold miss %", d["cold_miss_rate"]),
        ("coherence miss %", d["coherence_miss_rate"]),
        ("replacement miss %", d["replacement_miss_rate"]),
        ("network bytes", d["network_bytes"]),
    ]


def cmd_run(args) -> int:
    """Simulate one configuration and print the summary."""
    cfg = _make_config(args)
    backend = getattr(args, "backend", "event")
    if args.trace_file:
        if backend != "event":
            print("--trace-file drives the event engine directly; "
                  "drop --backend", file=sys.stderr)
            return 2
        from repro.trace import load_streams

        streams = load_streams(args.trace_file)

        def simulate():
            return System(cfg).run(streams)
    else:
        from repro.sweep import RunSpec, SweepEngine

        spec = RunSpec.for_run(
            args.app,
            protocol=_protocol_arg(args),
            consistency=Consistency(args.consistency),
            network=_network_arg(args),
            n_procs=args.procs,
            scale=args.scale,
            directory=_directory_arg(args),
            backend=backend,
        )
        engine = SweepEngine()

        def simulate():
            stats = engine.run_one(spec).stats
            if getattr(args, "verbose", False):
                digest = engine.last_run_stats() or {}
                print(
                    "[run] wall={wall_time:.3f}s sim_time={sim_time:.3f}s "
                    "sim={sim} cache={cache} dedup={dedup} "
                    "hot_hits={hot_hits}".format(**digest),
                    file=sys.stderr, flush=True,
                )
            return stats

    if args.profile or args.profile_out:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        stats = simulate()
        profiler.disable()
    else:
        stats = simulate()
    from repro.api import RunSummary

    summary = RunSummary.from_stats(args.app, cfg, stats)
    title = f"{args.app} / {cfg.protocol.name} / {cfg.consistency.value}"
    print(render_table(
        ("metric", "value"), _summary_rows(summary), title=title
    ))
    if args.profile or args.profile_out:
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"wrote pstats dump to {args.profile_out}")
    return 0


def cmd_bench(args) -> int:
    """Run the benchmark regression harness."""
    from repro.bench import run_bench

    return run_bench(args)


def cmd_compare(args) -> int:
    """Rank protocols on one application (through the sweep engine)."""
    from repro.experiments.runner import engine_from_args, print_sweep_summary
    from repro.sweep import RunSpec

    network = _network_arg(args)
    combos = args.extensions or args.protocols
    specs = [
        RunSpec.for_run(
            args.app,
            protocol=proto,
            consistency=Consistency(args.consistency),
            network=network,
            n_procs=args.procs,
            scale=args.scale,
            seed=args.seed,
            directory=_directory_arg(args),
            backend=getattr(args, "backend", "event"),
        )
        for proto in combos
    ]
    engine = engine_from_args(args)
    results = engine.run(specs)
    base = results[0].execution_time
    rows = [
        (
            res.protocol,
            res.execution_time / base,
            res.stats.miss_rate("cold"),
            res.stats.miss_rate("coherence"),
            res.stats.network.bytes,
        )
        for res in results
    ]
    rows.sort(key=lambda r: r[1])
    print(render_table(
        ("protocol", "rel. time", "cold %", "coh %", "net bytes"),
        rows,
        title=f"{args.app} ({args.consistency}, scale {args.scale})",
    ))
    print_sweep_summary(engine)
    return 0


def cmd_list_extensions(args) -> int:
    """Print the protocol-extension registry."""
    from repro.core.extensions import registered_extensions

    rows = [
        (
            info.name,
            info.order,
            info.description,
            info.config_cls.__name__ if info.config_cls else "-",
            ",".join(sorted(info.conflicts)) or "-",
        )
        for info in registered_extensions()
    ]
    print(render_table(
        ("name", "order", "description", "config", "conflicts"),
        rows,
        title="registered protocol extensions (pipeline order)",
    ))
    return 0


def cmd_analyze(args) -> int:
    """Sharing-pattern census of a workload."""
    from repro.mem.addrmap import AddressMap
    from repro.stats.sharing import Pattern, analyze

    cfg = SystemConfig(n_procs=args.procs)
    streams = build_workload(args.app, cfg, scale=args.scale)
    profile = analyze(streams, AddressMap(n_nodes=cfg.n_procs))
    census = profile.census()
    rows = [
        (
            pattern.value,
            census.get(pattern, 0),
            100 * profile.fraction_of_refs(pattern),
        )
        for pattern in Pattern
    ]
    print(render_table(
        ("pattern", "blocks", "% of refs"),
        rows,
        title=f"sharing census of {args.app}",
    ))
    return 0


def cmd_trace(args) -> int:
    """Dump a workload's reference streams to a trace file."""
    from repro.trace import save_streams

    cfg = SystemConfig(n_procs=args.procs)
    streams = build_workload(args.app, cfg, scale=args.scale)
    save_streams(streams, args.out)
    total = sum(len(s) for s in streams)
    print(f"wrote {total} ops for {len(streams)} processors to {args.out}")
    return 0


def cmd_serve(args) -> int:
    """Run the sweep service until interrupted."""
    import os

    from repro.service import create_service
    from repro.sweep import default_cache_dir

    if args.trace_dir:
        # worker processes inherit the environment across spawn, so
        # this one override configures every replay-backend cell
        from repro.sim.backend import TRACE_DIR_ENV

        os.environ[TRACE_DIR_ENV] = args.trace_dir
    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    service = create_service(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        max_cache_bytes=args.max_cache_bytes,
        max_cache_entries=args.max_cache_entries,
        jobs=args.jobs,
        verbose=args.verbose,
        pool=args.pool,
        hot_cache_entries=args.hot_cache_entries,
    )
    print(
        f"repro sweep service on {service.url} "
        f"(cache: {cache_dir or 'off'}, jobs: {args.jobs})",
        file=sys.stderr, flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0


def cmd_submit(args) -> int:
    """Send one sweep to a running service; print the ranking."""
    from repro.service import ServiceClient, ServiceError
    from repro.sweep import RunSpec

    network = _network_arg(args)
    combos = args.extensions or args.protocols
    specs = [
        RunSpec.for_run(
            args.app,
            protocol=proto,
            consistency=Consistency(args.consistency),
            network=network,
            n_procs=args.procs,
            scale=args.scale,
            seed=args.seed,
            directory=_directory_arg(args),
            backend=getattr(args, "backend", "event"),
        )
        for proto in combos
    ]
    client = ServiceClient(args.url)
    try:
        sweep_id = client.submit(specs)
        print(f"submitted {len(specs)} cells as {sweep_id} to {args.url}",
              file=sys.stderr, flush=True)
        job = client.wait_for(sweep_id, timeout=args.timeout)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if job["state"] == "failed":
        print(f"sweep failed: {job['error']}", file=sys.stderr)
        return 1
    summaries = [c["summary"] for c in job["results"]]
    base = summaries[0]["execution_time"]
    rows = [
        (
            s["protocol"],
            s["execution_time"] / base,
            s["cold_miss_rate"],
            s["coherence_miss_rate"],
            s["network_bytes"],
        )
        for s in summaries
    ]
    rows.sort(key=lambda r: r[1])
    print(render_table(
        ("protocol", "rel. time", "cold %", "coh %", "net bytes"),
        rows,
        title=f"{args.app} ({args.consistency}, scale {args.scale})",
    ))
    src = job["sources"]
    print(
        f"[service] cells={job['cells']} sim={src['sim']} "
        f"cache={src['cache']} dedup={src['dedup']}",
        file=sys.stderr, flush=True,
    )
    return 0


def _stderr_progress(msg: str) -> None:
    print(msg, file=sys.stderr, flush=True)


def cmd_verify_model(args) -> int:
    """Bounded model checking: one combo, or the registry matrix."""
    from repro.verify import (
        VerifyConfig,
        check_model,
        matrix_configs,
        verify_matrix,
    )

    progress = _stderr_progress if args.progress else None
    if args.extensions:
        cfg = VerifyConfig(
            n_nodes=args.nodes,
            n_blocks=args.blocks,
            depth=args.depth,
            extensions=args.extensions,
            directory=args.directory or "full_map",
            consistency=Consistency(args.consistency or "RC"),
            max_states=args.max_states,
            symmetry=not args.no_symmetry,
        )
        results = [check_model(cfg, progress=progress)]
        show_coverage = not args.no_coverage
    else:
        kw = {}
        if args.directory:
            kw["directories"] = (args.directory,)
        if args.consistency:
            kw["consistencies"] = (Consistency(args.consistency),)
        configs = matrix_configs(
            n_nodes=args.nodes,
            n_blocks=args.blocks,
            depth=args.depth,
            max_states=args.max_states,
            symmetry=not args.no_symmetry,
            **kw,
        )
        results = verify_matrix(configs, progress=progress)
        show_coverage = args.coverage
    for res in results:
        print(res.summary())
        if show_coverage:
            for line in res.coverage.report_lines():
                print(f"  {line}")
    failures = [res for res in results if not res.ok]
    for res in failures:
        print()
        print(res.violation.describe())
    checked = len(results)
    states = sum(res.explored for res in results)
    print(
        f"verify model: {checked} config(s), {states} states, "
        f"{len(failures)} violation(s)"
    )
    return 1 if failures else 0


def cmd_verify_fuzz(args) -> int:
    """Seeded long-run invariant fuzzing with shrinking."""
    from repro.verify import run_fuzz

    result = run_fuzz(
        seed=args.seed,
        trials=args.trials,
        nops=args.ops,
        max_events=args.max_events,
        shrink=not args.no_shrink,
        progress=_stderr_progress,
    )
    if result.ok:
        print(
            f"verify fuzz: {result.trials} trial(s) ok "
            f"(seed {args.seed}, {args.ops} ops/proc)"
        )
        return 0
    for failure in result.failures:
        cfg = failure.config
        print(
            f"trial {failure.trial} FAILED (seed {failure.seed}): "
            f"{failure.error}"
        )
        print(
            f"  config: {cfg.protocol.name} / {cfg.directory.name} / "
            f"{cfg.consistency.value}, {cfg.n_procs} procs"
        )
        for pid, stream in enumerate(failure.streams):
            if len(stream) > 1:
                print(f"  proc {pid}: {stream}")
    return 1


def cmd_verify_registry(args) -> int:
    """Static lint of the extension registry's metadata."""
    from repro.core.extensions import (
        RegistryError,
        registered_extensions,
        validate_registry,
    )

    try:
        validate_registry()
    except RegistryError as exc:
        print(exc)
        return 1
    infos = registered_extensions()
    rows = [
        (
            info.name,
            info.order,
            ",".join(sorted(info.conflicts)) or "-",
            ",".join(sorted(info.traits)) or "-",
        )
        for info in infos
    ]
    print(render_table(
        ("name", "order", "conflicts", "traits"),
        rows,
        title=f"registry ok: {len(infos)} extensions, metadata consistent",
    ))
    return 0


def cmd_experiments(args) -> int:
    """Dispatch to a table/figure driver."""
    from repro.experiments import (
        figure2, figure3, figure4, placement, report, scaling,
        sensitivity, table1, table2, table3,
    )

    drivers = {
        "table1": table1,
        "figure2": figure2,
        "table2": table2,
        "figure3": figure3,
        "table3": table3,
        "figure4": figure4,
        "sensitivity": sensitivity,
        "scaling": scaling,
        "placement": placement,
        "report": report,
    }
    driver = drivers[args.name]
    extra = []
    if args.name != "table1":
        extra += ["--scale", str(args.scale)]
        extra += ["--jobs", str(args.jobs), "--seed", str(args.seed)]
        if args.cache_dir:
            extra += ["--cache-dir", args.cache_dir]
        if args.no_cache:
            extra.append("--no-cache")
        if args.progress:
            extra.append("--progress")
    if args.name == "scaling":
        if args.sizes:
            extra += ["--sizes", args.sizes]
        if args.directories:
            extra += ["--directories", args.directories]
        if args.app:
            extra += ["--app", args.app]
    driver.main(extra)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulator for 'Combined Performance Gains of Simple Cache "
            "Protocol Extensions' (ISCA 1994)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, protocol=True, multi=False):
        p.add_argument("--app", choices=ALL_APP_NAMES, default="mp3d")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--procs", type=int, default=16)
        if protocol:
            p.add_argument("--protocol", choices=ALL_PROTOCOLS, default="BASIC")
            p.add_argument(
                "--extensions", metavar="COMBO", nargs="+" if multi else None,
                help=(
                    "extension combination(s), e.g. 'p,m,cw' or 'PF+M'; "
                    "accepts any registered extension (see "
                    "list-extensions) and overrides --protocol(s)"
                ),
            )
            p.add_argument(
                "--consistency", choices=("RC", "SC"), default="RC"
            )
            p.add_argument(
                "--mesh", type=int, metavar="LINK_BITS",
                help="use a wormhole mesh with this link width",
            )
            p.add_argument(
                "--mesh-dims", type=_parse_mesh_dims, metavar="WxH",
                help=(
                    "explicit mesh dimensions (e.g. 8x2); implies a "
                    "mesh; default: squarest factoring of --procs"
                ),
            )
            p.add_argument(
                "--directory", metavar="ORG", default="full_map",
                help=(
                    "directory organization: full_map, limited[:i] "
                    "(Dir_i-B) or coarse[:k] (default: %(default)s)"
                ),
            )
            p.add_argument(
                "--backend", choices=("event", "specialized", "replay"),
                default="event",
                help=(
                    "execution backend: event (reference), specialized "
                    "(compiled dispatch, counter-exact) or replay "
                    "(trace fast tier, documented tolerances; see "
                    "docs/engine.md)"
                ),
            )

    p_run = sub.add_parser("run", help="simulate one configuration")
    common(p_run)
    p_run.add_argument(
        "--trace-file", help="drive the run from a trace file instead"
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="profile the run and print the top 25 cumulative entries",
    )
    p_run.add_argument(
        "--profile-out", metavar="FILE",
        help="write the profile as a pstats dump (implies --profile)",
    )
    p_run.add_argument(
        "--verbose", action="store_true",
        help="print the engine's timing digest (wall, sim time, cell "
             "sources) on stderr",
    )
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser(
        "bench", help="benchmark regression harness (events/sec matrix)"
    )
    from repro.bench import add_bench_args

    add_bench_args(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_cmp = sub.add_parser("compare", help="rank protocols on one app")
    common(p_cmp, multi=True)
    p_cmp.add_argument(
        "--protocols", nargs="+", default=list(ALL_PROTOCOLS),
        choices=ALL_PROTOCOLS,
    )
    add_sweep_args(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_ls = sub.add_parser(
        "list-extensions", help="print the protocol-extension registry"
    )
    p_ls.set_defaults(fn=cmd_list_extensions)

    p_an = sub.add_parser("analyze", help="sharing-pattern census")
    common(p_an, protocol=False)
    p_an.set_defaults(fn=cmd_analyze)

    p_tr = sub.add_parser("trace", help="dump reference streams to a file")
    common(p_tr, protocol=False)
    p_tr.add_argument("--out", required=True)
    p_tr.set_defaults(fn=cmd_trace)

    p_srv = sub.add_parser(
        "serve", help="run the sweep service (HTTP API over the engine)"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8484)
    p_srv.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per sweep (1 = serial, the default)",
    )
    p_srv.add_argument(
        "--pool", choices=("persistent", "per-run"), default="persistent",
        help="process-pool flavor for --jobs > 1: one warm pool reused "
             "across jobs, or a fresh pool per sweep "
             "(default: %(default)s)",
    )
    p_srv.add_argument(
        "--hot-cache-entries", type=int, default=512, metavar="N",
        help="in-memory hot tier in front of the result cache; 0 "
             "disables it (default: %(default)s)",
    )
    p_srv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             ".repro-cache)",
    )
    p_srv.add_argument(
        "--no-cache", action="store_true",
        help="serve without a result cache (always simulate)",
    )
    p_srv.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="BYTES",
        help="LRU-evict the cache above this many bytes",
    )
    p_srv.add_argument(
        "--max-cache-entries", type=int, default=None, metavar="N",
        help="LRU-evict the cache above this many entries",
    )
    p_srv.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )
    p_srv.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help=(
            "where replay-backend cells keep recorded reference "
            "traces (default: $REPRO_TRACE_DIR or .repro/traces)"
        ),
    )
    p_srv.set_defaults(fn=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="send a sweep to a running service"
    )
    common(p_sub, multi=True)
    p_sub.add_argument(
        "--url", default="http://127.0.0.1:8484",
        help="service base URL (default: %(default)s)",
    )
    p_sub.add_argument(
        "--protocols", nargs="+", default=list(ALL_PROTOCOLS),
        choices=ALL_PROTOCOLS,
    )
    p_sub.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p_sub.add_argument(
        "--timeout", type=float, default=3600.0,
        help="seconds to wait for the sweep to finish",
    )
    p_sub.set_defaults(fn=cmd_submit)

    p_ver = sub.add_parser(
        "verify",
        help="protocol verification (model checker / fuzzer / registry)",
    )
    vsub = p_ver.add_subparsers(dest="verify_command", required=True)

    p_vm = vsub.add_parser(
        "model",
        help="bounded model checking of small configurations",
        description=(
            "Exhaustively explore every interleaving of a small op "
            "alphabet on a tiny machine, asserting the coherence "
            "invariants at every visited state.  With --extensions, "
            "check that one combination; without it, sweep the full "
            "registry cross-product of conflict-free combinations x "
            "directory organizations x consistency models."
        ),
    )
    p_vm.add_argument("--nodes", type=int, default=2, metavar="N",
                      help="nodes in the model (default: %(default)s)")
    p_vm.add_argument("--blocks", type=int, default=1, metavar="N",
                      help="logical blocks (default: %(default)s)")
    p_vm.add_argument("--depth", type=int, default=4, metavar="N",
                      help="op-sequence depth bound (default: %(default)s)")
    p_vm.add_argument(
        "--extensions", metavar="COMBO",
        help=(
            "extension combination to check ('p,cw,m', 'PF+M', ...); "
            "omit to sweep the full registry cross-product"
        ),
    )
    p_vm.add_argument(
        "--directory", metavar="ORG",
        help=(
            "directory organization: full_map, limited[:i] or "
            "coarse[:k] (default: full_map; matrix mode sweeps "
            "full_map, limited:1 and coarse:2)"
        ),
    )
    p_vm.add_argument(
        "--consistency", choices=("RC", "SC"),
        help="consistency model (default: RC; matrix mode sweeps both)",
    )
    p_vm.add_argument(
        "--max-states", type=int, default=50_000, metavar="N",
        help="stop after this many canonical states (default: %(default)s)",
    )
    p_vm.add_argument(
        "--no-symmetry", action="store_true",
        help="disable state dedup modulo node renaming",
    )
    p_vm.add_argument(
        "--coverage", action="store_true",
        help="print the full coverage listing per matrix combo",
    )
    p_vm.add_argument(
        "--no-coverage", action="store_true",
        help="suppress the coverage listing in single-combo mode",
    )
    p_vm.add_argument(
        "--progress", action="store_true",
        help="report exploration progress on stderr",
    )
    p_vm.set_defaults(fn=cmd_verify_model)

    p_vf = vsub.add_parser(
        "fuzz",
        help="seeded long-run invariant fuzzing",
        description=(
            "Run long random reference streams on randomized machine "
            "configurations; failures are shrunk by greedy stream "
            "deletion and reported as replayable reproductions."
        ),
    )
    p_vf.add_argument("--seed", type=int, default=0,
                      help="campaign seed (default: %(default)s)")
    p_vf.add_argument("--trials", type=int, default=5, metavar="N",
                      help="randomized trials (default: %(default)s)")
    p_vf.add_argument("--ops", type=int, default=5000, metavar="N",
                      help="ops per processor stream (default: %(default)s)")
    p_vf.add_argument(
        "--max-events", type=int, default=80_000_000, metavar="N",
        help="per-trial simulator event budget (default: %(default)s)",
    )
    p_vf.add_argument(
        "--no-shrink", action="store_true",
        help="report failures without shrinking them",
    )
    p_vf.set_defaults(fn=cmd_verify_fuzz)

    p_vr = vsub.add_parser(
        "registry",
        help="static lint of the extension registry's metadata",
    )
    p_vr.set_defaults(fn=cmd_verify_registry)

    p_ex = sub.add_parser("experiments", help="run a table/figure driver")
    p_ex.add_argument(
        "name",
        choices=(
            "table1", "figure2", "table2", "figure3", "table3",
            "figure4", "sensitivity", "scaling", "placement", "report",
        ),
    )
    p_ex.add_argument("--scale", type=float, default=1.0)
    p_ex.add_argument(
        "--sizes", default=None, metavar="N,N,...",
        help="(scaling) comma-separated processor counts",
    )
    p_ex.add_argument(
        "--directories", default=None, metavar="ORG,ORG,...",
        help="(scaling) comma-separated directory organizations",
    )
    p_ex.add_argument(
        "--app", default=None, choices=ALL_APP_NAMES,
        help="(scaling) application to scale",
    )
    add_sweep_args(p_ex)
    p_ex.set_defaults(fn=cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
