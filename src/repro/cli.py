"""Command-line interface: ``python -m repro <subcommand>``.

Subcommands:

* ``run``         -- simulate one (application, protocol) pair and
  print the execution-time decomposition and miss rates,
* ``compare``     -- run several protocols on one application and
  print a ranking table,
* ``analyze``     -- static sharing-pattern census of a workload,
* ``trace``       -- dump a workload's reference streams to a trace
  file (or simulate from an existing trace file),
* ``bench``       -- benchmark regression harness (events/sec over a
  fixed workload x protocol matrix, JSON artifacts),
* ``experiments`` -- dispatch to the table/figure drivers,
* ``serve``       -- run the sweep service (HTTP API over the engine),
* ``submit``      -- send a sweep to a running service and print the
  ranking when it completes.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import (
    ALL_PROTOCOLS,
    Consistency,
    DirectoryConfig,
    NetworkConfig,
    NetworkKind,
    SystemConfig,
)
from repro.experiments.formats import render_table
from repro.experiments.runner import add_sweep_args
from repro.sweep import DEFAULT_SEED
from repro.system import System
from repro.workloads import ALL_APP_NAMES, build_workload


def _protocol_arg(args) -> str:
    """The requested protocol combination.

    ``--extensions`` accepts any combination of registered extensions
    ("p,m,cw", "PF+M", ...) and takes precedence over ``--protocol``,
    whose choices are limited to the paper's eight combinations.
    """
    return getattr(args, "extensions", None) or args.protocol


def _parse_mesh_dims(text: str) -> tuple[int, int]:
    """Parse a ``WxH`` mesh-dimension argument (e.g. ``8x2``)."""
    try:
        w, h = (int(part) for part in text.lower().split("x"))
        return w, h
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected WxH (e.g. 8x2), got {text!r}"
        ) from None


def _network_arg(args) -> NetworkConfig | None:
    """The NetworkConfig described by ``--mesh`` / ``--mesh-dims``."""
    dims = getattr(args, "mesh_dims", None)
    if getattr(args, "mesh", None):
        return NetworkConfig(
            kind=NetworkKind.MESH, link_width_bits=args.mesh, mesh_dims=dims,
        )
    if dims:
        return NetworkConfig(kind=NetworkKind.MESH, mesh_dims=dims)
    return None


def _directory_arg(args) -> DirectoryConfig:
    return DirectoryConfig.from_name(getattr(args, "directory", None)
                                     or "full_map")


def _make_config(args) -> SystemConfig:
    return SystemConfig(
        n_procs=args.procs,
        consistency=Consistency(args.consistency),
        network=_network_arg(args) or NetworkConfig(),
        directory=_directory_arg(args),
    ).with_protocol(_protocol_arg(args))


def _summary_rows(summary):
    """Render rows from the one true digest (RunSummary.to_dict)."""
    d = summary.to_dict()
    return [
        ("execution time (pclocks)", d["execution_time"]),
        ("busy %", 100 * d["busy_fraction"]),
        ("read stall %", 100 * d["read_stall_fraction"]),
        ("write stall %", 100 * d["write_stall_fraction"]),
        ("acquire stall %", 100 * d["acquire_stall_fraction"]),
        ("release stall %", 100 * d["release_stall_fraction"]),
        ("cold miss %", d["cold_miss_rate"]),
        ("coherence miss %", d["coherence_miss_rate"]),
        ("replacement miss %", d["replacement_miss_rate"]),
        ("network bytes", d["network_bytes"]),
    ]


def cmd_run(args) -> int:
    """Simulate one configuration and print the summary."""
    cfg = _make_config(args)
    if args.trace_file:
        from repro.trace import load_streams

        streams = load_streams(args.trace_file)
    else:
        streams = build_workload(args.app, cfg, scale=args.scale)
    system = System(cfg)
    if args.profile or args.profile_out:
        import cProfile
        import pstats

        profiler = cProfile.Profile()
        profiler.enable()
        stats = system.run(streams)
        profiler.disable()
    else:
        stats = system.run(streams)
    from repro.api import RunSummary

    summary = RunSummary.from_stats(args.app, cfg, stats)
    title = f"{args.app} / {cfg.protocol.name} / {cfg.consistency.value}"
    print(render_table(
        ("metric", "value"), _summary_rows(summary), title=title
    ))
    if args.profile or args.profile_out:
        pstats.Stats(profiler).sort_stats("cumulative").print_stats(25)
        if args.profile_out:
            profiler.dump_stats(args.profile_out)
            print(f"wrote pstats dump to {args.profile_out}")
    return 0


def cmd_bench(args) -> int:
    """Run the benchmark regression harness."""
    from repro.bench import run_bench

    return run_bench(args)


def cmd_compare(args) -> int:
    """Rank protocols on one application (through the sweep engine)."""
    from repro.experiments.runner import engine_from_args, print_sweep_summary
    from repro.sweep import RunSpec

    network = _network_arg(args)
    combos = args.extensions or args.protocols
    specs = [
        RunSpec.for_run(
            args.app,
            protocol=proto,
            consistency=Consistency(args.consistency),
            network=network,
            n_procs=args.procs,
            scale=args.scale,
            seed=args.seed,
            directory=_directory_arg(args),
        )
        for proto in combos
    ]
    engine = engine_from_args(args)
    results = engine.run(specs)
    base = results[0].execution_time
    rows = [
        (
            res.protocol,
            res.execution_time / base,
            res.stats.miss_rate("cold"),
            res.stats.miss_rate("coherence"),
            res.stats.network.bytes,
        )
        for res in results
    ]
    rows.sort(key=lambda r: r[1])
    print(render_table(
        ("protocol", "rel. time", "cold %", "coh %", "net bytes"),
        rows,
        title=f"{args.app} ({args.consistency}, scale {args.scale})",
    ))
    print_sweep_summary(engine)
    return 0


def cmd_list_extensions(args) -> int:
    """Print the protocol-extension registry."""
    from repro.core.extensions import registered_extensions

    rows = [
        (
            info.name,
            info.order,
            info.description,
            info.config_cls.__name__ if info.config_cls else "-",
            ",".join(sorted(info.conflicts)) or "-",
        )
        for info in registered_extensions()
    ]
    print(render_table(
        ("name", "order", "description", "config", "conflicts"),
        rows,
        title="registered protocol extensions (pipeline order)",
    ))
    return 0


def cmd_analyze(args) -> int:
    """Sharing-pattern census of a workload."""
    from repro.mem.addrmap import AddressMap
    from repro.stats.sharing import Pattern, analyze

    cfg = SystemConfig(n_procs=args.procs)
    streams = build_workload(args.app, cfg, scale=args.scale)
    profile = analyze(streams, AddressMap(n_nodes=cfg.n_procs))
    census = profile.census()
    rows = [
        (
            pattern.value,
            census.get(pattern, 0),
            100 * profile.fraction_of_refs(pattern),
        )
        for pattern in Pattern
    ]
    print(render_table(
        ("pattern", "blocks", "% of refs"),
        rows,
        title=f"sharing census of {args.app}",
    ))
    return 0


def cmd_trace(args) -> int:
    """Dump a workload's reference streams to a trace file."""
    from repro.trace import save_streams

    cfg = SystemConfig(n_procs=args.procs)
    streams = build_workload(args.app, cfg, scale=args.scale)
    save_streams(streams, args.out)
    total = sum(len(s) for s in streams)
    print(f"wrote {total} ops for {len(streams)} processors to {args.out}")
    return 0


def cmd_serve(args) -> int:
    """Run the sweep service until interrupted."""
    from repro.service import create_service
    from repro.sweep import default_cache_dir

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or str(default_cache_dir())
    service = create_service(
        host=args.host,
        port=args.port,
        cache_dir=cache_dir,
        max_cache_bytes=args.max_cache_bytes,
        max_cache_entries=args.max_cache_entries,
        jobs=args.jobs,
        verbose=args.verbose,
    )
    print(
        f"repro sweep service on {service.url} "
        f"(cache: {cache_dir or 'off'}, jobs: {args.jobs})",
        file=sys.stderr, flush=True,
    )
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        service.close()
    return 0


def cmd_submit(args) -> int:
    """Send one sweep to a running service; print the ranking."""
    from repro.service import ServiceClient, ServiceError
    from repro.sweep import RunSpec

    network = _network_arg(args)
    combos = args.extensions or args.protocols
    specs = [
        RunSpec.for_run(
            args.app,
            protocol=proto,
            consistency=Consistency(args.consistency),
            network=network,
            n_procs=args.procs,
            scale=args.scale,
            seed=args.seed,
            directory=_directory_arg(args),
        )
        for proto in combos
    ]
    client = ServiceClient(args.url)
    try:
        sweep_id = client.submit(specs)
        print(f"submitted {len(specs)} cells as {sweep_id} to {args.url}",
              file=sys.stderr, flush=True)
        job = client.wait_for(sweep_id, timeout=args.timeout)
    except ServiceError as exc:
        print(f"service error: {exc}", file=sys.stderr)
        return 1
    if job["state"] == "failed":
        print(f"sweep failed: {job['error']}", file=sys.stderr)
        return 1
    summaries = [c["summary"] for c in job["results"]]
    base = summaries[0]["execution_time"]
    rows = [
        (
            s["protocol"],
            s["execution_time"] / base,
            s["cold_miss_rate"],
            s["coherence_miss_rate"],
            s["network_bytes"],
        )
        for s in summaries
    ]
    rows.sort(key=lambda r: r[1])
    print(render_table(
        ("protocol", "rel. time", "cold %", "coh %", "net bytes"),
        rows,
        title=f"{args.app} ({args.consistency}, scale {args.scale})",
    ))
    src = job["sources"]
    print(
        f"[service] cells={job['cells']} sim={src['sim']} "
        f"cache={src['cache']} dedup={src['dedup']}",
        file=sys.stderr, flush=True,
    )
    return 0


def cmd_experiments(args) -> int:
    """Dispatch to a table/figure driver."""
    from repro.experiments import (
        figure2, figure3, figure4, placement, report, scaling,
        sensitivity, table1, table2, table3,
    )

    drivers = {
        "table1": table1,
        "figure2": figure2,
        "table2": table2,
        "figure3": figure3,
        "table3": table3,
        "figure4": figure4,
        "sensitivity": sensitivity,
        "scaling": scaling,
        "placement": placement,
        "report": report,
    }
    driver = drivers[args.name]
    extra = []
    if args.name != "table1":
        extra += ["--scale", str(args.scale)]
        extra += ["--jobs", str(args.jobs), "--seed", str(args.seed)]
        if args.cache_dir:
            extra += ["--cache-dir", args.cache_dir]
        if args.no_cache:
            extra.append("--no-cache")
        if args.progress:
            extra.append("--progress")
    if args.name == "scaling":
        if args.sizes:
            extra += ["--sizes", args.sizes]
        if args.directories:
            extra += ["--directories", args.directories]
        if args.app:
            extra += ["--app", args.app]
    driver.main(extra)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Simulator for 'Combined Performance Gains of Simple Cache "
            "Protocol Extensions' (ISCA 1994)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, protocol=True, multi=False):
        p.add_argument("--app", choices=ALL_APP_NAMES, default="mp3d")
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("--procs", type=int, default=16)
        if protocol:
            p.add_argument("--protocol", choices=ALL_PROTOCOLS, default="BASIC")
            p.add_argument(
                "--extensions", metavar="COMBO", nargs="+" if multi else None,
                help=(
                    "extension combination(s), e.g. 'p,m,cw' or 'PF+M'; "
                    "accepts any registered extension (see "
                    "list-extensions) and overrides --protocol(s)"
                ),
            )
            p.add_argument(
                "--consistency", choices=("RC", "SC"), default="RC"
            )
            p.add_argument(
                "--mesh", type=int, metavar="LINK_BITS",
                help="use a wormhole mesh with this link width",
            )
            p.add_argument(
                "--mesh-dims", type=_parse_mesh_dims, metavar="WxH",
                help=(
                    "explicit mesh dimensions (e.g. 8x2); implies a "
                    "mesh; default: squarest factoring of --procs"
                ),
            )
            p.add_argument(
                "--directory", metavar="ORG", default="full_map",
                help=(
                    "directory organization: full_map, limited[:i] "
                    "(Dir_i-B) or coarse[:k] (default: %(default)s)"
                ),
            )

    p_run = sub.add_parser("run", help="simulate one configuration")
    common(p_run)
    p_run.add_argument(
        "--trace-file", help="drive the run from a trace file instead"
    )
    p_run.add_argument(
        "--profile", action="store_true",
        help="profile the run and print the top 25 cumulative entries",
    )
    p_run.add_argument(
        "--profile-out", metavar="FILE",
        help="write the profile as a pstats dump (implies --profile)",
    )
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser(
        "bench", help="benchmark regression harness (events/sec matrix)"
    )
    from repro.bench import add_bench_args

    add_bench_args(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_cmp = sub.add_parser("compare", help="rank protocols on one app")
    common(p_cmp, multi=True)
    p_cmp.add_argument(
        "--protocols", nargs="+", default=list(ALL_PROTOCOLS),
        choices=ALL_PROTOCOLS,
    )
    add_sweep_args(p_cmp)
    p_cmp.set_defaults(fn=cmd_compare)

    p_ls = sub.add_parser(
        "list-extensions", help="print the protocol-extension registry"
    )
    p_ls.set_defaults(fn=cmd_list_extensions)

    p_an = sub.add_parser("analyze", help="sharing-pattern census")
    common(p_an, protocol=False)
    p_an.set_defaults(fn=cmd_analyze)

    p_tr = sub.add_parser("trace", help="dump reference streams to a file")
    common(p_tr, protocol=False)
    p_tr.add_argument("--out", required=True)
    p_tr.set_defaults(fn=cmd_trace)

    p_srv = sub.add_parser(
        "serve", help="run the sweep service (HTTP API over the engine)"
    )
    p_srv.add_argument("--host", default="127.0.0.1")
    p_srv.add_argument("--port", type=int, default=8484)
    p_srv.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes per sweep (1 = serial, the default)",
    )
    p_srv.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="result-cache directory (default: $REPRO_CACHE_DIR or "
             ".repro-cache)",
    )
    p_srv.add_argument(
        "--no-cache", action="store_true",
        help="serve without a result cache (always simulate)",
    )
    p_srv.add_argument(
        "--max-cache-bytes", type=int, default=None, metavar="BYTES",
        help="LRU-evict the cache above this many bytes",
    )
    p_srv.add_argument(
        "--max-cache-entries", type=int, default=None, metavar="N",
        help="LRU-evict the cache above this many entries",
    )
    p_srv.add_argument(
        "--verbose", action="store_true",
        help="log every HTTP request to stderr",
    )
    p_srv.set_defaults(fn=cmd_serve)

    p_sub = sub.add_parser(
        "submit", help="send a sweep to a running service"
    )
    common(p_sub, multi=True)
    p_sub.add_argument(
        "--url", default="http://127.0.0.1:8484",
        help="service base URL (default: %(default)s)",
    )
    p_sub.add_argument(
        "--protocols", nargs="+", default=list(ALL_PROTOCOLS),
        choices=ALL_PROTOCOLS,
    )
    p_sub.add_argument("--seed", type=int, default=DEFAULT_SEED)
    p_sub.add_argument(
        "--timeout", type=float, default=3600.0,
        help="seconds to wait for the sweep to finish",
    )
    p_sub.set_defaults(fn=cmd_submit)

    p_ex = sub.add_parser("experiments", help="run a table/figure driver")
    p_ex.add_argument(
        "name",
        choices=(
            "table1", "figure2", "table2", "figure3", "table3",
            "figure4", "sensitivity", "scaling", "placement", "report",
        ),
    )
    p_ex.add_argument("--scale", type=float, default=1.0)
    p_ex.add_argument(
        "--sizes", default=None, metavar="N,N,...",
        help="(scaling) comma-separated processor counts",
    )
    p_ex.add_argument(
        "--directories", default=None, metavar="ORG,ORG,...",
        help="(scaling) comma-separated directory organizations",
    )
    p_ex.add_argument(
        "--app", default=None, choices=ALL_APP_NAMES,
        help="(scaling) application to scale",
    )
    add_sweep_args(p_ex)
    p_ex.set_defaults(fn=cmd_experiments)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
