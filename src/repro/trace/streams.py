"""Reference-stream (trace) files: save, load, and drive the simulator.

The simulator is execution-driven by default (the workload generators
produce streams on the fly), but the same machine model runs
*trace-driven* from files.  The format is plain text, one op per line,
with per-processor sections::

    # repro-trace v1  procs=16
    P0
    t 4            # think 4 cycles
    r 0x2000       # shared read
    w 0x2004       # shared write
    a 0x8000       # acquire lock
    l 0x8000       # release lock
    b 0            # barrier id 0
    P1
    ...

Addresses accept decimal or 0x-prefixed hex.  Comments (``#``) and
blank lines are ignored.  This lets externally captured traces (e.g.
from an instrumented application) drive the exact protocol models.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterable, Sequence

MAGIC = "# repro-trace v1"

_OP_TO_CODE = {
    "think": "t",
    "read": "r",
    "write": "w",
    "acquire": "a",
    "release": "l",
    "barrier": "b",
}
_CODE_TO_OP = {v: k for k, v in _OP_TO_CODE.items()}
_HEX_OPS = {"read", "write", "acquire", "release"}


class TraceFormatError(ValueError):
    """The trace file is malformed."""


def save_streams(streams: Sequence[Iterable[tuple]], path: str | Path) -> None:
    """Write per-processor reference streams to a trace file."""
    lines = [f"{MAGIC}  procs={len(streams)}"]
    for pid, ops in enumerate(streams):
        lines.append(f"P{pid}")
        for op in ops:
            kind = op[0]
            code = _OP_TO_CODE.get(kind)
            if code is None:
                raise TraceFormatError(f"cannot serialize op {op!r}")
            value = op[1]
            if kind in _HEX_OPS:
                lines.append(f"{code} {value:#x}")
            else:
                lines.append(f"{code} {value}")
    Path(path).write_text("\n".join(lines) + "\n")


def load_streams(path: str | Path) -> list[list[tuple]]:
    """Read a trace file back into per-processor op lists."""
    text = Path(path).read_text()
    lines = text.splitlines()
    if not lines or not lines[0].startswith(MAGIC):
        raise TraceFormatError(f"{path}: missing '{MAGIC}' header")
    try:
        n_procs = int(lines[0].split("procs=")[1])
    except (IndexError, ValueError) as exc:
        raise TraceFormatError(f"{path}: bad header {lines[0]!r}") from exc
    streams: list[list[tuple]] = [[] for _ in range(n_procs)]
    current: list[tuple] | None = None
    for lineno, raw in enumerate(lines[1:], start=2):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("P"):
            try:
                pid = int(line[1:])
                current = streams[pid]
            except (ValueError, IndexError) as exc:
                raise TraceFormatError(
                    f"{path}:{lineno}: bad processor header {line!r}"
                ) from exc
            continue
        if current is None:
            raise TraceFormatError(
                f"{path}:{lineno}: op before any processor header"
            )
        parts = line.split()
        if len(parts) != 2 or parts[0] not in _CODE_TO_OP:
            raise TraceFormatError(f"{path}:{lineno}: bad op line {line!r}")
        kind = _CODE_TO_OP[parts[0]]
        try:
            value = int(parts[1], 0)
        except ValueError as exc:
            raise TraceFormatError(
                f"{path}:{lineno}: bad operand {parts[1]!r}"
            ) from exc
        if value < 0:
            raise TraceFormatError(f"{path}:{lineno}: negative operand")
        current.append((kind, value))
    return streams
