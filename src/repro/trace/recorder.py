"""Protocol-message tracing.

Attach a :class:`MessageTracer` to a :class:`~repro.system.System`
before running it to capture every coherence message (time, type,
source, destination, block, size).  Invaluable for debugging protocol
extensions -- the question "what happened to block 37?" becomes a
one-liner -- and for producing message-level statistics beyond the
built-in counters.

>>> system = System(cfg)
>>> tracer = MessageTracer.attach(system)
>>> system.run(streams)
>>> tracer.for_block(37)        # the full life of block 37
>>> tracer.census()             # messages per type
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.core.messages import Message
from repro.system import System


@dataclass(frozen=True)
class TraceRecord:
    """One recorded protocol message."""

    time: int
    mtype: str
    src: int
    dst: int
    block: int
    size: int

    def __str__(self) -> str:
        return (
            f"t={self.time:<8d} {self.mtype:<12s} "
            f"{self.src:>2d} -> {self.dst:<2d} block={self.block} "
            f"({self.size}B)"
        )


class MessageTracer:
    """Bounded recorder of protocol messages."""

    def __init__(self, capacity: int = 1_000_000) -> None:
        self._records: deque[TraceRecord] = deque(maxlen=capacity)
        self._filter: Callable[[Message], bool] | None = None

    @classmethod
    def attach(
        cls,
        system: System,
        capacity: int = 1_000_000,
        block: int | None = None,
    ) -> "MessageTracer":
        """Create a tracer and hook it into ``system``'s transport.

        ``block`` restricts recording to one block's messages.
        """
        tracer = cls(capacity=capacity)
        if block is not None:
            tracer._filter = lambda msg: msg.block == block
        original_send = system._send

        def traced_send(msg: Message, ready: int) -> None:
            tracer.record(msg, system.sim.now)
            original_send(msg, ready)

        system._send = traced_send
        for node in system.nodes:
            node.cache._send = traced_send
            node.home._send = traced_send
        return tracer

    def record(self, msg: Message, time: int) -> None:
        """Record one message (called from the transport hook)."""
        if self._filter is not None and not self._filter(msg):
            return
        self._records.append(
            TraceRecord(
                time=time,
                mtype=msg.mtype.name,
                src=msg.src,
                dst=msg.dst,
                block=msg.block,
                size=msg.size_bytes,
            )
        )

    # -- queries --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self):
        return iter(self._records)

    def for_block(self, block: int) -> list[TraceRecord]:
        """Every recorded message concerning ``block``, in time order."""
        return [r for r in self._records if r.block == block]

    def between(self, t0: int, t1: int) -> list[TraceRecord]:
        """Messages with ``t0 <= time < t1``."""
        return [r for r in self._records if t0 <= r.time < t1]

    def of_type(self, mtype: str) -> list[TraceRecord]:
        """Messages of one type (by name, e.g. ``"RD_REQ"``)."""
        return [r for r in self._records if r.mtype == mtype]

    def census(self) -> Counter:
        """Message count per type."""
        return Counter(r.mtype for r in self._records)

    def bytes_by_type(self) -> Counter:
        """Bytes per message type."""
        out: Counter = Counter()
        for r in self._records:
            out[r.mtype] += r.size
        return out

    def dump(self, records: Iterable[TraceRecord] | None = None) -> str:
        """Human-readable rendering of (a subset of) the trace."""
        return "\n".join(str(r) for r in (records or self._records))
