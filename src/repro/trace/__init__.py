"""Tracing: protocol-message recording and reference-stream files."""

from repro.trace.recorder import MessageTracer, TraceRecord
from repro.trace.streams import TraceFormatError, load_streams, save_streams

__all__ = [
    "MessageTracer",
    "TraceFormatError",
    "TraceRecord",
    "load_streams",
    "save_streams",
]
