"""Shared-reference stream recording: the replay tier's input.

The workload generators are deterministic functions of the workload
identity (application, processor count, scale, seed, extra workload
keywords and the block/page geometry the address patterns are laid out
in).  :class:`ReferenceRecorder` materializes those generators once
into a :class:`RefTrace`; :class:`TraceStore` keeps traces on disk in a
compact binary format so that a sweep over N protocol/timing variants
pays the generation cost once, not N times.

The on-disk format is deliberately boring::

    REPROREF1\\n
    {"n_procs": 16, "counts": [...], "key": "..."}\\n
    <little-endian int64 pairs (opcode, operand), proc 0..N-1>

Recording the same :class:`~repro.sweep.spec.RunSpec` twice produces
byte-identical files (pinned by ``tests/test_refstream.py``), which
makes trace files safe to content-address and share between worker
processes.
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array
from pathlib import Path
from typing import Iterable, Sequence

from repro.workloads import build_workload

MAGIC = b"REPROREF1"

#: op-kind encoding; the operand is the think length, address, lock
#: address or barrier id respectively.
OP_CODES = {"think": 0, "read": 1, "write": 2,
            "acquire": 3, "release": 4, "barrier": 5}
OP_NAMES = {v: k for k, v in OP_CODES.items()}


class RefTraceError(ValueError):
    """A reference-trace file is malformed or mismatched."""


def workload_key(spec) -> str:
    """Content hash of the workload identity a spec describes.

    Two specs that differ only in protocol, consistency, directory,
    network timing or backend share the same reference stream -- that
    is the whole point of the replay tier -- so the key covers exactly
    the fields the generators consume.
    """
    ident = {
        "app": spec.app,
        "n_procs": spec.n_procs,
        "scale": spec.scale,
        "seed": spec.seed,
        "workload_kw": {k: v for k, v in spec.workload_kw},
        "block_size": spec.cache.block_size,
        "page_size": spec.cache.page_size,
    }
    payload = json.dumps(ident, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


class RefTrace:
    """One workload's materialized per-processor reference streams."""

    __slots__ = ("n_procs", "key", "_streams")

    def __init__(self, streams: Sequence[array], key: str = "") -> None:
        self.n_procs = len(streams)
        self.key = key
        #: one flat ``array('q')`` of (code, operand) pairs per proc.
        self._streams = list(streams)

    # -- access ---------------------------------------------------------

    def ops(self, proc: int) -> array:
        """Processor ``proc``'s flat (code, operand) pair array."""
        return self._streams[proc]

    def n_ops(self, proc: int) -> int:
        """Number of ops in processor ``proc``'s stream."""
        return len(self._streams[proc]) // 2

    def total_ops(self) -> int:
        """Total ops across all processors."""
        return sum(len(s) for s in self._streams) // 2

    def tuples(self, proc: int) -> list[tuple]:
        """Processor ``proc``'s stream as (kind, value) tuples."""
        flat = self._streams[proc]
        return [
            (OP_NAMES[flat[i]], flat[i + 1])
            for i in range(0, len(flat), 2)
        ]

    # -- serialization --------------------------------------------------

    def to_bytes(self) -> bytes:
        """Serialize to the on-disk format (deterministic)."""
        meta = {
            "n_procs": self.n_procs,
            "counts": [len(s) for s in self._streams],
            "key": self.key,
        }
        head = MAGIC + b"\n" + json.dumps(
            meta, sort_keys=True, separators=(",", ":")
        ).encode() + b"\n"
        body = bytearray()
        for s in self._streams:
            if sys.byteorder == "big":
                s = array("q", s)
                s.byteswap()
            body += s.tobytes()
        return head + bytes(body)

    @classmethod
    def from_bytes(cls, blob: bytes) -> "RefTrace":
        """Inverse of :meth:`to_bytes`."""
        nl1 = blob.find(b"\n")
        if nl1 < 0 or blob[:nl1] != MAGIC:
            raise RefTraceError("missing REPROREF1 magic")
        nl2 = blob.find(b"\n", nl1 + 1)
        if nl2 < 0:
            raise RefTraceError("missing trace metadata line")
        try:
            meta = json.loads(blob[nl1 + 1:nl2])
            counts = meta["counts"]
            key = meta.get("key", "")
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise RefTraceError(f"bad trace metadata: {exc}") from exc
        streams = []
        offset = nl2 + 1
        for count in counts:
            if count % 2:
                raise RefTraceError("odd op-word count")
            nbytes = count * 8
            chunk = blob[offset:offset + nbytes]
            if len(chunk) != nbytes:
                raise RefTraceError("truncated trace body")
            s = array("q")
            s.frombytes(chunk)
            if sys.byteorder == "big":
                s.byteswap()
            streams.append(s)
            offset += nbytes
        if offset != len(blob):
            raise RefTraceError("trailing bytes after trace body")
        return cls(streams, key=key)

    def save(self, path: str | Path) -> None:
        """Write the trace file."""
        Path(path).write_bytes(self.to_bytes())

    @classmethod
    def load(cls, path: str | Path) -> "RefTrace":
        """Read a trace file back."""
        return cls.from_bytes(Path(path).read_bytes())


class ReferenceRecorder:
    """Materializes a spec's reference streams into a :class:`RefTrace`.

    The recorder drains the workload generators directly -- no
    simulation happens, so recording costs milliseconds even for cells
    that take seconds to simulate.
    """

    def record(self, spec) -> RefTrace:
        """Record the shared-reference stream ``spec`` describes."""
        cfg = spec.to_config()
        streams = build_workload(
            spec.app, cfg, scale=spec.scale, seed=spec.seed,
            **dict(spec.workload_kw),
        )
        return RefTrace(
            [self._encode(ops) for ops in streams], key=workload_key(spec)
        )

    @staticmethod
    def _encode(ops: Iterable[tuple]) -> array:
        flat = array("q")
        codes = OP_CODES
        for op in ops:
            code = codes.get(op[0])
            if code is None:
                raise RefTraceError(f"cannot record op {op!r}")
            flat.append(code)
            flat.append(op[1])
        return flat


class TraceStore:
    """Content-addressed directory of reference traces.

    Traces are keyed by :func:`workload_key`, so every protocol/timing
    variant of one workload maps to the same file and concurrent
    writers race benignly (byte-identical contents, atomic rename).
    """

    def __init__(self, root: str | Path) -> None:
        self.root = Path(root)

    def path_for(self, spec) -> Path:
        """The trace file this spec's workload lives at."""
        return self.root / f"{workload_key(spec)}.reftrace"

    def get(self, spec) -> RefTrace | None:
        """The stored trace for this workload, or None."""
        path = self.path_for(spec)
        if not path.exists():
            return None
        trace = RefTrace.load(path)
        if trace.n_procs != spec.n_procs:
            raise RefTraceError(
                f"{path}: trace has {trace.n_procs} streams, "
                f"spec wants {spec.n_procs}"
            )
        return trace

    def get_or_record(self, spec) -> RefTrace:
        """Load the workload's trace, recording it on first use."""
        trace = self.get(spec)
        if trace is not None:
            return trace
        trace = ReferenceRecorder().record(spec)
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(spec)
        tmp = path.with_suffix(f".tmp{id(trace)}")
        tmp.write_bytes(trace.to_bytes())
        tmp.replace(path)
        return trace
