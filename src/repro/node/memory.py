"""The node memory module (paper §4).

"The memory in each processor node is fully interleaved with an access
time of 90 ns": the module is organized as address-interleaved banks
selected by low-order block bits.  Each access occupies its *bank* for
the full access latency, but accesses to distinct banks proceed in
parallel, so the module as a whole pipelines back-to-back traffic --
without interleaving, the home node of any hot page would serialize
the entire machine.
"""

from __future__ import annotations

from repro.sim.resource import FcfsResource


class InterleavedMemory:
    """Bank-interleaved memory with per-bank FCFS service."""

    def __init__(
        self,
        name: str,
        n_banks: int = 8,
        access_pclocks: int = 24,
    ) -> None:
        if n_banks <= 0 or access_pclocks <= 0:
            raise ValueError("bank count and access time must be positive")
        self.name = name
        self.n_banks = n_banks
        self.access_pclocks = access_pclocks
        self._banks = [
            FcfsResource(name=f"{name}.bank{i}") for i in range(n_banks)
        ]

    def bank_of(self, block: int) -> int:
        """The bank serving ``block`` (low-order interleaving)."""
        return block % self.n_banks

    def access(self, ready: int, block: int) -> int:
        """Serve one access to ``block``; returns completion time."""
        occ = self.access_pclocks
        # FcfsResource.finish_time, inlined (hot: one access per
        # directory/memory operation at every home node).
        res = self._banks[block % self.n_banks]
        free = res._free_at
        start = ready if ready > free else free
        end = start + occ
        res._free_at = end
        res.busy_cycles += occ
        res.reservations += 1
        return end

    @property
    def accesses(self) -> int:
        """Total accesses served."""
        return sum(b.reservations for b in self._banks)

    def peak_bank_utilization(self, elapsed: int) -> float:
        """Utilization of the busiest bank (hot-spot indicator)."""
        return max(b.utilization(elapsed) for b in self._banks)
