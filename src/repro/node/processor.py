"""Blocking processor model.

"Standard, off-the-shelf processors with blocking loads will do" (§2).
The processor consumes a reference stream of operations:

* ``('think', n)``        -- n pclocks of local computation (includes
  instruction fetches and private-data accesses, which the paper
  simulates as always hitting in the FLC),
* ``('read', addr)``      -- shared read (blocking),
* ``('write', addr)``     -- shared write (buffered under RC, blocking
  under SC),
* ``('acquire', addr)``   -- lock acquire,
* ``('release', addr)``   -- lock release,
* ``('barrier', bar_id)`` -- global barrier.

Execution time decomposes into busy / read-stall / write-stall /
acquire-stall / release-stall exactly as in Figures 2 and 3.
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.config import Consistency, SystemConfig
from repro.core.cache_ctrl import CacheController
from repro.sim.engine import SimulationError, Simulator
from repro.stats.counters import ProcessorStats

Op = tuple


class Processor:
    """One simulated processor driving a reference stream."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        cfg: SystemConfig,
        cache: CacheController,
        workload: Iterable[Op],
        stats: ProcessorStats,
        on_finish: Callable[[int], None],
    ) -> None:
        self.node_id = node_id
        self._sim = sim
        self._cfg = cfg
        self._cache = cache
        self._gen: Iterator[Op] = iter(workload)
        self.stats = stats
        self._on_finish = on_finish
        self._sc = cfg.consistency is Consistency.SC
        self.finished = False

    def start(self) -> None:
        """Begin issuing references at time 0."""
        self._sim.at(self._sim.now, self._next)

    # ------------------------------------------------------------------

    def _next(self) -> None:
        try:
            op = next(self._gen)
        except StopIteration:
            self.finished = True
            self.stats.finish_time = self._sim.now
            self._on_finish(self.node_id)
            return
        kind = op[0]
        if kind == "think":
            cycles = op[1]
            self.stats.busy += cycles
            self._sim.after(cycles, self._next)
        elif kind == "read":
            self._do_read(op[1])
        elif kind == "write":
            self._do_write(op[1])
        elif kind == "acquire":
            self._do_acquire(op[1])
        elif kind == "release":
            self._do_release(op[1])
        elif kind == "barrier":
            self._do_barrier(op[1])
        else:
            raise SimulationError(f"unknown workload op {op!r}")

    # -- reads ----------------------------------------------------------

    def _do_read(self, addr: int) -> None:
        self.stats.shared_reads += 1
        t0 = self._sim.now
        self._cache.read(addr, lambda: self._read_done(t0))

    def _read_done(self, t0: int) -> None:
        dt = self._sim.now - t0
        hit_cost = self._cfg.timing.flc_hit
        self.stats.busy += min(dt, hit_cost)
        self.stats.read_stall += max(0, dt - hit_cost)
        self._next()

    # -- writes ---------------------------------------------------------

    def _do_write(self, addr: int) -> None:
        self.stats.shared_writes += 1
        if self._sc:
            t0 = self._sim.now
            self._cache.write_blocking(addr, lambda: self._write_done(t0))
            return
        if self._cache.can_buffer_write():
            self._buffer_and_go(addr)
        else:
            t0 = self._sim.now
            self._cache.when_write_space(lambda: self._write_retry(addr, t0))

    def _write_retry(self, addr: int, t0: int) -> None:
        if not self._cache.can_buffer_write():
            self._cache.when_write_space(lambda: self._write_retry(addr, t0))
            return
        self.stats.write_stall += self._sim.now - t0
        self._buffer_and_go(addr)

    def _buffer_and_go(self, addr: int) -> None:
        self._cache.buffer_write(addr)
        self.stats.busy += self._cfg.timing.flc_hit
        self._sim.after(self._cfg.timing.flc_hit, self._next)

    def _write_done(self, t0: int) -> None:
        dt = self._sim.now - t0
        hit_cost = self._cfg.timing.flc_hit
        self.stats.busy += min(dt, hit_cost)
        self.stats.write_stall += max(0, dt - hit_cost)
        self._next()

    # -- synchronization --------------------------------------------------

    def _do_acquire(self, addr: int) -> None:
        self.stats.acquires += 1
        t0 = self._sim.now
        self._cache.acquire(addr, lambda: self._acquire_done(t0))

    def _acquire_done(self, t0: int) -> None:
        dt = self._sim.now - t0
        hit_cost = self._cfg.timing.flc_hit
        self.stats.busy += min(dt, hit_cost)
        self.stats.acquire_stall += max(0, dt - hit_cost)
        self._next()

    def _do_release(self, addr: int) -> None:
        self.stats.releases += 1
        if self._sc:
            t0 = self._sim.now
            self._cache.release(addr, lambda: self._release_done(t0))
        else:
            # RCpc: the release is inserted and the processor continues
            self._cache.release(addr)
            self.stats.busy += self._cfg.timing.flc_hit
            self._sim.after(self._cfg.timing.flc_hit, self._next)

    def _release_done(self, t0: int) -> None:
        dt = self._sim.now - t0
        hit_cost = self._cfg.timing.flc_hit
        self.stats.busy += min(dt, hit_cost)
        self.stats.release_stall += max(0, dt - hit_cost)
        self._next()

    def _do_barrier(self, bar_id: int) -> None:
        self.stats.barriers += 1
        t0 = self._sim.now
        self._cache.barrier(
            bar_id, self._cfg.n_procs, lambda: self._barrier_done(t0)
        )

    def _barrier_done(self, t0: int) -> None:
        # barrier wait is accounted as acquire stall, as in the paper's
        # busy / read / acquire decomposition under RC
        self.stats.acquire_stall += self._sim.now - t0
        self._next()
