"""Blocking processor model.

"Standard, off-the-shelf processors with blocking loads will do" (§2).
The processor consumes a reference stream of operations:

* ``('think', n)``        -- n pclocks of local computation (includes
  instruction fetches and private-data accesses, which the paper
  simulates as always hitting in the FLC),
* ``('read', addr)``      -- shared read (blocking),
* ``('write', addr)``     -- shared write (buffered under RC, blocking
  under SC),
* ``('acquire', addr)``   -- lock acquire,
* ``('release', addr)``   -- lock release,
* ``('barrier', bar_id)`` -- global barrier.

Execution time decomposes into busy / read-stall / write-stall /
acquire-stall / release-stall exactly as in Figures 2 and 3.

``_next`` is a *tight issue loop*: consecutive ``think`` ops and local
cache hits (FLC hits, FLWB store-to-load forwards, buffered writes,
RC releases) are consumed in pure Python without scheduling their
completion events.  The loop tracks its own local clock ``t`` and only
returns to the event heap when an op misses, synchronizes, or when the
next completion boundary is not provably event-free.  The crossing
rule that keeps this bit-identical to the one-event-per-op model:

    advancing inline from ``t`` to ``t2`` is allowed only if the event
    heap is empty or its earliest entry fires *strictly after* ``t2``,
    and ``t2`` does not cross an active ``run(until=...)`` horizon.

Under that rule no event could have observed or interleaved with the
skipped window, every issue-time side effect (FCFS reservations,
message sends, buffer pushes) happens in the original order, and each
elided completion event is re-counted via ``Simulator.credit_events``
-- so all counters, all timings and ``events_fired`` match the
pre-fast-path simulator exactly (pinned by the golden parity tests).
"""

from __future__ import annotations

from heapq import heappush
from typing import Callable, Iterable, Iterator

from repro.config import Consistency, SystemConfig
from repro.core.cache_ctrl import CacheController
from repro.sim.engine import SimulationError, Simulator
from repro.stats.counters import ProcessorStats

Op = tuple


class Processor:
    """One simulated processor driving a reference stream."""

    __slots__ = (
        "node_id",
        "_sim",
        "_cfg",
        "_cache",
        "_gen",
        "stats",
        "_on_finish",
        "_sc",
        "finished",
        "_flc_hit",
        "_n_procs",
        "_issue_t0",
        "_stall_addr",
        "_stall_t0",
        "_flwb",
        "_flc_sets",
        "_flc_nsets",
        "_bsize",
        "_advance",
    )

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        cfg: SystemConfig,
        cache: CacheController,
        workload: Iterable[Op],
        stats: ProcessorStats,
        on_finish: Callable[[int], None],
    ) -> None:
        self.node_id = node_id
        self._sim = sim
        self._cfg = cfg
        self._cache = cache
        self._gen: Iterator[Op] = iter(workload)
        self.stats = stats
        self._on_finish = on_finish
        self._sc = cfg.consistency is Consistency.SC
        self.finished = False
        self._flc_hit = cfg.timing.flc_hit
        self._n_procs = cfg.n_procs
        # issue-loop aliases into the cache's FLC/FLWB internals: the
        # FLC-hit probe and the FLWB-room check are replicated here so
        # the two overwhelmingly common outcomes (read hits, buffered
        # writes) cost no call at all
        self._flwb = cache.flwb
        self._flc_sets = cache.flc._sets
        self._flc_nsets = cache.flc._n_sets
        self._bsize = cache._bsize
        #: issue time of the one outstanding blocking op.  The
        #: processor blocks on at most one reference at a time, so the
        #: completion callbacks can be allocation-free bound methods
        #: reading this attribute instead of per-reference closures.
        self._issue_t0 = 0
        #: the write (and its issue time) stalled on a full FLWB.
        self._stall_addr = -1
        self._stall_t0 = 0
        #: the issue-loop entry point the completion callbacks resume
        #: into.  The specialized backend rebinds it to a compiled
        #: closure (see ``repro.sim.specialized``); everything that
        #: re-enters the loop must go through this indirection.
        self._advance: Callable[[], None] = self._next

    def start(self) -> None:
        """Begin issuing references at time 0."""
        self._sim.at(self._sim.now, self._advance)

    # ------------------------------------------------------------------

    def _next(self) -> None:
        sim = self._sim
        heap = sim._heap
        horizon = sim._until
        gen = self._gen
        stats = self.stats
        cache = self._cache
        flwb = self._flwb
        flc_sets = self._flc_sets
        flc_nsets = self._flc_nsets
        bsize = self._bsize
        flc_hit = self._flc_hit
        sc = self._sc
        t = sim.now
        credits = 0
        # per-op counters are accumulated in locals and flushed to the
        # stats object once per loop exit (every return path below)
        busy = 0
        nreads = 0
        nwrites = 0
        while True:
            try:
                op = next(gen)
            except StopIteration:
                break
            kind = op[0]
            if kind == "think":
                busy += op[1]
                t2 = t + op[1]
            elif kind == "read":
                nreads += 1
                block = op[1] // bsize
                if flc_sets.get(block % flc_nsets) == block:
                    # FLC hit, probed without leaving the loop (the
                    # first check ``read_at`` would make, so skipping
                    # the call is exact)
                    busy += flc_hit
                    t2 = t + flc_hit
                else:
                    t2 = cache.read_at(op[1], t, self._read_done)
                    if t2 < 0:
                        # miss: the controller owns the continuation
                        self._issue_t0 = t
                        stats.busy += busy
                        stats.shared_reads += nreads
                        stats.shared_writes += nwrites
                        if credits:
                            sim._events_fired += credits
                        return
                    # store-to-load forward (dt == flc_hit) or an
                    # inline SLC hit (dt > flc_hit): same split as
                    # ``_read_done``
                    dt = t2 - t
                    if dt > flc_hit:
                        busy += flc_hit
                        stats.read_stall += dt - flc_hit
                    else:
                        busy += dt
            elif kind == "write":
                nwrites += 1
                if sc:
                    self._issue_t0 = t
                    stats.busy += busy
                    stats.shared_reads += nreads
                    stats.shared_writes += nwrites
                    cache.write_blocking_at(op[1], self._write_done, t)
                    if credits:
                        sim._events_fired += credits
                    return
                if flwb._writes < flwb.capacity:
                    cache.buffer_write_at(op[1], t)
                    busy += flc_hit
                    t2 = t + flc_hit
                else:
                    self._stall_addr = op[1]
                    self._stall_t0 = t
                    stats.busy += busy
                    stats.shared_reads += nreads
                    stats.shared_writes += nwrites
                    cache.when_write_space(self._write_retry)
                    if credits:
                        sim._events_fired += credits
                    return
            elif kind == "acquire":
                stats.acquires += 1
                self._issue_t0 = t
                stats.busy += busy
                stats.shared_reads += nreads
                stats.shared_writes += nwrites
                cache.acquire_at(op[1], self._acquire_done, t)
                if credits:
                    sim._events_fired += credits
                return
            elif kind == "release":
                stats.releases += 1
                if sc:
                    self._issue_t0 = t
                    stats.busy += busy
                    stats.shared_reads += nreads
                    stats.shared_writes += nwrites
                    cache.release_at(op[1], t, self._release_done)
                    if credits:
                        sim._events_fired += credits
                    return
                # RCpc: the release is inserted and the processor
                # continues after the FLC write-through
                cache.release_at(op[1], t)
                busy += flc_hit
                t2 = t + flc_hit
            elif kind == "barrier":
                stats.barriers += 1
                self._issue_t0 = t
                stats.busy += busy
                stats.shared_reads += nreads
                stats.shared_writes += nwrites
                cache.barrier_at(op[1], self._n_procs, self._barrier_done, t)
                if credits:
                    sim._events_fired += credits
                return
            else:
                raise SimulationError(f"unknown workload op {op!r}")
            if (heap and heap[0][0] <= t2) or t2 > horizon:
                # a queued event (or the run horizon) falls inside the
                # window: fall back to a real completion event at t2
                stats.busy += busy
                stats.shared_reads += nreads
                stats.shared_writes += nwrites
                if credits:
                    sim._events_fired += credits
                heappush(heap, (t2, sim._seq, self._next, ()))
                sim._seq += 1
                return
            t = t2
            credits += 1
        # stream exhausted at boundary ``t``; the crossing rule
        # guarantees nothing fires before ``t``, so finishing inline
        # is indistinguishable from the elided completion event.
        self.finished = True
        stats.finish_time = t
        stats.busy += busy
        stats.shared_reads += nreads
        stats.shared_writes += nwrites
        if credits:
            sim._events_fired += credits
        self._on_finish(self.node_id)

    # -- completion callbacks ------------------------------------------
    #
    # Bound methods, shared across references: the blocking processor
    # has one outstanding op, whose issue time sits in ``_issue_t0``.

    def _read_done(self) -> None:
        dt = self._sim.now - self._issue_t0
        hit_cost = self._flc_hit
        stats = self.stats
        if dt > hit_cost:
            stats.busy += hit_cost
            stats.read_stall += dt - hit_cost
        else:
            stats.busy += dt
        self._advance()

    def _write_retry(self) -> None:
        if not self._cache.can_buffer_write():
            self._cache.when_write_space(self._write_retry)
            return
        # ``_stall_t0`` was recorded once, when the stall began, so the
        # stall is charged exactly once however many wakeups it took
        self.stats.write_stall += self._sim.now - self._stall_t0
        self._cache.buffer_write(self._stall_addr)
        self.stats.busy += self._flc_hit
        self._sim.after(self._flc_hit, self._advance)

    def _write_done(self) -> None:
        dt = self._sim.now - self._issue_t0
        hit_cost = self._flc_hit
        stats = self.stats
        if dt > hit_cost:
            stats.busy += hit_cost
            stats.write_stall += dt - hit_cost
        else:
            stats.busy += dt
        self._advance()

    def _acquire_done(self) -> None:
        dt = self._sim.now - self._issue_t0
        hit_cost = self._flc_hit
        stats = self.stats
        if dt > hit_cost:
            stats.busy += hit_cost
            stats.acquire_stall += dt - hit_cost
        else:
            stats.busy += dt
        self._advance()

    def _release_done(self) -> None:
        dt = self._sim.now - self._issue_t0
        hit_cost = self._flc_hit
        stats = self.stats
        if dt > hit_cost:
            stats.busy += hit_cost
            stats.release_stall += dt - hit_cost
        else:
            stats.busy += dt
        self._advance()

    def _barrier_done(self) -> None:
        # barrier wait is accounted as acquire stall, as in the paper's
        # busy / read / acquire decomposition under RC
        self.stats.acquire_stall += self._sim.now - self._issue_t0
        self._advance()
