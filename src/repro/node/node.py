"""One processing node: bus, memory, SLC pipeline, controllers.

Figure 1 of the paper: processor + FLC + FLWB + SLC + SLWB connected
by a local bus to the node's share of physical memory and the network
interface.  Contention on the bus, the memory module and the SLC is
modelled with FCFS resources.
"""

from __future__ import annotations

from repro.config import SystemConfig
from repro.core.cache_ctrl import CacheController, SendFn
from repro.core.extensions import build_pipeline
from repro.core.home import HomeController
from repro.mem.addrmap import AddressMap
from repro.node.bus import SplitTransactionBus
from repro.node.memory import InterleavedMemory
from repro.sim.engine import Simulator
from repro.sim.resource import FcfsResource
from repro.stats.counters import CacheStats


class Node:
    """A processor node of the CC-NUMA machine."""

    def __init__(
        self,
        node_id: int,
        sim: Simulator,
        cfg: SystemConfig,
        amap: AddressMap,
        send: SendFn,
        cache_stats: CacheStats,
        placement=None,
    ) -> None:
        self.node_id = node_id
        self.bus = SplitTransactionBus(
            name=f"bus{node_id}",
            width_bytes=cfg.timing.bus_width_bytes,
            cycle_pclocks=cfg.timing.bus_transaction,
        )
        self.memory = InterleavedMemory(
            name=f"mem{node_id}",
            n_banks=cfg.timing.memory_banks,
            access_pclocks=cfg.timing.memory_latency,
        )
        self.slc_pipe = FcfsResource(name=f"slc{node_id}")
        #: one protocol-extension pipeline per node, shared by the
        #: requester and directory sides (extensions hold per-node state)
        self.extensions = build_pipeline(cfg.protocol)
        self.cache = CacheController(
            node_id, sim, cfg, amap, self.slc_pipe, send, cache_stats,
            placement=placement, pipeline=self.extensions,
        )
        self.home = HomeController(
            node_id,
            sim,
            cfg.timing,
            cfg.protocol,
            self.memory,
            send,
            cfg.n_procs,
            pipeline=self.extensions,
            directory=cfg.directory,
        )
