"""Processing-node substrate: processor, bus/memory resources, assembly."""

from repro.node.node import Node
from repro.node.processor import Op, Processor

__all__ = ["Node", "Op", "Processor"]
