"""The local split-transaction bus (paper §4).

"The 256-bit wide local split-transaction bus is clocked at 33 MHz":
one bus cycle is 3 pclocks and moves up to 32 bytes, so a control
message (8-byte header) occupies one cycle and a data-carrying message
(header + 32-byte block) two.  Requests and replies are separate bus
transactions (split transaction), which is how the surrounding code
uses this class: every message arriving at or leaving a node reserves
the bus once, for its own size.
"""

from __future__ import annotations

from repro.sim.resource import FcfsResource


class SplitTransactionBus:
    """Width-aware FCFS bus: occupancy scales with the payload."""

    __slots__ = ("name", "width_bytes", "cycle_pclocks", "_res")

    def __init__(
        self,
        name: str,
        width_bytes: int = 32,
        cycle_pclocks: int = 3,
    ) -> None:
        if width_bytes <= 0 or cycle_pclocks <= 0:
            raise ValueError("bus width and cycle time must be positive")
        self.name = name
        self.width_bytes = width_bytes
        self.cycle_pclocks = cycle_pclocks
        self._res = FcfsResource(name=name)

    def cycles_for(self, size_bytes: int) -> int:
        """Bus cycles one transaction of ``size_bytes`` occupies."""
        return max(1, -(-size_bytes // self.width_bytes))

    def access(self, ready: int, size_bytes: int) -> int:
        """Reserve the bus for one transaction; returns completion time."""
        cycles = -(-size_bytes // self.width_bytes)
        if cycles < 1:
            cycles = 1
        occ = cycles * self.cycle_pclocks
        # FcfsResource.finish_time, inlined: every message crossing a
        # node pays this twice (out-bus + in-bus), making it the single
        # hottest reservation site in the simulator.
        res = self._res
        free = res._free_at
        start = ready if ready > free else free
        end = start + occ
        res._free_at = end
        res.busy_cycles += occ
        res.reservations += 1
        return end

    @property
    def reservations(self) -> int:
        """Transactions carried so far."""
        return self._res.reservations

    @property
    def busy_cycles(self) -> int:
        """Total pclocks the bus has been occupied."""
        return self._res.busy_cycles

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` pclocks the bus was busy."""
        return self._res.utilization(elapsed)
