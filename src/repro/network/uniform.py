"""Contention-free uniform-latency network (paper §4 default).

Every node-to-node message takes a fixed 54 pclocks regardless of
placement and load ("a contention-free uniform access time network
with a node-to-node latency of 54 pclocks").  Node-internal contention
(bus, memory, SLC) is modelled elsewhere.
"""

from __future__ import annotations

from repro.config import NetworkConfig
from repro.stats.counters import NetworkStats


class UniformNetwork:
    """Infinite-bandwidth interconnect with constant latency."""

    __slots__ = ("_latency", "_n_nodes", "_stats")

    def __init__(self, cfg: NetworkConfig, n_nodes: int, stats: NetworkStats) -> None:
        self._latency = cfg.uniform_latency
        self._n_nodes = n_nodes
        self._stats = stats

    def arrival_time(self, src: int, dst: int, size_bytes: int, ready: int) -> int:
        """When a message departing at ``ready`` reaches ``dst``."""
        if src == dst:
            return ready
        return ready + self._latency

    def record(self, mtype_name: str, src: int, dst: int, size: int,
               carries_data: bool) -> None:
        """Account traffic (local messages never cross the network)."""
        if src != dst:
            self._stats.record(mtype_name, size, carries_data)

    def max_link_utilization(self, elapsed: int) -> float:
        """Always 0.0: the uniform network is contention-free."""
        return 0.0
