"""Wormhole-routed mesh (paper §5.3).

A 2D mesh with dimension-order (X then Y) routing and two-phase
(routing + transfer) switches clocked at the processor frequency.  A
message of *S* bytes on *W*-bit links serializes into
``ceil(8 S / W)`` flits.  The head flit pays the 2-cycle hop latency
per switch; the body streams behind it, holding each link for the
serialization time -- which is how narrow links (16-bit) saturate
under the extra traffic of P+CW while 64-bit links do not.

The paper's machine is the square 4x4 mesh, but the topology is a
general W x H rectangle: any node count factors into the squarest
``W >= H`` rectangle (``mesh_dims(n)``), and
:attr:`~repro.config.NetworkConfig.mesh_dims` overrides the factoring
for deliberately elongated meshes.  Prime counts degenerate to an
N x 1 chain, which is still a valid (if bisection-starved) mesh.
"""

from __future__ import annotations

import math

from repro.config import NetworkConfig
from repro.sim.resource import FcfsResource
from repro.stats.counters import NetworkStats


def mesh_dims(n_nodes: int) -> tuple[int, int]:
    """The squarest ``(width, height)`` factoring of ``n_nodes``.

    Height is the largest divisor not exceeding ``sqrt(n)``, so square
    counts stay square (16 -> 4x4) and the rest get the most balanced
    rectangle available (12 -> 4x3, 8 -> 4x2, 7 -> 7x1).
    """
    if n_nodes < 1:
        raise ValueError(f"mesh needs at least one node, got {n_nodes}")
    h = int(math.isqrt(n_nodes))
    while n_nodes % h:
        h -= 1
    return n_nodes // h, h


class MeshNetwork:
    """Dimension-order wormhole mesh with per-link FCFS contention."""

    def __init__(self, cfg: NetworkConfig, n_nodes: int, stats: NetworkStats) -> None:
        if cfg.mesh_dims is not None:
            w, h = cfg.mesh_dims
            if w < 1 or h < 1 or w * h != n_nodes:
                raise ValueError(
                    f"mesh_dims {cfg.mesh_dims} does not tile {n_nodes} "
                    f"nodes; set NetworkConfig.mesh_dims to a (width, "
                    f"height) pair with width*height == {n_nodes}"
                )
            self._dims = (w, h)
        else:
            self._dims = mesh_dims(n_nodes)
        self._width = self._dims[0]
        self._cfg = cfg
        self._stats = stats
        self._links: dict[tuple[int, int], FcfsResource] = {}

    @property
    def dims(self) -> tuple[int, int]:
        """Mesh dimensions ``(width, height)`` (4x4 for the paper)."""
        return self._dims

    def _coords(self, node: int) -> tuple[int, int]:
        return node % self._width, node // self._width

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-order path as a list of directed (from, to) links."""
        path = []
        x, y = self._coords(src)
        dx, dy = self._coords(dst)
        cur = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = y * self._width + x
            path.append((cur, nxt))
            cur = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = y * self._width + x
            path.append((cur, nxt))
            cur = nxt
        return path

    def flits(self, size_bytes: int) -> int:
        """Serialization length of a message in link cycles."""
        return max(1, math.ceil(size_bytes * 8 / self._cfg.link_width_bits))

    def _link(self, edge: tuple[int, int]) -> FcfsResource:
        res = self._links.get(edge)
        if res is None:
            res = FcfsResource(name=f"link{edge[0]}->{edge[1]}")
            self._links[edge] = res
        return res

    def arrival_time(self, src: int, dst: int, size_bytes: int, ready: int) -> int:
        """Head-flit propagation with per-link body occupancy."""
        if src == dst:
            return ready
        flits = self.flits(size_bytes)
        t = ready
        for edge in self.route(src, dst):
            start = self._link(edge).reserve(t, flits)
            t = start + self._cfg.hop_cycles
        return t + flits

    def record(self, mtype_name: str, src: int, dst: int, size: int,
               carries_data: bool) -> None:
        """Account traffic (local messages never cross the network)."""
        if src != dst:
            self._stats.record(mtype_name, size, carries_data)

    def max_link_utilization(self, elapsed: int) -> float:
        """Peak link utilization -- saturation indicator for §5.3."""
        if not self._links:
            return 0.0
        return max(link.utilization(elapsed) for link in self._links.values())
