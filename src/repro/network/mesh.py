"""Wormhole-routed mesh (paper §5.3).

A 2D mesh with dimension-order (X then Y) routing and two-phase
(routing + transfer) switches clocked at the processor frequency.  A
message of *S* bytes on *W*-bit links serializes into
``ceil(8 S / W)`` flits.  The head flit pays the 2-cycle hop latency
per switch; the body streams behind it, holding each link for the
serialization time -- which is how narrow links (16-bit) saturate
under the extra traffic of P+CW while 64-bit links do not.
"""

from __future__ import annotations

import math

from repro.config import NetworkConfig
from repro.sim.resource import FcfsResource
from repro.stats.counters import NetworkStats


class MeshNetwork:
    """Dimension-order wormhole mesh with per-link FCFS contention."""

    def __init__(self, cfg: NetworkConfig, n_nodes: int, stats: NetworkStats) -> None:
        side = int(round(math.sqrt(n_nodes)))
        if side * side != n_nodes:
            raise ValueError(f"mesh needs a square node count, got {n_nodes}")
        self._side = side
        self._cfg = cfg
        self._stats = stats
        self._links: dict[tuple[int, int], FcfsResource] = {}

    @property
    def side(self) -> int:
        """Mesh edge length (4 for the paper's 16 nodes)."""
        return self._side

    def _coords(self, node: int) -> tuple[int, int]:
        return node % self._side, node // self._side

    def route(self, src: int, dst: int) -> list[tuple[int, int]]:
        """Dimension-order path as a list of directed (from, to) links."""
        path = []
        x, y = self._coords(src)
        dx, dy = self._coords(dst)
        cur = src
        while x != dx:
            x += 1 if dx > x else -1
            nxt = y * self._side + x
            path.append((cur, nxt))
            cur = nxt
        while y != dy:
            y += 1 if dy > y else -1
            nxt = y * self._side + x
            path.append((cur, nxt))
            cur = nxt
        return path

    def flits(self, size_bytes: int) -> int:
        """Serialization length of a message in link cycles."""
        return max(1, math.ceil(size_bytes * 8 / self._cfg.link_width_bits))

    def _link(self, edge: tuple[int, int]) -> FcfsResource:
        res = self._links.get(edge)
        if res is None:
            res = FcfsResource(name=f"link{edge[0]}->{edge[1]}")
            self._links[edge] = res
        return res

    def arrival_time(self, src: int, dst: int, size_bytes: int, ready: int) -> int:
        """Head-flit propagation with per-link body occupancy."""
        if src == dst:
            return ready
        flits = self.flits(size_bytes)
        t = ready
        for edge in self.route(src, dst):
            start = self._link(edge).reserve(t, flits)
            t = start + self._cfg.hop_cycles
        return t + flits

    def record(self, mtype_name: str, src: int, dst: int, size: int,
               carries_data: bool) -> None:
        """Account traffic (local messages never cross the network)."""
        if src != dst:
            self._stats.record(mtype_name, size, carries_data)

    def max_link_utilization(self, elapsed: int) -> float:
        """Peak link utilization -- saturation indicator for §5.3."""
        if not self._links:
            return 0.0
        return max(link.utilization(elapsed) for link in self._links.values())
