"""Interconnect models: uniform contention-free and wormhole mesh."""

from repro.network.mesh import MeshNetwork
from repro.network.uniform import UniformNetwork

__all__ = ["MeshNetwork", "UniformNetwork"]


def build_network(cfg, n_nodes, stats):
    """Instantiate the interconnect selected by ``cfg.kind``."""
    from repro.config import NetworkKind

    if cfg.kind is NetworkKind.MESH:
        return MeshNetwork(cfg, n_nodes, stats)
    return UniformNetwork(cfg, n_nodes, stats)
