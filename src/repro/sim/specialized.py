"""Specialized event core: per-run precompiled dispatch.

:class:`SpecializedSystem` is a drop-in :class:`~repro.system.System`
whose hottest paths are *compiled at build time* into flat closures
with every run-constant folded in: the message transport (bus
geometry, network latency, the live event heap), the per-node send
helpers (home lookup, message construction), the home controller's
request dispatch (transient-state check, directory-entry fetch and
per-type handler fused into one frame per message kind), and the
processor's tight issue loop (a cached crossing bound replaces the
per-op heap peek).  The generic ``System`` resolves all of that
through ``self`` and two or three call frames per message; the
specialized core resolves it once per run.

The compilation is a pure re-binding exercise: every closure body is
line-for-line the semantics of the generic method it replaces, so all
counters, all timestamps and ``events_fired`` stay bit-identical to
the event backend.  The 16-cell golden parity suite and the
cross-backend equivalence suite (``tests/test_backend_equivalence.py``)
pin that claim.

Known trade-off: tools that monkeypatch the transport after
construction (:class:`repro.trace.MessageTracer`) only intercept the
``System._send`` attribute, not the compiled helpers that captured the
transport at build time -- attach tracers to a plain ``System``
(the reference recorder does exactly that).

This module is also the seam future compiled backends (mypyc/Cython
builds of the same closures) plug into: anything that preserves the
transport contract can register itself as another
:class:`~repro.sim.backend.ExecutionBackend`.
"""

from __future__ import annotations

from collections import deque
from heapq import heappush
from typing import Iterable

from repro.config import SystemConfig
from repro.core.cache_ctrl import _PendingRead, _PendingWrite
from repro.core.directory import DirectoryEntry
from repro.core.home import HomeController
from repro.core.transactions import Xact
from repro.core.messages import (
    BLOCK_BYTES,
    HEADER_BYTES,
    HOME_BOUND,
    MSG_NAMES,
    SIZE_BY_TYPE,
    WORD_BYTES,
    Message,
    MsgType,
)
from repro.core.states import CacheState, MemoryState
from repro.mem.addrmap import WORD_SIZE
from repro.mem.write_buffers import FlwbEntry, SlwbKind
from repro.node.processor import Op, Processor
from repro.sim.engine import SimulationError
from repro.system import System

_new_msg = object.__new__


def _hook(pipeline, name: str):
    """Direct-dispatch form of one pipeline hook.

    Returns ``None`` when no extension implements the hook (call sites
    skip the call entirely -- the generic dispatcher would loop over an
    empty tuple), the lone extension's bound method when exactly one
    does, and the pipeline dispatcher otherwise.  All three forms are
    observationally identical to the generic ``if self._exts:
    pipeline.<hook>(...)`` call site.
    """
    hooks = getattr(pipeline, "_" + name)
    if not hooks:
        return None
    if len(hooks) == 1:
        return getattr(hooks[0], name)
    return getattr(pipeline, name)


# ----------------------------------------------------------------------
# transport
# ----------------------------------------------------------------------


def compile_transport(system: System):
    """Rebind ``system``'s transport to run-specialized closures.

    Folds the bus ledgers, handler tables, network accounting and the
    event heap into closure locals, then installs the compiled
    functions on the system *and* on every controller that captured
    the generic bound method at construction time.  Returns the
    compiled ``_send``.
    """
    sim = system.sim
    ns = system.stats.network
    flat_latency = system._flat_latency
    network = system.network

    def _deliver_remote(
        msg,
        occ,
        fn,
        sim=sim,
        bus_res=system._bus_res,
        heap=sim._heap,  # invariant: Simulator._heap is never rebound
        _push=heappush,
    ):
        # destination-bus reservation (SplitTransactionBus.access, inlined)
        res = bus_res[msg.dst]
        free = res._free_at
        now = sim.now
        start = now if now > free else free
        t_in = start + occ
        res._free_at = t_in
        res.busy_cycles += occ
        res.reservations += 1
        if (not heap or heap[0][0] > t_in) and t_in <= sim._until:
            sim.now = t_in
            sim._events_fired += 1
            fn(msg, t_in)
        else:
            _push(heap, (t_in, sim._seq, fn, (msg, t_in)))
            sim._seq += 1

    if flat_latency is not None:
        # uniform network: accounting and arrival arithmetic inlined,
        # the contention-free latency folded in as a constant
        def _send(
            msg,
            ready,
            sim=sim,
            ns=ns,
            by_type=ns.by_type,
            bus_res=system._bus_res,
            deliver_fns=system._deliver_fns,
            heap=sim._heap,
            lat=flat_latency,
            bus_width=system._bus_width,
            bus_cycle=system._bus_cycle,
            _sizes=SIZE_BY_TYPE,
            _names=MSG_NAMES,
            _header=HEADER_BYTES,
            _hdr_blk=HEADER_BYTES + BLOCK_BYTES,
            _word=WORD_BYTES,
            _xfer=MsgType.XFER_ACK,
            _push=heappush,
            _remote=_deliver_remote,
        ):
            src, dst, mtype = msg.src, msg.dst, msg.mtype
            size = _sizes[mtype]
            if size < 0:
                # Message.size_bytes, inlined (variable-size kinds)
                if mtype is _xfer:
                    size = _hdr_blk if msg.was_modified else _header
                else:
                    size = _header + _word * msg.words
            # source-bus reservation (SplitTransactionBus.access, inlined)
            cycles = -(-size // bus_width)
            if cycles < 1:
                cycles = 1
            occ = cycles * bus_cycle
            res = bus_res[src]
            free = res._free_at
            start = ready if ready > free else free
            t_out = start + occ
            res._free_at = t_out
            res.busy_cycles += occ
            res.reservations += 1
            if src != dst:
                ns.messages += 1
                ns.bytes += size
                if size > _header:
                    ns.data_messages += 1
                name = _names[mtype]
                by_type[name] = by_type.get(name, 0) + 1
                arrive = t_out + lat
                fn = deliver_fns[dst][mtype]
                _push(heap, (arrive, sim._seq, _remote, (msg, occ, fn)))
            else:
                arrive = t_out
                fn = deliver_fns[dst][mtype]
                _push(heap, (arrive, sim._seq, fn, (msg, arrive)))
            sim._seq += 1

    else:
        # generic topology (mesh): the network model owns accounting
        # and arrival times; everything else is still folded
        def _send(
            msg,
            ready,
            sim=sim,
            bus_res=system._bus_res,
            deliver_fns=system._deliver_fns,
            heap=sim._heap,
            record=network.record,
            arrival_time=network.arrival_time,
            bus_width=system._bus_width,
            bus_cycle=system._bus_cycle,
            _sizes=SIZE_BY_TYPE,
            _names=MSG_NAMES,
            _header=HEADER_BYTES,
            _hdr_blk=HEADER_BYTES + BLOCK_BYTES,
            _word=WORD_BYTES,
            _xfer=MsgType.XFER_ACK,
            _push=heappush,
            _remote=_deliver_remote,
        ):
            src, dst, mtype = msg.src, msg.dst, msg.mtype
            size = _sizes[mtype]
            if size < 0:
                # Message.size_bytes, inlined (variable-size kinds)
                if mtype is _xfer:
                    size = _hdr_blk if msg.was_modified else _header
                else:
                    size = _header + _word * msg.words
            cycles = -(-size // bus_width)
            if cycles < 1:
                cycles = 1
            occ = cycles * bus_cycle
            res = bus_res[src]
            free = res._free_at
            start = ready if ready > free else free
            t_out = start + occ
            res._free_at = t_out
            res.busy_cycles += occ
            res.reservations += 1
            record(_names[mtype], src, dst, size, size > _header)
            arrive = arrival_time(src, dst, size, t_out)
            fn = deliver_fns[dst][mtype]
            if src == dst:
                _push(heap, (arrive, sim._seq, fn, (msg, arrive)))
            else:
                _push(heap, (arrive, sim._seq, _remote, (msg, occ, fn)))
            sim._seq += 1

    system._send = _send  # type: ignore[method-assign]
    system._deliver_remote = _deliver_remote  # type: ignore[method-assign]
    for node in system.nodes:
        node.cache._send = _send
        node.home._send = _send
    return _send


# ----------------------------------------------------------------------
# per-node send helpers
# ----------------------------------------------------------------------


def compile_send_helpers(system: System, send) -> None:
    """Rebind each controller's message helpers to compiled closures.

    ``send_home`` / ``reply`` spell every :class:`Message` field out as
    an explicit keyword parameter and build the message with direct
    slot stores -- no ``**kw`` dict, no per-field ``setattr`` loop and
    no dataclass initializer per message, where the generic chain pays
    all three.  The keyword vocabulary is exactly the Message fields,
    so unknown names still fail (``TypeError`` instead of the slot
    descriptor's ``AttributeError``).
    """
    sim = system.sim
    _new = _new_msg
    _Message = Message
    for node in system.nodes:
        cache = node.cache
        home = node.home
        cache_id = cache.node_id
        home_id = home.node_id
        home_cache = cache._home_cache
        home_of = cache._home_of

        def send_home(
            mtype, block, t=None, *,
            requester=-1, prefetch=False, words=0, grant="S",
            was_modified=False, drop=False, give_up=False,
            exclusive=False, tag=0,
            node_id=cache_id, home_cache=home_cache, home_of=home_of,
        ):
            dst = home_cache.get(block)
            if dst is None:
                dst = home_of(block)
                home_cache[block] = dst
            msg = _new(_Message)
            msg.mtype = mtype
            msg.src = node_id
            msg.dst = dst
            msg.block = block
            msg.requester = requester
            msg.prefetch = prefetch
            msg.words = words
            msg.grant = grant
            msg.was_modified = was_modified
            msg.drop = drop
            msg.give_up = give_up
            msg.exclusive = exclusive
            msg.tag = tag
            send(msg, sim.now if t is None else t)

        def cache_reply(
            mtype, dst, block, t, *,
            requester=-1, prefetch=False, words=0, grant="S",
            was_modified=False, drop=False, give_up=False,
            exclusive=False, tag=0,
            node_id=cache_id,
        ):
            msg = _new(_Message)
            msg.mtype = mtype
            msg.src = node_id
            msg.dst = dst
            msg.block = block
            msg.requester = requester
            msg.prefetch = prefetch
            msg.words = words
            msg.grant = grant
            msg.was_modified = was_modified
            msg.drop = drop
            msg.give_up = give_up
            msg.exclusive = exclusive
            msg.tag = tag
            send(msg, t)

        def home_reply(
            mtype, dst, block, t, *,
            requester=-1, prefetch=False, words=0, grant="S",
            was_modified=False, drop=False, give_up=False,
            exclusive=False, tag=0,
            node_id=home_id,
        ):
            msg = _new(_Message)
            msg.mtype = mtype
            msg.src = node_id
            msg.dst = dst
            msg.block = block
            msg.requester = requester
            msg.prefetch = prefetch
            msg.words = words
            msg.grant = grant
            msg.was_modified = was_modified
            msg.drop = drop
            msg.give_up = give_up
            msg.exclusive = exclusive
            msg.tag = tag
            send(msg, t)

        cache.send_home = send_home
        cache.reply = cache_reply
        home.reply = home_reply

        def mem_access(
            t,
            block,
            home=home,
            banks=home._banks,
            n_banks=home._n_banks,
            occ=home._mem_occ,
        ):
            home.memory_accesses += 1
            res = banks[block % n_banks]
            free = res._free_at
            start = t if t > free else free
            end = start + occ
            res._free_at = end
            res.busy_cycles += occ
            res.reservations += 1
            return end

        home.mem_access = mem_access


# ----------------------------------------------------------------------
# cache-side extension replies
# ----------------------------------------------------------------------


def compile_cache_entries(system: System) -> None:
    """Flatten the cache's extension-reply fallback dispatch.

    Message kinds owned by extensions (CW updates/acks, migratory
    interrogations) have no entry in ``cache._handlers``, so the
    transport table falls back to the generic ``CacheController.deliver``:
    a redundant handler probe, then the pipeline's hook loop, then the
    extension -- three frames per message.  The table slot is fixed per
    kind, so the probe is dead and a single-extension hook chain
    collapses to a direct call on the extension.
    """
    n_types = len(SIZE_BY_TYPE)
    for dst, node in enumerate(system.nodes):
        cache = node.cache
        table = system._deliver_fns[dst]
        hooks = cache.extensions._on_home_reply
        if len(hooks) == 1:
            on_home_reply = hooks[0].on_home_reply
        else:
            on_home_reply = cache.extensions.on_home_reply

        def ext_entry(msg, t, cache=cache, on_home_reply=on_home_reply):
            if not on_home_reply(cache, msg, t):
                raise SimulationError(
                    f"cache {cache.node_id}: unexpected {msg.mtype}"
                )

        for mt in range(n_types):
            if mt not in cache._handlers and mt not in HOME_BOUND:
                table[mt] = ext_entry


# ----------------------------------------------------------------------
# home request dispatch
# ----------------------------------------------------------------------


def compile_home_entries(system: System) -> None:
    """Fuse the home-bound message paths into one closure per kind.

    The generic chain for a home-bound request is
    ``_deliver_request`` -> ``process_request`` -> per-type handler:
    a transient-state check, a directory-entry fetch/create and an
    ``is``-chain over message kinds, re-resolved per message.  Here
    the kind is fixed per transport-table slot, so each entry fuses
    the check, the fetch and the *handler body itself* into one frame:
    ``_handle_read`` and ``_handle_write`` are inlined with
    ``mem_access`` folded in and their extension hook sites
    specialized through :func:`_hook` (``RDX_REQ`` vs ``OWN_REQ`` even
    folds the ``needs_data`` kind test to a constant), and the
    transaction-completing acks get a fused ``_handle_ack``.  Queued-
    then-drained requests still flow through the untouched
    ``process_request``, keeping replay order identical.
    """
    _CLEAN = MemoryState.CLEAN
    _MOD = MemoryState.MODIFIED
    _RD_RPL = MsgType.RD_RPL
    _RDX_RPL = MsgType.RDX_RPL
    _OWN_ACK = MsgType.OWN_ACK
    _FETCH = MsgType.FETCH
    _FETCH_INV = MsgType.FETCH_INV
    _INV = MsgType.INV
    _XFER_ACK = MsgType.XFER_ACK
    _INV_ACK = MsgType.INV_ACK
    _SYNC_TYPES = (MsgType.LOCK_REQ, MsgType.LOCK_REL, MsgType.BAR_ARRIVE)
    _FETCH_KINDS = HomeController._FETCH_KINDS

    def compile_one(home, table) -> None:
        xacts = home._xacts
        pending = home._pending
        dir_entries = home._dir_entries
        make_sharers = home._make_sharers
        banks = home._banks
        n_banks = home._n_banks
        mem_occ = home._mem_occ
        reply = home.reply  # compiled by compile_send_helpers
        handle_writeback = home._handle_writeback
        finish_fetch = home._finish_fetch
        finish_invalidation = home._finish_invalidation
        exts = home._exts
        pipeline = home.extensions
        on_home_request = pipeline.on_home_request
        grants_exclusive = _hook(pipeline, "grants_exclusive_read")
        on_own_requested = _hook(pipeline, "on_ownership_requested")
        on_own_granted = _hook(pipeline, "on_ownership_granted")
        on_home_ack = _hook(pipeline, "on_home_ack")
        absorb_ack_payload = _hook(pipeline, "absorb_ack_payload")

        def read_entry(msg, t):
            block = msg.block
            if block in xacts:
                pending.setdefault(block, deque()).append(msg)
                return
            e = dir_entries.get(block)
            if e is None:
                e = DirectoryEntry(sharers=make_sharers())
                dir_entries[block] = e
            # _handle_read with mem_access inlined
            req = msg.src
            if e.state is _CLEAN:
                home.memory_accesses += 1
                res = banks[block % n_banks]
                free = res._free_at
                t2 = (t if t > free else free) + mem_occ
                res._free_at = t2
                res.busy_cycles += mem_occ
                res.reservations += 1
                if grants_exclusive is not None and grants_exclusive(
                    home, e, msg
                ):
                    # exclusive grant straight from memory (§3.2)
                    e.state = _MOD
                    e.owner = req
                    e.sharers.clear()
                    reply(_RD_RPL, req, block, t2, grant="MC",
                          prefetch=msg.prefetch)
                    return
                e.sharers.add(req)
                reply(_RD_RPL, req, block, t2, grant="S",
                      prefetch=msg.prefetch)
                return
            # MODIFIED: fetch from the owner (4-transfer miss)
            owner = e.owner
            if owner is None:
                raise SimulationError(
                    f"MODIFIED block {block} with no owner"
                )
            if owner == req:
                raise SimulationError(
                    f"node {req} read-missed block {block} it owns"
                )
            home.memory_accesses += 1
            res = banks[block % n_banks]
            free = res._free_at
            t2 = (t if t > free else free) + mem_occ
            res._free_at = t2
            res.busy_cycles += mem_occ
            res.reservations += 1
            if grants_exclusive is not None and grants_exclusive(
                home, e, msg
            ):
                xacts[block] = Xact(
                    kind="fetchinv_read", orig=msg, old_owner=owner
                )
                reply(_FETCH_INV, owner, block, t2, requester=req,
                      grant="MC", prefetch=msg.prefetch)
            else:
                xacts[block] = Xact(
                    kind="fetch_read", orig=msg, old_owner=owner
                )
                reply(_FETCH, owner, block, t2, requester=req)

        def make_write_entry(is_rdx):
            def write_entry(msg, t):
                block = msg.block
                if block in xacts:
                    pending.setdefault(block, deque()).append(msg)
                    return
                e = dir_entries.get(block)
                if e is None:
                    e = DirectoryEntry(sharers=make_sharers())
                    dir_entries[block] = e
                # _handle_write with mem_access inlined and the
                # needs_data kind test folded per slot
                req = msg.src
                if e.state is _MOD:
                    owner = e.owner
                    home.memory_accesses += 1
                    res = banks[block % n_banks]
                    free = res._free_at
                    t2 = (t if t > free else free) + mem_occ
                    res._free_at = t2
                    res.busy_cycles += mem_occ
                    res.reservations += 1
                    if owner == req:
                        # stale upgrade after an exclusivity grant
                        reply(_OWN_ACK, req, block, t2)
                        return
                    xacts[block] = Xact(
                        kind="fetchinv_write", orig=msg, old_owner=owner
                    )
                    reply(_FETCH_INV, owner, block, t2, requester=req,
                          grant="X")
                    return
                # CLEAN
                others = e.sharers - {req}
                if on_own_requested is not None:
                    on_own_requested(home, e, msg)
                needs_data = is_rdx or req not in e.sharers
                home.memory_accesses += 1
                res = banks[block % n_banks]
                free = res._free_at
                t2 = (t if t > free else free) + mem_occ
                res._free_at = t2
                res.busy_cycles += mem_occ
                res.reservations += 1
                if others:
                    xacts[block] = Xact(
                        kind="inv", orig=msg, acks_left=len(others),
                        needs_data=needs_data, targets=set(others),
                    )
                    for node in sorted(others):
                        reply(_INV, node, block, t2, requester=req)
                    return
                # _grant_ownership, inlined
                e.state = _MOD
                e.owner = req
                e.sharers.clear()
                e.last_writer = req
                if on_own_granted is not None:
                    on_own_granted(home, e, req)
                if needs_data:
                    reply(_RDX_RPL, req, block, t2)
                else:
                    reply(_OWN_ACK, req, block, t2)

            return write_entry

        def wb_entry(msg, t):
            block = msg.block
            if block in xacts:
                pending.setdefault(block, deque()).append(msg)
                return
            e = dir_entries.get(block)
            if e is None:
                e = DirectoryEntry(sharers=make_sharers())
                dir_entries[block] = e
            handle_writeback(msg, e, t)

        def repl_entry(msg, t):
            block = msg.block
            if block in xacts:
                pending.setdefault(block, deque()).append(msg)
                return
            e = dir_entries.get(block)
            if e is None:
                e = DirectoryEntry(sharers=make_sharers())
                dir_entries[block] = e
            e.sharers.discard(msg.src)

        def ext_entry(msg, t):
            block = msg.block
            if block in xacts:
                pending.setdefault(block, deque()).append(msg)
                return
            e = dir_entries.get(block)
            if e is None:
                e = DirectoryEntry(sharers=make_sharers())
                dir_entries[block] = e
            if not (exts and on_home_request(home, msg, e, t)):
                raise SimulationError(
                    f"home {home.node_id}: unhandled request {msg.mtype}"
                )

        def ack_entry(msg, t):
            # _handle_ack with the directory-entry fetch inlined
            block = msg.block
            xact = xacts.get(block)
            if xact is None:
                raise SimulationError(
                    f"home {home.node_id}: stray {msg.mtype} for "
                    f"block {block}"
                )
            entry = dir_entries.get(block)
            if entry is None:
                entry = DirectoryEntry(sharers=make_sharers())
                dir_entries[block] = entry
            mtype = msg.mtype
            if mtype is _XFER_ACK and xact.kind in _FETCH_KINDS:
                finish_fetch(msg, xact, entry, t)
                return
            if mtype is _INV_ACK:
                if absorb_ack_payload is not None:
                    t = absorb_ack_payload(home, msg, t)
                xact.acks_left -= 1
                if xact.acks_left == 0:
                    finish_invalidation(block, xact, entry, t)
                return
            if on_home_ack is not None and on_home_ack(
                home, msg, xact, entry, t
            ):
                return
            raise SimulationError(
                f"home {home.node_id}: unexpected {msg.mtype} for "
                f"{xact.kind} transaction on block {block}"
            )

        entry_by_type = {
            MsgType.RD_REQ: read_entry,
            MsgType.RDX_REQ: make_write_entry(True),
            MsgType.OWN_REQ: make_write_entry(False),
            MsgType.WB: wb_entry,
            MsgType.REPL: repl_entry,
        }
        request_types = home._request_types
        for mt in HOME_BOUND:
            if mt in request_types:
                table[mt] = entry_by_type.get(mt, ext_entry)
            elif mt not in _SYNC_TYPES:
                table[mt] = ack_entry

    for dst, node in enumerate(system.nodes):
        compile_one(node.home, system._deliver_fns[dst])


# ----------------------------------------------------------------------
# FLWB drain pump
# ----------------------------------------------------------------------


def compile_write_drain(system: System) -> None:
    """Fuse each cache's FLWB drain pump into compiled closures.

    The generic drain costs three frames per buffered write --
    ``_drain_head`` -> ``_apply_write`` -> the extension pipeline's
    ``on_write`` loop -- plus an SLC probe through two more calls.
    Here the SLC line store, the write-state checks and the hook
    dispatch are folded into one closure per cache: a run without
    ``on_write`` hooks skips the hook site entirely, a single-hook run
    (CW's write cache) calls the extension method directly.

    ``_apply_write`` and ``_drain_head`` are installed as instance
    attributes, so the untouched slow paths (``_pump_drain``,
    ``_drain_resume``, ``_continue_drain``) transparently re-enter the
    compiled fast path through their ``self._drain_head`` /
    ``self._apply_write`` references.
    """
    sim = system.sim
    heap = sim._heap  # invariant: never rebound
    _DIRTY = CacheState.DIRTY
    _MIG = CacheState.MIG_CLEAN
    _INV = CacheState.INVALID
    _push = heappush

    def compile_one(cache) -> None:
        flwb = cache.flwb
        fifo = cache._flwb_fifo
        popleft = fifo.popleft
        flwb_cap = flwb.capacity
        slwb_entries = cache.slwb._entries
        slwb_cap = cache.slwb.capacity
        res = cache._slc_res
        occ = cache._slc_access
        slc = cache.slc
        lines_get = slc._lines.get
        infinite = slc._infinite
        n_sets = slc._n_sets
        bs = cache._bsize
        pending_writes = cache._pending_writes
        arm_marker = cache._arm_marker
        notify_space = cache._notify_flwb_space
        space_waiters = cache._flwb_space_waiters
        when_slwb_room = cache.when_slwb_room
        drain_resume = cache._drain_resume
        issue_ownership = cache._issue_ownership
        on_write = _hook(cache.extensions, "on_write")

        def apply_write(addr):
            # CacheController._apply_write with the SLC probe and the
            # extension hook dispatch folded in
            block = addr // bs
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and (
                line.block != block or line.state is _INV
            ):
                line = None
            if line is not None:
                state = line.state
                if state is _DIRTY:
                    line.modified_since_update = True
                    return True
                if state is _MIG:
                    line.state = _DIRTY
                    line.modified_since_update = True
                    return True
            if on_write is not None:
                handled = on_write(
                    cache, block, (addr % bs) // WORD_SIZE, line
                )
                if handled is not None:
                    return handled
            if block in pending_writes:
                return True
            if len(slwb_entries) >= slwb_cap:
                return False
            issue_ownership(block, line, None)
            return True

        def drain_head():
            # CacheController._drain_head, one frame per drained entry
            while True:
                if not fifo:
                    cache._draining = False
                    return
                head = fifo[0]
                marker = head.marker
                if marker is not None:
                    popleft()
                    arm_marker(marker)
                elif apply_write(head.addr):
                    popleft()
                    flwb._writes -= 1
                    if space_waiters:
                        notify_space()
                else:
                    when_slwb_room(drain_resume)
                    return
                if not fifo:
                    cache._draining = False
                    return
                now = sim.now
                free = res._free_at
                t1 = (now if now > free else free) + occ
                res._free_at = t1
                res.busy_cycles += occ
                res.reservations += 1
                if (heap and heap[0][0] <= t1) or t1 > sim._until:
                    _push(heap, (t1, sim._seq, drain_head, ()))
                    sim._seq += 1
                    return
                sim.now = t1
                sim._events_fired += 1

        def buffer_write_at(addr, t):
            # CacheController.buffer_write_at with _pump_drain inlined
            writes = flwb._writes + 1
            if writes > flwb_cap:
                raise OverflowError("FLWB overflow")
            flwb._writes = writes
            if writes > flwb.peak_occupancy:
                flwb.peak_occupancy = writes
            fifo.append(FlwbEntry(addr, t))
            if cache._draining:
                return
            cache._draining = True
            free = res._free_at
            t1 = (t if t > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            _push(heap, (t1, sim._seq, drain_head, ()))
            sim._seq += 1

        cache._apply_write = apply_write
        cache._drain_head = drain_head
        cache.buffer_write_at = buffer_write_at

    for node in system.nodes:
        compile_one(node.cache)


# ----------------------------------------------------------------------
# cache-side coherence handlers
# ----------------------------------------------------------------------


def compile_coherence_handlers(system: System) -> None:
    """Fuse the cache's coherence message handlers into closures.

    ``_on_write_reply``, ``_on_inv`` and ``_on_fetch`` each pay for an
    SLC probe, a ``slc_finish`` reservation and (for replies) the fill
    and ``release_slwb`` helpers -- all small calls on per-message
    paths.  Each is folded into one frame per cache, with the
    FETCH/FETCH_INV kind test resolved per transport-table slot and
    the classifier set operations inlined.  ``_issue_ownership`` (the
    write path's sole remaining helper) is compiled too and installed
    as an instance attribute, so both the compiled drain and the
    generic SC write path pick it up.
    """
    sim = system.sim
    heap = sim._heap  # invariant: never rebound
    _push = heappush
    _INV_STATE = CacheState.INVALID
    _DIRTY = CacheState.DIRTY
    _SHARED = CacheState.SHARED
    _OWNERSHIP = SlwbKind.OWNERSHIP
    _OWN_REQ = MsgType.OWN_REQ
    _RDX_REQ = MsgType.RDX_REQ
    _INV_ACK = MsgType.INV_ACK
    _RD_RPL = MsgType.RD_RPL
    _RDX_RPL = MsgType.RDX_RPL
    _XFER_ACK = MsgType.XFER_ACK

    def compile_one(cache, table) -> None:
        stats = cache.stats
        res = cache._slc_res
        occ = cache._slc_access
        slc = cache.slc
        lines_get = slc._lines.get
        infinite = slc._infinite
        n_sets = slc._n_sets
        slc_invalidate = slc.invalidate
        flc_fill = cache.flc.fill
        flc_invalidate = cache.flc.invalidate
        flc_fill_t = cache._flc_fill
        pending_reads = cache._pending_reads
        pr_get = pending_reads.get
        pending_writes = cache._pending_writes
        pw_get = pending_writes.get
        victims = cache._victims
        slwb = cache.slwb
        slwb_entries = slwb._entries
        slwb_cap = slwb.capacity
        slwb_waiters = cache._slwb_waiters
        eid_markers = cache._eid_markers
        marker_progress = cache._marker_progress
        classifier = cache.classifier
        ever_cached = classifier._ever_cached
        lost_coh = classifier._lost_to_coherence
        lost_ev = classifier._lost_to_eviction
        send_home = cache.send_home  # compiled by compile_send_helpers
        reply = cache.reply
        evict = cache._evict
        deliver = cache.deliver
        pipeline = cache.extensions
        on_fill = _hook(pipeline, "on_fill")
        on_invalidate = _hook(pipeline, "on_invalidate")

        def issue_ownership(block, line, sc_waiter):
            # CacheController._issue_ownership, SLWB alloc inlined
            eid = slwb._next_id
            slwb._next_id = eid + 1
            slwb_entries[eid] = _OWNERSHIP
            occupancy = len(slwb_entries)
            if occupancy > slwb.peak_occupancy:
                slwb.peak_occupancy = occupancy
            stats.ownership_requests += 1
            pending_writes[block] = _PendingWrite(
                block=block, slwb_id=eid, start=sim.now,
                sc_waiter=sc_waiter,
            )
            if line is not None or block in pending_reads:
                send_home(_OWN_REQ, block)
            else:
                send_home(_RDX_REQ, block)

        def on_write_reply(msg, t):
            # CacheController._on_write_reply with slc_finish, the
            # fill and release_slwb inlined
            block = msg.block
            pw = pending_writes.pop(block, None)
            if pw is None:
                raise SimulationError(
                    f"stray {msg.mtype} for block {block}"
                )
            free = res._free_at
            t1 = (t if t > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and (
                line.block != block or line.state is _INV_STATE
            ):
                line = None
            if line is None:
                # _fill, inlined
                line, victim = slc.insert(block, _DIRTY)
                ever_cached.add(block)
                lost_coh.discard(block)
                lost_ev.discard(block)
                if on_fill is not None:
                    on_fill(cache, line)
                if victim is not None:
                    evict(victim)
            else:
                line.state = _DIRTY
            line.modified_since_update = True
            line.prefetched = False
            if pw.read_waiters:
                flc_fill(block)
                done = t1 + flc_fill_t
                for cb in pw.read_waiters:
                    _push(heap, (done, sim._seq, cb, ()))
                    sim._seq += 1
            if pw.sc_waiter is not None:
                _push(heap, (t1, sim._seq, pw.sc_waiter, ()))
                sim._seq += 1
            # release_slwb, inlined
            eid = pw.slwb_id
            del slwb_entries[eid]
            if eid_markers:
                marker_progress(eid)
            while slwb_waiters and len(slwb_entries) < slwb_cap:
                slwb_waiters.popleft()()
            for deferred in pw.deferred:
                _push(heap, (t1, sim._seq, deliver, (deferred, t1)))
                sim._seq += 1

        def on_inv(msg, t):
            # CacheController._on_inv with the classifier inlined
            block = msg.block
            stats.invalidations_received += 1
            words = (
                on_invalidate(cache, block)
                if on_invalidate is not None else 0
            )
            line = slc_invalidate(block)
            if line is not None:
                lost_coh.add(block)
                lost_ev.discard(block)
                flc_invalidate(block)
            pr = pr_get(block)
            if pr is not None:
                pr.invalidated = True
            free = res._free_at
            t1 = (t if t > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            reply(_INV_ACK, msg.src, block, t1, words=words)

        def make_fetch(is_inv):
            def on_fetch(msg, t):
                # CacheController._on_fetch with the kind test folded
                # per slot (see the generic method for the deferral
                # and victim-buffer reasoning)
                block = msg.block
                line = lines_get(block if infinite else block % n_sets)
                if line is not None and (
                    line.block != block or line.state is _INV_STATE
                ):
                    line = None
                in_victims = block in victims
                if line is None and not in_victims:
                    pr = pr_get(block)
                    if pr is not None:
                        pr.deferred.append(msg)
                        return
                    pw = pw_get(block)
                    if pw is not None:
                        pw.deferred.append(msg)
                        return
                free = res._free_at
                t1 = (t if t > free else free) + occ
                res._free_at = t1
                res.busy_cycles += occ
                res.reservations += 1
                if line is not None and not in_victims:
                    was_modified = line.state is _DIRTY
                    dropped = False
                    if is_inv:
                        slc_invalidate(block)
                        flc_invalidate(block)
                        lost_coh.add(block)
                        lost_ev.discard(block)
                        dropped = True
                    else:
                        line.state = _SHARED
                        line.modified_since_update = False
                elif in_victims:
                    was_modified = victims[block]
                    dropped = True
                else:
                    raise SimulationError(
                        f"cache {cache.node_id}: FETCH for absent "
                        f"block {block}"
                    )
                if msg.requester >= 0:
                    rtype = _RDX_RPL if msg.grant == "X" else _RD_RPL
                    reply(rtype, msg.requester, block, t1,
                          grant=msg.grant)
                reply(_XFER_ACK, msg.src, block, t1,
                      was_modified=was_modified, drop=dropped)

            return on_fetch

        def slc_finish(t):
            # CacheController.slc_finish with the FCFS reservation
            # inlined; extension code reaches it through the instance
            # attribute, so CW/M/P message handlers get it for free
            free = res._free_at
            end = (t if t > free else free) + occ
            res._free_at = end
            res.busy_cycles += occ
            res.reservations += 1
            return end

        def release_slwb(eid):
            # CacheController.release_slwb, one frame
            del slwb_entries[eid]
            if eid_markers:
                marker_progress(eid)
            while slwb_waiters and len(slwb_entries) < slwb_cap:
                slwb_waiters.popleft()()

        fetch = make_fetch(False)
        fetch_inv = make_fetch(True)
        cache._issue_ownership = issue_ownership
        cache.slc_finish = slc_finish
        cache.release_slwb = release_slwb
        handlers = cache._handlers
        handlers[MsgType.RDX_RPL] = on_write_reply
        handlers[MsgType.OWN_ACK] = on_write_reply
        handlers[MsgType.INV] = on_inv
        handlers[MsgType.FETCH] = fetch
        handlers[MsgType.FETCH_INV] = fetch_inv
        table[MsgType.RDX_RPL] = on_write_reply
        table[MsgType.OWN_ACK] = on_write_reply
        table[MsgType.INV] = on_inv
        table[MsgType.FETCH] = fetch
        table[MsgType.FETCH_INV] = fetch_inv

    for dst, node in enumerate(system.nodes):
        compile_one(node.cache, system._deliver_fns[dst])


# ----------------------------------------------------------------------
# competitive-update (CW) message paths
# ----------------------------------------------------------------------


def compile_competitive(system: System) -> None:
    """Fuse the CW extension's per-message paths into closures.

    CW is the only extension that owns home replies (``UPD_PROP``,
    ``MIG_QUERY``, ``WC_ACK``) and home requests (``WC_FLUSH``), so the
    generic chain -- table fallback -> ``on_home_reply`` kind dispatch
    -> handler -> small ``ctrl`` helpers -- can collapse to one fused
    closure per transport-table slot, exactly like the base-protocol
    handlers.  The write-side helpers (``on_write``, ``_queue_flush``,
    ``_issue_flush``) are compiled per write-cache variant and
    installed on the extension instance, where both the compiled drain
    and the generic release path pick them up.

    Protocols without CW are untouched.
    """
    from repro.core.extensions.competitive_ext import CompetitiveExtension
    from repro.core.migratory import wants_interrogation
    from repro.mem.write_cache import WriteCacheEntry

    sim = system.sim
    _INV_STATE = CacheState.INVALID
    _DIRTY = CacheState.DIRTY
    _MOD = MemoryState.MODIFIED
    _WC_FLUSH_KIND = SlwbKind.WC_FLUSH
    _WC_FLUSH = MsgType.WC_FLUSH
    _WC_ACK = MsgType.WC_ACK
    _UPD_ACK = MsgType.UPD_ACK
    _UPD_PROP = MsgType.UPD_PROP
    _MIG_QUERY = MsgType.MIG_QUERY
    _MIG_RPL = MsgType.MIG_RPL
    _FETCH = MsgType.FETCH

    def compile_cache_side(cache, ext, table) -> None:
        stats = cache.stats
        res = cache._slc_res
        occ = cache._slc_access
        slc = cache.slc
        lines_get = slc._lines.get
        infinite = slc._infinite
        n_sets = slc._n_sets
        slc_invalidate = slc.invalidate
        flc_invalidate = cache.flc.invalidate
        pending_reads = cache._pending_reads
        slwb = cache.slwb
        slwb_entries = slwb._entries
        slwb_cap = slwb.capacity
        eid_markers = cache._eid_markers
        marker_progress = cache._marker_progress
        slwb_waiters = cache._slwb_waiters
        classifier = cache.classifier
        lost_coh = classifier._lost_to_coherence
        lost_ev = classifier._lost_to_eviction
        reply = cache.reply  # compiled by compile_send_helpers
        send_home = cache.send_home
        hold_marker = cache.hold_marker
        retry_read = cache.retry_read
        relinquish = cache.relinquish_ownership
        when_slwb_room = cache.when_slwb_room
        wcache = ext.wcache
        policy = ext.policy
        policy_on_update = policy.on_update
        policy_access = policy.on_local_access
        pending_flushes = ext._pending_flushes
        flush_queue = ext._flush_queue
        read_waiters = ext._read_waiters
        drain_flush_queue = ext._drain_flush_queue

        def issue_flush(entry, markers):
            # CompetitiveExtension._issue_flush, SLWB alloc inlined
            eid = slwb._next_id
            slwb._next_id = eid + 1
            slwb_entries[eid] = _WC_FLUSH_KIND
            occupancy = len(slwb_entries)
            if occupancy > slwb.peak_occupancy:
                slwb.peak_occupancy = occupancy
            stats.write_cache_flushes += 1
            pending_flushes.setdefault(entry.block, deque()).append(eid)
            for marker in markers:
                hold_marker(eid, marker)
            send_home(_WC_FLUSH, entry.block,
                      words=len(entry.dirty_words))

        def queue_flush(entry, markers):
            if len(slwb_entries) < slwb_cap:
                issue_flush(entry, markers)
            else:
                flush_queue.append((entry, markers))
                when_slwb_room(drain_flush_queue)

        if wcache is not None:
            wcache_write = wcache.write

            def on_write(ctrl, block, word, line):
                # write-cache variant of CompetitiveExtension.on_write
                if line is not None:
                    policy_access(line, modifying=True)
                victim = wcache_write(block, word, had_copy=line is not None)
                if victim is not None:
                    queue_flush(victim, [])
                return True

        else:

            def on_write(ctrl, block, word, line):
                # ref [10]'s variant: one single-word update per write
                if len(slwb_entries) >= slwb_cap:
                    return False
                if line is not None:
                    policy_access(line, modifying=True)
                issue_flush(
                    WriteCacheEntry(
                        block=block, dirty_words={word},
                        had_copy=line is not None,
                    ),
                    [],
                )
                return True

        def on_update(msg, t):
            # CompetitiveExtension._on_update, one frame
            block = msg.block
            stats.updates_received += 1
            free = res._free_at
            t1 = (t if t > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and (
                line.block != block or line.state is _INV_STATE
            ):
                line = None
            if line is None:
                drop = block not in pending_reads
            else:
                drop = policy_on_update(line)
                # keep local activity visible to the counter
                flc_invalidate(block)
                if drop:
                    slc_invalidate(block)
                    lost_coh.add(block)
                    lost_ev.discard(block)
                    stats.updates_dropped += 1
            reply(_UPD_ACK, msg.src, block, t1, drop=drop)

        def on_mig_query(msg, t):
            # CompetitiveExtension._on_mig_query, one frame
            block = msg.block
            free = res._free_at
            t1 = (t if t > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and (
                line.block != block or line.state is _INV_STATE
            ):
                line = None
            words = 0
            if line is None and block in pending_reads:
                give_up = False  # a fresh copy is on its way to us
            elif line is None:
                give_up = True
            elif line.modified_since_update or (
                wcache is not None and wcache.lookup(block) is not None
            ):
                give_up = True  # modified since the last update (§3.4)
                if wcache is not None:
                    entry = wcache.remove(block)
                    if entry is not None:
                        words = len(entry.dirty_words)
                slc_invalidate(block)
                flc_invalidate(block)
                lost_coh.add(block)
                lost_ev.discard(block)
            else:
                give_up = False
            reply(_MIG_RPL, msg.src, block, t1, give_up=give_up,
                  words=words)

        def on_wc_ack(msg, t):
            # CompetitiveExtension._on_wc_ack with release_slwb and
            # _flush_in_flight inlined
            block = msg.block
            fifo = pending_flushes.get(block)
            if not fifo:
                raise SimulationError(f"stray WC_ACK for block {block}")
            eid = fifo.popleft()
            if not fifo:
                del pending_flushes[block]
            if msg.exclusive:
                line = lines_get(block if infinite else block % n_sets)
                if line is not None and (
                    line.block != block or line.state is _INV_STATE
                ):
                    line = None
                if line is not None:
                    line.state = _DIRTY
                    line.modified_since_update = True
                else:
                    # the copy was victimized while the flush was in
                    # flight: relinquish the surprise ownership
                    relinquish(block)
            # release_slwb, inlined (may re-issue a queued flush)
            del slwb_entries[eid]
            if eid_markers:
                marker_progress(eid)
            while slwb_waiters and len(slwb_entries) < slwb_cap:
                slwb_waiters.popleft()()
            if block not in pending_flushes and not any(
                e2.block == block for e2, _m in flush_queue
            ):
                for cb, t0 in read_waiters.pop(block, ()):
                    retry_read(block, cb, t0)

        ext._issue_flush = issue_flush
        ext._queue_flush = queue_flush
        ext.on_write = on_write
        table[_UPD_PROP] = on_update
        table[_MIG_QUERY] = on_mig_query
        table[_WC_ACK] = on_wc_ack

    def compile_home_side(home, ext, table) -> None:
        xacts = home._xacts
        pending = home._pending
        dir_entries = home._dir_entries
        make_sharers = home._make_sharers
        banks = home._banks
        n_banks = home._n_banks
        mem_occ = home._mem_occ
        reply = home.reply  # compiled by compile_send_helpers
        protocol = ext._protocol
        finish_flush_sole = ext._finish_flush_sole

        def wc_flush_entry(msg, t):
            # transient check + entry fetch + the WC_FLUSH half of
            # CompetitiveExtension.on_home_request, one frame
            block = msg.block
            if block in xacts:
                pending.setdefault(block, deque()).append(msg)
                return
            e = dir_entries.get(block)
            if e is None:
                e = DirectoryEntry(sharers=make_sharers())
                dir_entries[block] = e
            src = msg.src
            home.memory_accesses += 1
            res = banks[block % n_banks]
            free = res._free_at
            t2 = (t if t > free else free) + mem_occ
            res._free_at = t2
            res.busy_cycles += mem_occ
            res.reservations += 1
            if e.state is _MOD:
                if e.owner == src:
                    # flusher already owns the block exclusively
                    reply(_WC_ACK, src, block, t2, exclusive=True)
                    return
                # dirty elsewhere: demote first, then replay
                xacts[block] = Xact(
                    kind="fetch_flush", orig=msg, old_owner=e.owner
                )
                reply(_FETCH, e.owner, block, t2, requester=-1)
                return
            others = e.sharers - {src}
            wants_migq = wants_interrogation(protocol, e, msg)
            e.last_updater = src
            if wants_migq:
                # §3.4: interrogate every other copy holder
                xacts[block] = Xact(
                    kind="migq", orig=msg, acks_left=len(others),
                    targets=set(others),
                )
                for node in sorted(others):
                    reply(_MIG_QUERY, node, block, t2)
                return
            if not others:
                finish_flush_sole(home, msg, e, t2)
                return
            xacts[block] = Xact(
                kind="upd", orig=msg, acks_left=len(others),
                targets=set(others),
            )
            for node in sorted(others):
                reply(_UPD_PROP, node, block, t2, words=msg.words)

        table[_WC_FLUSH] = wc_flush_entry

    for dst, node in enumerate(system.nodes):
        table = system._deliver_fns[dst]
        cw = next(
            (e for e in node.cache._exts
             if isinstance(e, CompetitiveExtension)),
            None,
        )
        if cw is not None:
            compile_cache_side(node.cache, cw, table)
        home_cw = next(
            (e for e in node.home._exts
             if isinstance(e, CompetitiveExtension)),
            None,
        )
        if home_cw is not None:
            compile_home_side(node.home, home_cw, table)


# ----------------------------------------------------------------------
# demand-read path
# ----------------------------------------------------------------------


def compile_read_path(system: System) -> None:
    """Fuse each cache's demand-read path into compiled closures.

    Three closures per cache, each line-for-line the generic chain it
    replaces with the per-run constants folded in:

    * ``read_at`` -- the processor-facing probe (FLC, FLWB forward,
      SLC reservation + elision, hit fill) with the miss path falling
      through into the fused ``demand_miss`` below,
    * ``_slc_read`` -- the scheduled (non-elided) SLC lookup,
    * ``demand_miss`` -- ``_demand_miss`` and the common immediate
      ``_issue_demand`` in one frame: miss classification against the
      classifier's sets, the SLWB allocation, the pending-read entry
      and the RD_REQ send (itself compiled).  The SLWB-full detour
      still defers to the generic ``_issue_demand``.
    * the ``RD_RPL`` handler -- pending-read retirement, the fill (or
      the invalidated-race fallback), waiter wakeup and the inlined
      ``release_slwb``, installed in the transport table and in
      ``_handlers`` so deferred redeliveries take the same path.

    Extension hook sites are specialized through :func:`_hook`.
    """
    sim = system.sim
    heap = sim._heap  # invariant: never rebound
    _push = heappush
    _INV = CacheState.INVALID
    _SHARED = CacheState.SHARED
    _MC = CacheState.MIG_CLEAN
    _READ = SlwbKind.READ
    _RD_REQ = MsgType.RD_REQ

    def compile_one(cache, table) -> None:
        stats = cache.stats
        flc_get = cache._flc_sets.get
        flc_nsets = cache._flc_nsets
        flc_hit = cache._flc_hit
        flc_fill_t = cache._flc_fill
        flc_fill = cache.flc.fill
        occ = cache._slc_access
        res = cache._slc_res
        fifo = cache._flwb_fifo
        contains_write_to = cache.flwb.contains_write_to
        slc = cache.slc
        lines_get = slc._lines.get
        infinite = slc._infinite
        n_sets = slc._n_sets
        bs = cache._bsize
        pr_get = cache._pending_reads.get
        pending_reads = cache._pending_reads
        pw_get = cache._pending_writes.get
        slwb = cache.slwb
        slwb_entries = slwb._entries
        slwb_cap = slwb.capacity
        slwb_waiters = cache._slwb_waiters
        eid_markers = cache._eid_markers
        marker_progress = cache._marker_progress
        classifier = cache.classifier
        ever_cached = classifier._ever_cached
        lost_coh = classifier._lost_to_coherence
        lost_ev = classifier._lost_to_eviction
        send_home = cache.send_home  # compiled by compile_send_helpers
        issue_demand = cache._issue_demand
        evict = cache._evict
        deliver = cache.deliver
        pipeline = cache.extensions
        on_read_hit = _hook(pipeline, "on_read_hit")
        absorbs_read = _hook(pipeline, "absorbs_read")
        defers_read = _hook(pipeline, "defers_read")
        on_read_merged = _hook(pipeline, "on_read_merged")
        on_demand_miss = _hook(pipeline, "on_demand_miss")
        on_miss_issued = _hook(pipeline, "on_miss_issued")
        on_fill = _hook(pipeline, "on_fill")

        def demand_miss(block, on_done, t0):
            # _demand_miss + the immediate _issue_demand, one frame
            stats.demand_read_misses += 1
            if block not in ever_cached:
                stats.cold_misses += 1
            elif block in lost_coh:
                stats.coherence_misses += 1
            else:
                stats.replacement_misses += 1
            if on_demand_miss is not None:
                on_demand_miss(cache, block)
            if len(slwb_entries) >= slwb_cap:
                slwb_waiters.append(
                    lambda: issue_demand(block, on_done, t0)
                )
                return
            # _issue_demand: the state may have moved, re-check exactly
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and line.block == block \
                    and line.state is not _INV:
                _push(heap, (sim.now, sim._seq, on_done, ()))
                sim._seq += 1
                return
            pr = pr_get(block)
            if pr is not None:
                pr.demand_waiters.append(on_done)
                return
            pw = pw_get(block)
            if pw is not None:
                pw.read_waiters.append(on_done)
                return
            if defers_read is not None and defers_read(
                cache, block, on_done, t0
            ):
                return
            # slwb.alloc(READ), inlined (room was checked above)
            eid = slwb._next_id
            slwb._next_id = eid + 1
            slwb_entries[eid] = _READ
            occupancy = len(slwb_entries)
            if occupancy > slwb.peak_occupancy:
                slwb.peak_occupancy = occupancy
            pending_reads[block] = _PendingRead(
                block=block, slwb_id=eid, is_prefetch=False,
                start=t0, demand_waiters=[on_done],
            )
            send_home(_RD_REQ, block)
            if on_miss_issued is not None:
                on_miss_issued(cache, block)

        def slc_read(block, on_done, t0):
            # CacheController._slc_read with probes and hooks folded
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and (
                line.block != block or line.state is _INV
            ):
                line = None
            if line is not None:
                if on_read_hit is not None:
                    on_read_hit(cache, line)
                flc_fill(block)
                _push(heap, (sim.now + flc_fill_t, sim._seq, on_done, ()))
                sim._seq += 1
                return
            if absorbs_read is not None and absorbs_read(cache, block):
                _push(heap, (sim.now + flc_fill_t, sim._seq, on_done, ()))
                sim._seq += 1
                return
            pr = pr_get(block)
            if pr is not None:
                if on_read_merged is not None:
                    on_read_merged(cache, pr)
                pr.demand_waiters.append(on_done)
                return
            pw = pw_get(block)
            if pw is not None:
                pw.read_waiters.append(on_done)
                return
            if defers_read is not None and defers_read(
                cache, block, on_done, t0
            ):
                return
            demand_miss(block, on_done, t0)

        def read_at(addr, t, on_done):
            # CacheController.read_at, fully folded
            block = addr // bs
            if flc_get(block % flc_nsets) == block:
                return t + flc_hit
            if fifo and contains_write_to(addr):
                stats.flwb_forwards += 1
                return t + flc_hit
            ready = t + flc_hit
            free = res._free_at
            t1 = (ready if ready > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            if (heap and heap[0][0] <= t1) or t1 > sim._until:
                _push(heap, (t1, sim._seq, slc_read, (block, on_done, t)))
                sim._seq += 1
                return -1
            sim.now = t1
            sim._events_fired += 1
            line = lines_get(block if infinite else block % n_sets)
            if line is not None and (
                line.block != block or line.state is _INV
            ):
                line = None
            if line is not None:
                if on_read_hit is not None:
                    on_read_hit(cache, line)
                flc_fill(block)
            elif absorbs_read is not None and absorbs_read(cache, block):
                pass  # resolved from the write cache, no FLC fill
            else:
                pr = pr_get(block)
                if pr is not None:
                    if on_read_merged is not None:
                        on_read_merged(cache, pr)
                    pr.demand_waiters.append(on_done)
                    return -1
                pw = pw_get(block)
                if pw is not None:
                    pw.read_waiters.append(on_done)
                    return -1
                if defers_read is not None and defers_read(
                    cache, block, on_done, t
                ):
                    return -1
                demand_miss(block, on_done, t)
                return -1
            t_done = t1 + flc_fill_t
            if (not heap or heap[0][0] > t_done) and t_done <= sim._until:
                sim.now = t_done
                return t_done
            _push(heap, (t_done, sim._seq, on_done, ()))
            sim._seq += 1
            return -1

        def on_rd_rpl(msg, t):
            # CacheController._on_rd_rpl with slc_finish, the fill and
            # release_slwb inlined
            block = msg.block
            pr = pending_reads.pop(block, None)
            if pr is None:
                raise SimulationError(f"stray RD_RPL for block {block}")
            free = res._free_at
            t1 = (t if t > free else free) + occ
            res._free_at = t1
            res.busy_cycles += occ
            res.reservations += 1
            state = _MC if msg.grant == "MC" else _SHARED
            demand = bool(pr.demand_waiters) or pr.merged_prefetch
            if pr.invalidated and state is not _MC:
                # invalidation raced the shared data (see the generic
                # method for the serialization argument)
                ever_cached.add(block)
                lost_coh.add(block)
                lost_ev.discard(block)
            else:
                # _fill, inlined
                line, victim = slc.insert(block, state)
                ever_cached.add(block)
                lost_coh.discard(block)
                lost_ev.discard(block)
                if on_fill is not None:
                    on_fill(cache, line)
                if victim is not None:
                    evict(victim)
                line.prefetched = pr.is_prefetch and not demand
            if pr.demand_waiters:
                done = t1 + flc_fill_t
                if not pr.invalidated:
                    flc_fill(block)
                stats.read_miss_latency_total += done - pr.start
                stats.read_miss_latency_count += 1
                for cb in pr.demand_waiters:
                    _push(heap, (done, sim._seq, cb, ()))
                    sim._seq += 1
            # release_slwb, inlined
            eid = pr.slwb_id
            del slwb_entries[eid]
            if eid_markers:
                marker_progress(eid)
            while slwb_waiters and len(slwb_entries) < slwb_cap:
                slwb_waiters.popleft()()
            for deferred in pr.deferred:
                _push(heap, (t1, sim._seq, deliver, (deferred, t1)))
                sim._seq += 1

        cache.read_at = read_at
        cache._slc_read = slc_read
        cache._demand_miss = demand_miss
        cache._handlers[MsgType.RD_RPL] = on_rd_rpl
        table[MsgType.RD_RPL] = on_rd_rpl

    for dst, node in enumerate(system.nodes):
        compile_one(node.cache, system._deliver_fns[dst])


# ----------------------------------------------------------------------
# processor issue loop
# ----------------------------------------------------------------------


def specialize_processor(proc: Processor) -> None:
    """Rebind ``proc._next`` to a compiled issue loop.

    Semantics identical to :meth:`Processor._next` (see its docstring
    for the crossing rule); the compiled form iterates the stream with
    ``for`` instead of explicit ``next()`` calls and keeps the
    crossing bound ``lim = min(heap_head - 1, horizon)`` cached across
    ops that provably cannot schedule events (think ops, FLC-hit
    probes), re-deriving it only after calls into the cache.
    """
    sim = proc._sim
    heap = sim._heap  # invariant: never rebound
    gen = proc._gen
    stats = proc.stats
    cache = proc._cache
    flwb = proc._flwb
    flc_sets = proc._flc_sets
    flc_nsets = proc._flc_nsets
    bsize = proc._bsize
    flc_hit = proc._flc_hit
    sc = proc._sc
    n_procs = proc._n_procs
    read_done = proc._read_done
    write_done = proc._write_done
    acquire_done = proc._acquire_done
    release_done = proc._release_done
    barrier_done = proc._barrier_done
    write_retry = proc._write_retry
    on_finish = proc._on_finish
    read_at = cache.read_at
    buffer_write_at = cache.buffer_write_at
    write_blocking_at = cache.write_blocking_at
    when_write_space = cache.when_write_space
    acquire_at = cache.acquire_at
    release_at = cache.release_at
    barrier_at = cache.barrier_at
    sets_get = flc_sets.get

    def _next(_push=heappush):
        horizon = sim._until
        t = sim.now
        credits = 0
        busy = 0
        nreads = 0
        nwrites = 0
        # inline consumption is allowed up to ``lim``: one compare per
        # op replaces the generic loop's heap peek + horizon test
        if heap:
            ht = heap[0][0] - 1
            lim = ht if ht < horizon else horizon
        else:
            lim = horizon
        for op in gen:
            kind = op[0]
            if kind == "think":
                dt = op[1]
                busy += dt
                t2 = t + dt
            elif kind == "read":
                nreads += 1
                block = op[1] // bsize
                if sets_get(block % flc_nsets) == block:
                    # FLC hit, probed without leaving the loop (the
                    # first check ``read_at`` would make, so skipping
                    # the call is exact)
                    busy += flc_hit
                    t2 = t + flc_hit
                else:
                    t2 = read_at(op[1], t, read_done)
                    if t2 < 0:
                        # miss: the controller owns the continuation
                        proc._issue_t0 = t
                        stats.busy += busy
                        stats.shared_reads += nreads
                        stats.shared_writes += nwrites
                        if credits:
                            sim._events_fired += credits
                        return
                    # store-to-load forward (dt == flc_hit) or an
                    # inline SLC hit (dt > flc_hit): same split as
                    # ``_read_done``
                    dt = t2 - t
                    if dt > flc_hit:
                        busy += flc_hit
                        stats.read_stall += dt - flc_hit
                    else:
                        busy += dt
                    # the cache call may have scheduled events
                    if heap:
                        ht = heap[0][0] - 1
                        lim = ht if ht < horizon else horizon
                    else:
                        lim = horizon
            elif kind == "write":
                nwrites += 1
                if sc:
                    proc._issue_t0 = t
                    stats.busy += busy
                    stats.shared_reads += nreads
                    stats.shared_writes += nwrites
                    write_blocking_at(op[1], write_done, t)
                    if credits:
                        sim._events_fired += credits
                    return
                if flwb._writes < flwb.capacity:
                    buffer_write_at(op[1], t)
                    busy += flc_hit
                    t2 = t + flc_hit
                    if heap:
                        ht = heap[0][0] - 1
                        lim = ht if ht < horizon else horizon
                    else:
                        lim = horizon
                else:
                    proc._stall_addr = op[1]
                    proc._stall_t0 = t
                    stats.busy += busy
                    stats.shared_reads += nreads
                    stats.shared_writes += nwrites
                    when_write_space(write_retry)
                    if credits:
                        sim._events_fired += credits
                    return
            elif kind == "acquire":
                stats.acquires += 1
                proc._issue_t0 = t
                stats.busy += busy
                stats.shared_reads += nreads
                stats.shared_writes += nwrites
                acquire_at(op[1], acquire_done, t)
                if credits:
                    sim._events_fired += credits
                return
            elif kind == "release":
                stats.releases += 1
                if sc:
                    proc._issue_t0 = t
                    stats.busy += busy
                    stats.shared_reads += nreads
                    stats.shared_writes += nwrites
                    release_at(op[1], t, release_done)
                    if credits:
                        sim._events_fired += credits
                    return
                # RCpc: the release is inserted and the processor
                # continues after the FLC write-through
                release_at(op[1], t)
                busy += flc_hit
                t2 = t + flc_hit
                if heap:
                    ht = heap[0][0] - 1
                    lim = ht if ht < horizon else horizon
                else:
                    lim = horizon
            elif kind == "barrier":
                stats.barriers += 1
                proc._issue_t0 = t
                stats.busy += busy
                stats.shared_reads += nreads
                stats.shared_writes += nwrites
                barrier_at(op[1], n_procs, barrier_done, t)
                if credits:
                    sim._events_fired += credits
                return
            else:
                raise SimulationError(f"unknown workload op {op!r}")
            if t2 > lim:
                # a queued event (or the run horizon) falls inside the
                # window: fall back to a real completion event at t2
                stats.busy += busy
                stats.shared_reads += nreads
                stats.shared_writes += nwrites
                if credits:
                    sim._events_fired += credits
                _push(heap, (t2, sim._seq, _next, ()))
                sim._seq += 1
                return
            t = t2
            credits += 1
        # stream exhausted at boundary ``t``; the crossing rule
        # guarantees nothing fires before ``t``, so finishing inline
        # is indistinguishable from the elided completion event.
        proc.finished = True
        stats.finish_time = t
        stats.busy += busy
        stats.shared_reads += nreads
        stats.shared_writes += nwrites
        if credits:
            sim._events_fired += credits
        on_finish(proc.node_id)

    proc._advance = _next


class SpecializedSystem(System):
    """A ``System`` with build-time-compiled dispatch.

    Transport, send helpers, home request entries and the processor
    issue loops are all replaced by per-run closures; every observable
    counter is bit-identical to :class:`~repro.system.System`.
    """

    def __init__(self, cfg: SystemConfig) -> None:
        super().__init__(cfg)
        send = compile_transport(self)
        compile_send_helpers(self, send)
        compile_cache_entries(self)
        compile_home_entries(self)
        compile_coherence_handlers(self)
        compile_competitive(self)
        compile_write_drain(self)
        compile_read_path(self)

    def _make_processor(self, i: int, workload: Iterable[Op]) -> Processor:
        proc = super()._make_processor(i, workload)
        specialize_processor(proc)
        return proc
