"""Trace-replay fast tier: a batched direct-execution timing model.

:func:`replay_trace` runs a recorded shared-reference stream
(:class:`~repro.trace.refstream.RefTrace`) through a self-contained
coherence and timing model instead of the discrete-event machine.
Where the event backend simulates every message, bus reservation and
buffer drain as its own scheduled event, the replay tier executes each
reference as one *atomic transaction*: the protocol state transition,
the message accounting and a contention-free latency charge all happen
at the issuing reference, and per-processor virtual clocks replace the
event heap.  Processors are interleaved in virtual-time order (the
earliest clock runs until it passes the next-earliest), so the global
reference order tracks the event schedule at reference granularity.

Fidelity contract (see ``docs/engine.md`` for the full statement):

* *Exact*: shared reference counts, per-processor op mix, and every
  purely stream-determined counter.
* *Faithful but order-sensitive*: miss classification and message
  counts follow the real protocol rules (write-invalidate base, P
  prefetching with exclusive read grants, CW write-cache/competitive
  updates, M migratory handoffs) applied to the replay interleaving;
  they drift from the event backend only where references race.
* *Approximate*: cycle counts.  Latencies are contention-free
  constants derived from :class:`~repro.config.TimingConfig`; queueing
  at buses, banks and the SLC pipeline is not modelled.

Replay is therefore valid for relative sweeps (sensitivity, scaling,
protocol ranking) and invalid for golden/paper tables, which must use
the event (or specialized) backend.
"""

from __future__ import annotations

from heapq import heappop, heappush

from repro.config import SystemConfig
from repro.core.messages import (
    BLOCK_BYTES,
    HEADER_BYTES,
    MSG_NAMES,
    SIZE_BY_TYPE,
    WORD_BYTES,
    MsgType,
)
from repro.sim.engine import SimulationError
from repro.stats.counters import MachineStats
from repro.trace.refstream import RefTrace

# line states (plain ints: the replay model has no per-line metadata
# object, just parallel dict entries)
_SHARED = 1
_DIRTY = 2
_EXCLUSIVE = 3      # exclusive-clean (P read grants, M migratory grants)

_OP_THINK, _OP_READ, _OP_WRITE = 0, 1, 2
_OP_ACQ, _OP_REL, _OP_BAR = 3, 4, 5


class _Latencies:
    """Contention-free latency constants for one configuration."""

    __slots__ = (
        "flc_hit", "flc_fill", "slc_hit", "read_local", "read_remote",
        "read_3hop", "own", "lock_rtt", "bar_lat", "drain", "net",
    )

    def __init__(self, cfg: SystemConfig) -> None:
        t = cfg.timing
        width = t.bus_width_bytes

        def occ(nbytes: int) -> int:
            cycles = -(-nbytes // width)
            return (cycles if cycles >= 1 else 1) * t.bus_transaction

        hdr = occ(HEADER_BYTES)
        data = occ(HEADER_BYTES + BLOCK_BYTES)
        net = cfg.network.uniform_latency
        self.net = net
        self.flc_hit = t.flc_hit
        self.flc_fill = t.flc_fill
        # SLC hit resolved inline: FLC probe + SLC pipe + FLC fill
        self.slc_hit = t.flc_hit + t.slc_access + t.flc_fill
        base = t.flc_hit + t.slc_access + t.flc_fill
        # request out, memory, data reply back (+ destination bus)
        self.read_local = base + hdr + t.memory_latency + data
        self.read_remote = base + hdr + net + t.memory_latency + data + net + data
        # dirty at a third node: request, forward, owner's data reply
        self.read_3hop = base + hdr + net + hdr + net + data + net + data
        # ownership upgrade: request + invalidation round + ack
        self.own = 2 * (hdr + net) + 2 * (hdr + net)
        self.lock_rtt = 2 * (hdr + net)
        self.bar_lat = hdr + net
        # one buffered write draining through the SLC pipeline
        self.drain = t.flc_hit + t.slc_access


class _Lock:
    """One lock's holder and FIFO wait queue."""

    __slots__ = ("held_by", "waiters")

    def __init__(self) -> None:
        self.held_by = -1
        self.waiters: list[int] = []


def replay_trace(cfg: SystemConfig, trace: RefTrace) -> MachineStats:
    """Replay ``trace`` on the machine ``cfg`` describes."""
    if trace.n_procs != cfg.n_procs:
        raise SimulationError(
            f"trace has {trace.n_procs} streams, config wants {cfg.n_procs}"
        )
    return _Replay(cfg, trace).run()


class _Replay:
    """One replay execution (single use)."""

    def __init__(self, cfg: SystemConfig, trace: RefTrace) -> None:
        self.cfg = cfg
        self.trace = trace
        self.n = cfg.n_procs
        self.lat = _Latencies(cfg)
        self.stats = MachineStats.for_nodes(self.n)
        self.bsize = cfg.cache.block_size
        self.blocks_per_page = cfg.cache.page_size // self.bsize

        proto = cfg.protocol
        self.p_on = proto.prefetch
        self.cw_on = proto.competitive_update
        self.m_on = proto.migratory
        self.pp = proto.prefetch_params
        self.cp = proto.competitive_params
        self.sc = cfg.consistency.value == "SC"

        n = self.n
        # per-node cache state
        self.flc_nsets = cfg.cache.flc_size // self.bsize
        self.flc = [dict() for _ in range(n)]
        slc_size = cfg.cache.slc_size
        self.slc_sets = (slc_size // self.bsize) if slc_size else 0
        self.slc_block = [dict() for _ in range(n)]   # key -> block
        self.slc_state = [dict() for _ in range(n)]   # block -> state
        self.slc_pref = [set() for _ in range(n)]     # prefetched, unused
        self.slc_fresh = [set() for _ in range(n)]    # accessed since update
        self.slc_count = [dict() for _ in range(n)]   # competitive countdown
        self.slc_mod = [set() for _ in range(n)]      # modified since update
        # miss classification
        self.ever = [set() for _ in range(n)]
        self.coh_lost = [set() for _ in range(n)]
        # directory
        self.sharers: dict[int, set] = {}
        self.owner: dict[int, int] = {}
        # M detection state (mirrors repro.core.migratory's policy)
        self.migratory: set[int] = set()
        self.last_writer: dict[int, int] = {}
        self.last_updater: dict[int, int] = {}
        # blocks written since the last incoming update (CW+M give-up)
        self.wrote_since = [set() for _ in range(n)]
        # CW write cache: direct-mapped like repro.mem.write_cache --
        # per node, (block % n_blocks) -> [block, set of dirty words]
        self.wcache = [dict() for _ in range(n)]
        self.wc_cap = cfg.cache.write_cache_blocks
        # adaptive sequential prefetching state
        self.pref_degree = [self.pp.initial_degree] * n
        self.pref_issued_w = [0] * n
        self.pref_useful_w = [0] * n
        # placement
        self.first_touch = cfg.page_placement == "first_touch"
        self.page_home: dict[int, int] = {}
        # per-proc execution state
        self.clock = [0] * n
        self.writes_done = [0] * n
        self.blocked = [False] * n
        # synchronization
        self.locks: dict[int, _Lock] = {}
        self.bar_arrivals: dict[int, list] = {}
        # network accounting
        ns = self.stats.network
        self.by_type = ns.by_type

    # -- infrastructure -------------------------------------------------

    def home_of(self, block: int) -> int:
        page = block // self.blocks_per_page
        home = self.page_home.get(page)
        if home is None:
            home = (self.toucher if self.first_touch
                    else page % self.n)
            self.page_home[page] = home
        return home

    def msg(self, mtype: int, src: int, dst: int, size: int = -1) -> None:
        """Account one message (local messages never hit the network)."""
        if src == dst:
            return
        if size < 0:
            size = SIZE_BY_TYPE[mtype]
            if size < 0:
                size = HEADER_BYTES
        ns = self.stats.network
        ns.messages += 1
        ns.bytes += size
        if size > HEADER_BYTES:
            ns.data_messages += 1
        name = MSG_NAMES[mtype]
        self.by_type[name] = self.by_type.get(name, 0) + 1

    # -- cache state helpers --------------------------------------------

    def install(self, node: int, block: int, state: int) -> None:
        """Fill ``block`` into node's SLC, evicting on conflict."""
        stats = self.stats.caches[node]
        key = block if not self.slc_sets else block % self.slc_sets
        blocks = self.slc_block[node]
        victim = blocks.get(key)
        if victim is not None and victim != block:
            vstate = self.slc_state[node].pop(victim, None)
            if vstate is not None:
                home = self.home_of(victim)
                if vstate in (_DIRTY, _EXCLUSIVE):
                    stats.writebacks += 1
                    self.msg(MsgType.WB, node, home)
                    self.msg(MsgType.WB_ACK, home, node)
                    if self.owner.get(victim) == node:
                        del self.owner[victim]
                else:
                    self.msg(MsgType.REPL, node, home)
                self.sharers.get(victim, set()).discard(node)
                self.coh_lost[node].discard(victim)
                self.flc[node].pop(victim % self.flc_nsets, None)
        blocks[key] = block
        self.slc_state[node][block] = state
        self.ever[node].add(block)
        self.coh_lost[node].discard(block)
        self.sharers.setdefault(block, set()).add(node)
        if state in (_DIRTY, _EXCLUSIVE):
            self.owner[block] = node

    def drop_copy(self, node: int, block: int, coherence: bool) -> None:
        """Remove node's copy (invalidation / update drop / fetch-away)."""
        state = self.slc_state[node].pop(block, None)
        if state is None:
            return
        key = block if not self.slc_sets else block % self.slc_sets
        if self.slc_block[node].get(key) == block:
            del self.slc_block[node][key]
        self.flc[node].pop(block % self.flc_nsets, None)
        self.sharers.get(block, set()).discard(node)
        if self.owner.get(block) == node:
            del self.owner[block]
        if coherence:
            self.coh_lost[node].add(block)
        self.slc_pref[node].discard(block)
        self.slc_mod[node].discard(block)

    def invalidate_sharers(self, block: int, keep: int, home: int) -> int:
        """INV every copy except ``keep``'s; returns sharer count."""
        holders = [q for q in self.sharers.get(block, ()) if q != keep]
        for q in holders:
            self.msg(MsgType.INV, home, q)
            self.msg(MsgType.INV_ACK, q, home, HEADER_BYTES)
            self.stats.caches[q].invalidations_received += 1
            self.drop_copy(q, block, coherence=True)
        return len(holders)

    # -- reference handlers ---------------------------------------------

    def do_read(self, p: int, block: int, t: int) -> int:
        """One shared read; returns its latency."""
        lat = self.lat
        # FLC probe
        if self.flc[p].get(block % self.flc_nsets) == block:
            return lat.flc_hit
        state = self.slc_state[p].get(block)
        if state is not None:
            # SLC hit
            if block in self.slc_pref[p]:
                self.slc_pref[p].discard(block)
                self.stats.caches[p].useful_prefetches += 1
                self.pref_useful_w[p] += 1
            self.slc_fresh[p].add(block)
            self.flc[p][block % self.flc_nsets] = block
            return lat.slc_hit
        if self.cw_on and self.wc_lookup(p, block) is not None:
            # read absorbed by the write cache
            return lat.slc_hit
        return self.demand_miss(p, block, t)

    def demand_miss(self, p: int, block: int, t: int) -> int:
        stats = self.stats.caches[p]
        stats.demand_read_misses += 1
        if block not in self.ever[p]:
            stats.cold_misses += 1
        elif block in self.coh_lost[p]:
            stats.coherence_misses += 1
        else:
            stats.replacement_misses += 1
        self.toucher = p
        home = self.home_of(block)
        self.msg(MsgType.RD_REQ, p, home)
        owner = self.owner.get(block)
        if owner is not None and owner != p:
            latency = self.serve_dirty_read(p, block, home, owner)
        else:
            # clean at home (or first touch): plain data reply
            self.msg(MsgType.RD_RPL, home, p)
            state = _SHARED
            if self.m_on and block in self.migratory:
                others = set(self.sharers.get(block, ())) - {p}
                if others:
                    # second reader on a clean migratory block: the
                    # pattern is read sharing -- revert
                    self.migratory.discard(block)
                else:
                    state = _EXCLUSIVE
            self.install(p, block, state)
            lat = self.lat
            latency = lat.read_local if home == p else lat.read_remote
        self.flc[p][block % self.flc_nsets] = block
        self.slc_fresh[p].add(block)
        stats.read_miss_latency_total += latency - self.lat.flc_hit
        stats.read_miss_latency_count += 1
        if self.p_on:
            self.issue_prefetches(p, block)
        return latency

    def serve_dirty_read(self, p: int, block: int, home: int, owner: int) -> int:
        """A read miss finding the block dirty/exclusive at ``owner``."""
        was_modified = self.slc_state[owner].get(block) == _DIRTY
        if self.m_on and block in self.migratory and not was_modified:
            # the exclusive copy is fetched away from an owner that
            # never wrote it: the prediction was wrong -- revert
            self.migratory.discard(block)
        if self.m_on and block in self.migratory:
            # migratory handoff: owner invalidated, requester gets the
            # (exclusive) copy directly
            self.msg(MsgType.FETCH_INV, home, owner)
            self.msg(MsgType.RD_RPL, owner, p)
            self.msg(MsgType.XFER_ACK, owner, home,
                     HEADER_BYTES + (BLOCK_BYTES if was_modified else 0))
            self.drop_copy(owner, block, coherence=True)
            self.install(p, block, _EXCLUSIVE)
        else:
            # demote the owner to shared, data to requester + home
            self.msg(MsgType.FETCH, home, owner)
            self.msg(MsgType.RD_RPL, owner, p)
            self.msg(MsgType.XFER_ACK, owner, home,
                     HEADER_BYTES + (BLOCK_BYTES if was_modified else 0))
            self.slc_state[owner][block] = _SHARED
            if self.owner.get(block) == owner:
                del self.owner[block]
            self.slc_mod[owner].discard(block)
            self.install(p, block, _SHARED)
        return self.lat.read_3hop

    def do_write(self, p: int, addr: int, t: int) -> int:
        """One shared write; returns the processor-visible latency."""
        block = addr // self.bsize
        state = self.slc_state[p].get(block)
        if state in (_DIRTY, _EXCLUSIVE):
            if state == _EXCLUSIVE:
                self.slc_state[p][block] = _DIRTY
            self.slc_mod[p].add(block)
            self.writes_done[p] = max(self.writes_done[p],
                                      t + self.lat.drain)
            return self.lat.flc_hit
        if self.cw_on:
            # CW never takes ownership: shared lines (and write
            # misses) absorb into the write cache and flush as updates
            return self.cw_write(p, addr, block, t)
        # base write-invalidate ownership path
        self.ownership(p, block, t, had_copy=state is not None)
        lat = self.lat.flc_hit if not self.sc else self.lat.own
        return lat

    def ownership(self, p: int, block: int, t: int, had_copy: bool) -> None:
        self.toucher = p
        home = self.home_of(block)
        stats = self.stats.caches[p]
        stats.ownership_requests += 1
        owner = self.owner.get(block)
        if had_copy:
            self.msg(MsgType.OWN_REQ, p, home)
            if self.m_on and not self.cw_on:
                # §3.2 detection: an ownership request from a sharer
                # while exactly one other copy -- the previous
                # writer's -- exists marks the block migratory
                others = set(self.sharers.get(block, ())) - {p}
                if len(others) == 1 and self.last_writer.get(block) in others:
                    self.migratory.add(block)
        else:
            self.msg(MsgType.RDX_REQ, p, home)
        if owner is not None and owner != p:
            self.msg(MsgType.FETCH_INV, home, owner)
            was_modified = self.slc_state[owner].get(block) == _DIRTY
            self.msg(MsgType.XFER_ACK, owner, home,
                     HEADER_BYTES + (BLOCK_BYTES if was_modified else 0))
            self.stats.caches[owner].invalidations_received += 1
            self.drop_copy(owner, block, coherence=True)
        else:
            self.invalidate_sharers(block, keep=p, home=home)
        if had_copy:
            self.msg(MsgType.OWN_ACK, home, p)
        else:
            self.msg(MsgType.RDX_RPL, home, p)
        self.install(p, block, _DIRTY)
        self.slc_mod[p].add(block)
        self.last_writer[block] = p
        self.writes_done[p] = max(self.writes_done[p], t + self.lat.own)

    def issue_prefetches(self, p: int, block: int) -> None:
        """Sequential prefetch of the blocks following a demand miss."""
        pp = self.pp
        stats = self.stats.caches[p]
        for k in range(1, self.pref_degree[p] + 1):
            cand = block + k
            if self.slc_state[p].get(cand) is not None:
                continue
            if self.cw_on and self.wc_lookup(p, cand) is not None:
                continue
            stats.prefetches_issued += 1
            self.pref_issued_w[p] += 1
            self.toucher = p
            home = self.home_of(cand)
            self.msg(MsgType.RD_REQ, p, home)
            owner = self.owner.get(cand)
            if owner is not None and owner != p:
                was_modified = self.slc_state[owner].get(cand) == _DIRTY
                self.msg(MsgType.FETCH, home, owner)
                self.msg(MsgType.RD_RPL, owner, p)
                self.msg(MsgType.XFER_ACK, owner, home,
                         HEADER_BYTES + (BLOCK_BYTES if was_modified else 0))
                self.slc_state[owner][cand] = _SHARED
                if self.owner.get(cand) == owner:
                    del self.owner[cand]
                self.slc_mod[owner].discard(cand)
                self.install(p, cand, _SHARED)
            else:
                self.msg(MsgType.RD_RPL, home, p)
                self.install(p, cand, _SHARED)
            self.slc_pref[p].add(cand)
            if self.pref_issued_w[p] >= pp.window:
                # adaptive degree: compare the useful fraction of the
                # last window against the two thresholds
                ratio = self.pref_useful_w[p] / self.pref_issued_w[p]
                if ratio > pp.high_mark:
                    self.pref_degree[p] = min(
                        self.pref_degree[p] + 1, pp.max_degree
                    )
                elif ratio < pp.low_mark:
                    self.pref_degree[p] = max(self.pref_degree[p] - 1, 1)
                self.pref_issued_w[p] = 0
                self.pref_useful_w[p] = 0

    # -- CW: write cache + competitive updates --------------------------

    def wc_lookup(self, p: int, block: int):
        """The dirty-word set ``block`` holds in p's write cache."""
        entry = self.wcache[p].get(block % self.wc_cap)
        if entry is not None and entry[0] == block:
            return entry[1]
        return None

    def cw_write(self, p: int, addr: int, block: int, t: int) -> int:
        """A write to a shared copy under CW: absorb in the write cache
        (or propagate per-write when the write cache is disabled)."""
        word = (addr % self.bsize) // WORD_BYTES
        if self.slc_state[p].get(block) is not None:
            # a write is a local access for the competitive counter
            self.slc_fresh[p].add(block)
        if not self.cp.use_write_cache:
            self.propagate_update(p, block, 1, t)
            return self.lat.flc_hit
        wc = self.wcache[p]
        idx = block % self.wc_cap
        entry = wc.get(idx)
        if entry is not None and entry[0] != block:
            # direct-mapped conflict: the resident entry flushes
            del wc[idx]
            self.stats.caches[p].write_cache_flushes += 1
            self.propagate_update(p, entry[0], len(entry[1]), t)
            entry = None
        if entry is None:
            entry = wc[idx] = [block, set()]
        entry[1].add(word)
        self.wrote_since[p].add(block)
        self.writes_done[p] = max(self.writes_done[p], t + self.lat.drain)
        return self.lat.flc_hit

    def flush_wc_block(self, p: int, block: int, t: int) -> None:
        idx = block % self.wc_cap
        entry = self.wcache[p].get(idx)
        if entry is None or entry[0] != block:
            return
        del self.wcache[p][idx]
        self.stats.caches[p].write_cache_flushes += 1
        self.propagate_update(p, block, len(entry[1]), t)

    def propagate_update(self, p: int, block: int, nwords: int, t: int) -> None:
        """Send the merged update home and run the competitive round."""
        self.toucher = p
        home = self.home_of(block)
        self.msg(MsgType.WC_FLUSH, p, home,
                 HEADER_BYTES + nwords * WORD_BYTES)
        self.wrote_since[p].discard(block)
        holders = set(self.sharers.get(block, ())) - {p}
        if (self.m_on and holders
                and len(self.sharers.get(block, ())) > 1
                and self.last_updater.get(block) not in (None, p)):
            # §3.4: interrogate every other copy holder instead of
            # updating it; holders that modified since the last update
            # give up their copies
            self.last_updater[block] = p
            give_ups = set()
            for q in sorted(holders):
                self.msg(MsgType.MIG_QUERY, home, q)
                gives = (block in self.wrote_since[q]
                         or self.wc_lookup(q, block) is not None)
                self.msg(MsgType.MIG_RPL, q, home)
                if gives:
                    give_ups.add(q)
                    if self.wc_lookup(q, block) is not None:
                        del self.wcache[q][block % self.wc_cap]
                    self.wrote_since[q].discard(block)
                    self.drop_copy(q, block, coherence=True)
            if give_ups == holders:
                # every holder gave up: migratory -- the flusher gets
                # the block back exclusively
                self.migratory.add(block)
                self.slc_state[p][block] = _DIRTY
                self.owner[block] = p
                self.slc_mod[p].add(block)
                self.msg(MsgType.WC_ACK, home, p)
                self.writes_done[p] = max(self.writes_done[p],
                                          t + self.lat.own)
                return
            remaining = holders - give_ups
            if not remaining:
                self.msg(MsgType.WC_ACK, home, p)
                self.writes_done[p] = max(self.writes_done[p],
                                          t + self.lat.own)
                return
        else:
            self.last_updater[block] = p
        # propagate the update to every other sharer; competitive
        # countdown drops copies not accessed since the last update
        threshold = self.cp.threshold
        for q in sorted(self.sharers.get(block, ())):
            if q == p:
                continue
            self.wrote_since[q].discard(block)
            self.msg(MsgType.UPD_PROP, home, q,
                     HEADER_BYTES + nwords * WORD_BYTES)
            if block in self.slc_fresh[q]:
                # accessed since the last update: the competitive
                # counter resets and this update is accepted
                self.slc_fresh[q].discard(block)
                count = threshold
            else:
                count = self.slc_count[q].get(block, threshold) - 1
            self.slc_count[q][block] = count
            if count <= 0:
                self.stats.caches[q].updates_dropped += 1
                self.msg(MsgType.UPD_ACK, q, home, HEADER_BYTES)
                self.drop_copy(q, block, coherence=True)
            else:
                self.stats.caches[q].updates_received += 1
                self.msg(MsgType.UPD_ACK, q, home, HEADER_BYTES)
            # an update arrived: local accesses must re-mark freshness
            self.flc[q].pop(block % self.flc_nsets, None)
        self.msg(MsgType.WC_ACK, home, p)
        self.writes_done[p] = max(self.writes_done[p],
                                  t + self.lat.own)

    def flush_write_cache(self, p: int, t: int) -> None:
        entries = list(self.wcache[p].values())
        self.wcache[p].clear()
        for block, words in entries:
            self.stats.caches[p].write_cache_flushes += 1
            self.propagate_update(p, block, len(words), t)

    # -- synchronization -------------------------------------------------

    def do_acquire(self, p: int, addr: int) -> bool:
        """Returns True when granted now, False when the proc blocks."""
        block = addr // self.bsize
        self.toucher = p
        home = self.home_of(block)
        self.msg(MsgType.LOCK_REQ, p, home)
        lock = self.locks.setdefault(block, _Lock())
        t = self.clock[p]
        if lock.held_by < 0:
            lock.held_by = p
            self.msg(MsgType.LOCK_GRANT, home, p)
            stall = self.lat.lock_rtt if home != p else self.lat.flc_hit
            ps = self.stats.procs[p]
            ps.busy += self.lat.flc_hit
            ps.acquire_stall += max(0, stall - self.lat.flc_hit)
            self.clock[p] = t + max(stall, self.lat.flc_hit)
            return True
        lock.waiters.append(p)
        self.blocked[p] = True
        return False

    def do_release(self, p: int, addr: int, t: int) -> int:
        block = addr // self.bsize
        if self.cw_on:
            self.flush_write_cache(p, t)
        # RC: the release waits for earlier writes off the critical path
        perform = max(t, self.writes_done[p])
        self.toucher = p
        home = self.home_of(block)
        self.msg(MsgType.LOCK_REL, p, home)
        lock = self.locks.get(block)
        release_t = perform + (self.lat.bar_lat if home != p else 0)
        if lock is not None and lock.held_by == p:
            if lock.waiters:
                q = lock.waiters.pop(0)
                lock.held_by = q
                self.msg(MsgType.LOCK_GRANT, home, q)
                grant = release_t + (self.lat.bar_lat if home != q else 0)
                qs = self.stats.procs[q]
                qs.busy += self.lat.flc_hit
                qs.acquire_stall += max(0, grant - self.clock[q])
                self.clock[q] = max(self.clock[q], grant)
                self.blocked[q] = False
                self.wake.append(q)
            else:
                lock.held_by = -1
        if self.sc:
            self.msg(MsgType.LOCK_REL_ACK, home, p)
            stall = max(0, release_t - t)
            self.stats.procs[p].release_stall += stall
            return max(self.lat.flc_hit, stall)
        return self.lat.flc_hit

    def do_barrier(self, p: int, bar_id: int, t: int) -> bool:
        """Returns True when the barrier released immediately."""
        if self.cw_on:
            self.flush_write_cache(p, t)
        arrive = max(t, self.writes_done[p])
        home = bar_id % self.n
        self.msg(MsgType.BAR_ARRIVE, p, home)
        arrivals = self.bar_arrivals.setdefault(bar_id, [])
        arrivals.append((p, arrive))
        if len(arrivals) < self.n:
            self.blocked[p] = True
            return False
        # last arrival: wake everyone at the join point
        join = max(a for _, a in arrivals) + self.lat.bar_lat
        for q, q_arrive in arrivals:
            self.msg(MsgType.BAR_WAKE, home, q)
            self.stats.procs[q].acquire_stall += max(0, join - self.clock[q])
            self.clock[q] = max(self.clock[q], join)
            if q != p:
                self.blocked[q] = False
                self.wake.append(q)
        del self.bar_arrivals[bar_id]
        return True

    # -- main loop -------------------------------------------------------

    def run(self) -> MachineStats:
        n = self.n
        heap = [(0, p) for p in range(n)]
        idx = [0] * n
        # plain lists index ~2x faster than array('q') in the op loop
        streams = [self.trace.ops(p).tolist() for p in range(n)]
        ends = [len(s) for s in streams]
        finished = 0
        self.wake: list[int] = []
        self.toucher = 0
        procs = self.stats.procs
        clocks = self.clock
        blocked = self.blocked
        wake = self.wake
        bs = self.bsize
        fh = self.lat.flc_hit
        do_read = self.do_read
        do_write = self.do_write
        do_acquire = self.do_acquire
        do_release = self.do_release
        do_barrier = self.do_barrier
        _think, _read, _write = _OP_THINK, _OP_READ, _OP_WRITE
        _acq, _rel, _bar = _OP_ACQ, _OP_REL, _OP_BAR
        while heap:
            t, p = heappop(heap)
            if blocked[p]:
                continue
            next_t = heap[0][0] if heap else None
            flat = streams[p]
            i = idx[p]
            end = ends[p]
            clock = clocks[p]
            ps = procs[p]
            self.toucher = p
            # run this proc until it passes the next-earliest clock,
            # blocks, or finishes its stream
            while i < end:
                code = flat[i]
                value = flat[i + 1]
                i += 2
                if code == _think:
                    ps.busy += value
                    clock += value
                elif code == _read:
                    ps.shared_reads += 1
                    clocks[p] = clock
                    lat = do_read(p, value // bs, clock)
                    if lat > fh:
                        ps.busy += fh
                        ps.read_stall += lat - fh
                    else:
                        ps.busy += lat
                    clock += lat
                elif code == _write:
                    ps.shared_writes += 1
                    clocks[p] = clock
                    lat = do_write(p, value, clock)
                    if lat > fh:
                        ps.busy += fh
                        ps.write_stall += lat - fh
                    else:
                        ps.busy += lat
                    clock += lat
                elif code == _acq:
                    ps.acquires += 1
                    clocks[p] = clock
                    if not do_acquire(p, value):
                        break
                    clock = clocks[p]
                elif code == _rel:
                    ps.releases += 1
                    clocks[p] = clock
                    clock += do_release(p, value, clock)
                    ps.busy += fh
                elif code == _bar:
                    ps.barriers += 1
                    clocks[p] = clock
                    do_barrier(p, value, clock)
                    if blocked[p]:
                        break
                    clock = clocks[p]
                else:
                    raise SimulationError(f"bad op code {code} in trace")
                if next_t is not None and clock > next_t and i < end:
                    break
            idx[p] = i
            if clock > clocks[p]:
                clocks[p] = clock
            if i >= end and not blocked[p]:
                if not ps.finish_time:
                    ps.finish_time = clocks[p]
                    finished += 1
            elif not blocked[p]:
                heappush(heap, (clocks[p], p))
            for q in wake:
                if idx[q] >= ends[q]:
                    if not procs[q].finish_time:
                        procs[q].finish_time = clocks[q]
                        finished += 1
                else:
                    heappush(heap, (clocks[q], q))
            wake.clear()
        if finished != n:
            stuck = [p for p in range(n) if not procs[p].finish_time]
            raise SimulationError(
                f"replay quiesced with processors {stuck} blocked "
                "(lost lock/barrier wake)"
            )
        self.stats.execution_time = max(ps.finish_time for ps in procs)
        return self.stats
