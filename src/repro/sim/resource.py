"""First-come-first-served resources (buses, memory banks, mesh links).

Contention inside a node (paper §4: "contention is accurately modelled in
each node") and on mesh links (§5.3) is modelled with a *next-free-time*
reservation discipline: a request that becomes ready at time ``t`` and
occupies the resource for ``d`` cycles starts at ``max(t, free)`` and
pushes ``free`` to ``start + d``.  Because all requests flow through the
deterministic event heap, reservation order equals arrival order.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(slots=True)
class FcfsResource:
    """A single-server FCFS resource with next-free-time reservation."""

    name: str
    _free_at: int = 0
    busy_cycles: int = field(default=0, repr=False)
    reservations: int = field(default=0, repr=False)

    def reserve(self, ready: int, occupancy: int) -> int:
        """Reserve the resource; returns the start time of service.

        ``ready``     -- earliest time the request can use the resource.
        ``occupancy`` -- cycles the resource is held.
        """
        if occupancy < 0:
            raise ValueError(f"negative occupancy {occupancy}")
        free = self._free_at
        start = ready if ready > free else free
        self._free_at = start + occupancy
        self.busy_cycles += occupancy
        self.reservations += 1
        return start

    def finish_time(self, ready: int, occupancy: int) -> int:
        """Reserve and return the completion time (start + occupancy)."""
        if occupancy < 0:
            raise ValueError(f"negative occupancy {occupancy}")
        free = self._free_at
        start = ready if ready > free else free
        end = start + occupancy
        self._free_at = end
        self.busy_cycles += occupancy
        self.reservations += 1
        return end

    @property
    def free_at(self) -> int:
        """Time at which the resource next becomes idle."""
        return self._free_at

    def utilization(self, elapsed: int) -> float:
        """Fraction of ``elapsed`` cycles the resource was busy."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_cycles / elapsed)
