"""Discrete-event simulation substrate."""

from repro.sim.engine import SimulationError, Simulator
from repro.sim.resource import FcfsResource

__all__ = ["Simulator", "SimulationError", "FcfsResource"]
