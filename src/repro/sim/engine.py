"""Discrete-event simulation engine.

The whole machine model is driven by a single event heap.  Components
schedule callbacks at absolute times (:meth:`Simulator.at`) or relative
delays (:meth:`Simulator.after`).  Events scheduled for the same time fire
in scheduling order (a monotonically increasing sequence number breaks
ties), which makes every simulation run fully deterministic.

Time is measured in *pclocks* (processor clock cycles, 10 ns at the
paper's 100 MHz clock).  Times are plain integers; fractional delays are
rounded up by the caller where they arise (e.g. bus cycles).
"""

from __future__ import annotations

import heapq
from typing import Any, Callable


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Simulator:
    """A deterministic event-driven simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.after(5, fired.append, "a")
    >>> sim.after(3, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq: int = 0
        self._events_fired: int = 0

    def at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1

    def after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` pclocks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn, *args)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue."""
        return len(self._heap)

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        time, _seq, fn, args = heapq.heappop(self._heap)
        self.now = time
        self._events_fired += 1
        fn(*args)
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run until the event queue drains.

        ``until`` stops the clock at a given time (events beyond it
        remain queued, and ``now`` always advances to ``until`` even if
        the queue drains -- or was empty -- first); ``max_events``
        guards against runaway simulations.
        """
        while self._heap:
            if until is not None and self._heap[0][0] > until:
                break
            if max_events is not None and self._events_fired >= max_events:
                raise SimulationError(
                    f"event budget of {max_events} exhausted at t={self.now}"
                )
            self.step()
        if until is not None and until > self.now:
            self.now = until
