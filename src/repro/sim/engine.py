"""Discrete-event simulation engine.

The whole machine model is driven by a single event heap.  Components
schedule callbacks at absolute times (:meth:`Simulator.at`) or relative
delays (:meth:`Simulator.after`).  Events scheduled for the same time fire
in scheduling order (a monotonically increasing sequence number breaks
ties), which makes every simulation run fully deterministic.

Time is measured in *pclocks* (processor clock cycles, 10 ns at the
paper's 100 MHz clock).  Times are plain integers; fractional delays are
rounded up by the caller where they arise (e.g. bus cycles).

Fast-path contract (see docs/internals.md, "Performance notes"): the
processor's tight issue loop consumes local hits without scheduling
their completion events.  It relies on two intra-package invariants of
this class: ``_heap`` is never rebound (holders of a reference always
see the live queue), and ``_until`` always carries the active
``run(until=...)`` horizon (:data:`NO_HORIZON` outside such a window).
Elided events are re-counted through :meth:`credit_events` so
``events_fired`` stays bit-identical to the fully event-driven model.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable

#: value of ``Simulator._until`` when no bounded ``run(until=...)``
#: window is active; larger than any reachable simulation time.
NO_HORIZON = 1 << 62


class SimulationError(RuntimeError):
    """Raised when the simulation reaches an inconsistent state."""


class Simulator:
    """A deterministic event-driven simulator.

    >>> sim = Simulator()
    >>> fired = []
    >>> sim.after(5, fired.append, "a")
    >>> sim.after(3, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    """

    __slots__ = ("now", "_heap", "_seq", "_events_fired", "_until")

    def __init__(self) -> None:
        self.now: int = 0
        self._heap: list[tuple[int, int, Callable[..., None], tuple[Any, ...]]] = []
        self._seq: int = 0
        self._events_fired: int = 0
        self._until: int = NO_HORIZON

    def at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time}, current time is {self.now}"
            )
        heapq.heappush(self._heap, (time, self._seq, fn, args))
        self._seq += 1

    def after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Schedule ``fn(*args)`` after ``delay`` pclocks from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self.at(self.now + delay, fn, *args)

    @property
    def events_fired(self) -> int:
        """Number of events executed so far (including credited ones)."""
        return self._events_fired

    @property
    def pending_events(self) -> int:
        """Number of events still in the queue."""
        return len(self._heap)

    def credit_events(self, n: int) -> None:
        """Account ``n`` events whose scheduling was elided.

        The processor fast path consumes op completions inline instead
        of scheduling one heap event per boundary; crediting them here
        keeps :attr:`events_fired` equal to the fully event-driven
        count, which the golden parity tests pin exactly.
        """
        self._events_fired += n

    def step(self) -> bool:
        """Fire the next event.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        time, _seq, fn, args = heapq.heappop(self._heap)
        self.now = time
        self._events_fired += 1
        fn(*args)
        return True

    def run(self, until: int | None = None, max_events: int | None = None) -> None:
        """Run until the event queue drains.

        ``until`` stops the clock at a given time (events beyond it
        remain queued, and ``now`` always advances to ``until`` even if
        the queue drains -- or was empty -- first); ``max_events``
        guards against runaway simulations.
        """
        heap = self._heap
        pop = heapq.heappop
        horizon = until if until is not None else NO_HORIZON
        self._until = horizon
        # The dispatch loops accumulate fired events in a local and
        # flush it on exit: nothing reads the counter mid-run (inline
        # fast paths only *add* their elision credits to it).
        fired = 0
        try:
            if max_events is None and until is None:
                while heap:
                    time, _seq, fn, args = pop(heap)
                    self.now = time
                    fired += 1
                    fn(*args)
            elif until is None:
                # budget-only runs check the (credit-aware) budget at
                # chunk boundaries instead of before every event; the
                # chunk never exceeds the remaining budget, so the
                # guard still trips as soon as it is exhausted.
                while heap:
                    self._events_fired += fired
                    fired = 0
                    budget = max_events - self._events_fired
                    if budget <= 0:
                        raise SimulationError(
                            f"event budget of {max_events} exhausted "
                            f"at t={self.now}"
                        )
                    n = 1024 if budget > 1024 else budget
                    while heap and n:
                        time, _seq, fn, args = pop(heap)
                        self.now = time
                        fired += 1
                        fn(*args)
                        n -= 1
            else:
                while heap:
                    if heap[0][0] > horizon:
                        break
                    if max_events is not None and (
                        self._events_fired + fired >= max_events
                    ):
                        raise SimulationError(
                            f"event budget of {max_events} exhausted "
                            f"at t={self.now}"
                        )
                    time, _seq, fn, args = pop(heap)
                    self.now = time
                    fired += 1
                    fn(*args)
        finally:
            self._events_fired += fired
            self._until = NO_HORIZON
        if until is not None and until > self.now:
            self.now = until
