"""Pluggable execution backends.

An :class:`ExecutionBackend` turns one run spec (any object with the
:class:`~repro.sweep.spec.RunSpec` surface: ``to_config()``, ``app``,
``scale``, ``seed``, ``workload_kw``) into a
:class:`~repro.stats.counters.MachineStats`.  Three tiers trade
fidelity against speed:

``event``
    The reference discrete-event machine (:class:`repro.system.System`).
    Every protocol transaction, bus reservation and buffer drain is a
    scheduled event.  This is the tier the golden grids and the paper
    tables are pinned to.

``specialized``
    The same event machine with per-run compiled dispatch
    (:class:`repro.sim.specialized.SpecializedSystem`): hook pipelines,
    handler tables and timing constants are folded into closures when
    the system is built.  Counter-for-counter identical to ``event``
    (pinned by the golden parity suite), just faster.

``replay``
    The trace-record/replay fast tier: the workload's shared-reference
    stream is recorded once (:mod:`repro.trace.refstream`) and replayed
    through the batched direct-execution timing model of
    :mod:`repro.sim.replay`.  Reference counts are exact; miss/traffic
    counters are faithful but order-sensitive; cycles are approximate
    (see ``docs/engine.md``).  Use for relative sweeps, never for
    golden/paper tables.

Backends are resolved by name through :func:`get_backend`; the name
travels inside the spec (and therefore inside its content hash), so
results produced by different tiers never collide in the sweep cache.
"""

from __future__ import annotations

import os
from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import TYPE_CHECKING, Any

from repro.stats.counters import MachineStats

if TYPE_CHECKING:  # pragma: no cover
    from repro.trace.refstream import RefTrace, TraceStore

#: environment override for where the replay tier keeps trace files
#: (worker processes inherit it across spawn).
TRACE_DIR_ENV = "REPRO_TRACE_DIR"

#: default on-disk location of recorded reference traces.
DEFAULT_TRACE_DIR = os.path.join(".repro", "traces")


def _workload_streams(spec, cfg):
    from repro.workloads import build_workload

    return build_workload(
        spec.app, cfg, scale=spec.scale, seed=spec.seed,
        **dict(spec.workload_kw),
    )


class WarmContext:
    """Per-process memo of expensive per-spec build products.

    A long-lived worker (the persistent sweep pool, the HTTP service's
    serial engine) executes many specs that share a workload: the same
    (app, n_procs, scale, seed, workload kwargs, block/page size)
    under different protocols, directories or timings.  Building the
    reference streams is deterministic in exactly those fields (the
    same identity :func:`repro.trace.refstream.workload_key` hashes),
    and the simulators only *iterate* the frozen ``Op`` lists, so one
    built workload can safely drive any number of runs.

    The context memoizes

    * built workload streams (LRU-bounded; 256-proc stream lists are
      large), keyed by the workload identity,
    * one open :class:`~repro.trace.refstream.TraceStore` per trace
      directory, and the deserialized :class:`RefTrace` per workload,
      so repeated replay-tier cells skip the file read entirely.

    Pass one to :meth:`ExecutionBackend.execute` to opt in; ``None``
    (the default) keeps the historical build-per-run behavior.
    """

    def __init__(self, max_workloads: int = 8, max_traces: int = 8) -> None:
        self.max_workloads = max_workloads
        self.max_traces = max_traces
        self._workloads: OrderedDict[str, Any] = OrderedDict()
        self._stores: dict[str, Any] = {}
        self._traces: OrderedDict[str, Any] = OrderedDict()
        self.workload_hits = 0
        self.workload_misses = 0
        self.trace_hits = 0
        self.trace_misses = 0

    def streams_for(self, spec, cfg):
        """The spec's workload streams, built at most once per identity."""
        from repro.trace.refstream import workload_key

        key = workload_key(spec)
        streams = self._workloads.get(key)
        if streams is not None:
            self.workload_hits += 1
            self._workloads.move_to_end(key)
            return streams
        self.workload_misses += 1
        streams = _workload_streams(spec, cfg)
        self._workloads[key] = streams
        while len(self._workloads) > self.max_workloads:
            self._workloads.popitem(last=False)
        return streams

    def store_for(self, trace_dir: str) -> "TraceStore":
        """One open trace store per directory."""
        store = self._stores.get(trace_dir)
        if store is None:
            from repro.trace.refstream import TraceStore

            store = self._stores[trace_dir] = TraceStore(trace_dir)
        return store

    def trace_for(self, spec, trace_dir: str) -> "RefTrace":
        """The spec's reference trace, loaded/recorded at most once."""
        from repro.trace.refstream import workload_key

        key = f"{trace_dir}:{workload_key(spec)}"
        trace = self._traces.get(key)
        if trace is not None:
            self.trace_hits += 1
            self._traces.move_to_end(key)
            return trace
        self.trace_misses += 1
        trace = self.store_for(trace_dir).get_or_record(spec)
        self._traces[key] = trace
        while len(self._traces) > self.max_traces:
            self._traces.popitem(last=False)
        return trace

    def counters(self) -> dict:
        """JSON-able hit/miss digest (folded into pool statistics)."""
        return {
            "workload_hits": self.workload_hits,
            "workload_misses": self.workload_misses,
            "trace_hits": self.trace_hits,
            "trace_misses": self.trace_misses,
        }


class ExecutionBackend(ABC):
    """One way of turning a run spec into machine statistics."""

    #: registry name, also carried in :class:`RunSpec.backend`.
    name: str = ""
    #: True when the backend is counter-for-counter identical to the
    #: event engine; False when its results carry documented tolerances.
    exact: bool = True

    @abstractmethod
    def execute(self, spec, warm: WarmContext | None = None) -> MachineStats:
        """Run ``spec`` to completion and return its statistics.

        ``warm`` (optional) memoizes build products across calls; the
        result is identical with or without it.
        """

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<{type(self).__name__} {self.name!r}>"


class EventBackend(ExecutionBackend):
    """The reference discrete-event machine."""

    name = "event"
    exact = True

    def execute(self, spec, warm: WarmContext | None = None) -> MachineStats:
        from repro.system import System

        cfg = spec.to_config()
        streams = (warm.streams_for(spec, cfg) if warm is not None
                   else _workload_streams(spec, cfg))
        return System(cfg).run(streams)


class SpecializedBackend(ExecutionBackend):
    """The event machine with per-run compiled dispatch."""

    name = "specialized"
    exact = True

    def execute(self, spec, warm: WarmContext | None = None) -> MachineStats:
        from repro.sim.specialized import SpecializedSystem

        cfg = spec.to_config()
        streams = (warm.streams_for(spec, cfg) if warm is not None
                   else _workload_streams(spec, cfg))
        return SpecializedSystem(cfg).run(streams)


class ReplayBackend(ExecutionBackend):
    """Trace-record/replay: record the reference stream once, replay it
    through the batched timing model for every protocol/timing variant.
    """

    name = "replay"
    exact = False

    def __init__(self, trace_dir: str | os.PathLike | None = None) -> None:
        self._trace_dir = trace_dir

    @property
    def trace_dir(self) -> str:
        """Where traces live: explicit arg > $REPRO_TRACE_DIR > default."""
        if self._trace_dir is not None:
            return os.fspath(self._trace_dir)
        return os.environ.get(TRACE_DIR_ENV, DEFAULT_TRACE_DIR)

    def store(self) -> "TraceStore":
        from repro.trace.refstream import TraceStore

        return TraceStore(self.trace_dir)

    def execute(self, spec, warm: WarmContext | None = None) -> MachineStats:
        from repro.sim.replay import replay_trace

        if warm is not None:
            trace = warm.trace_for(spec, self.trace_dir)
        else:
            trace = self.store().get_or_record(spec)
        return replay_trace(spec.to_config(), trace)


#: backend registry, keyed by the name specs carry.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    EventBackend.name: EventBackend,
    SpecializedBackend.name: SpecializedBackend,
    ReplayBackend.name: ReplayBackend,
}

DEFAULT_BACKEND = EventBackend.name

#: valid ``RunSpec.backend`` values, in registry order.
BACKEND_NAMES = tuple(BACKENDS)


def get_backend(name: str | None = None, **kwargs) -> ExecutionBackend:
    """Instantiate the backend registered under ``name``.

    ``None`` (or ``""``) resolves to the default event backend; extra
    keyword arguments go to the backend constructor (only ``replay``
    takes any: ``trace_dir``).
    """
    key = name or DEFAULT_BACKEND
    try:
        cls = BACKENDS[key]
    except KeyError:
        raise ValueError(
            f"unknown execution backend {key!r}; "
            f"expected one of {', '.join(BACKEND_NAMES)}"
        ) from None
    return cls(**kwargs)
