"""Setuptools shim so that ``pip install -e .`` works without the
``wheel`` package (this environment is offline)."""

from setuptools import setup

setup()
