"""Benchmark: regenerate the §5.4 sensitivity studies."""

import pytest
from conftest import once

from repro.experiments import sensitivity

APPS = ("mp3d", "lu")


@pytest.mark.benchmark(group="sensitivity")
def test_small_buffers(benchmark, scale):
    data = once(benchmark, lambda: sensitivity.run_buffers(scale=scale, apps=APPS))
    print()
    print(sensitivity.render_buffers(data))
    for app in APPS:
        # §5.4: M and CW need less buffering than BASIC
        basic_slowdown = data[app]["BASIC"]
        for proto in ("CW", "M"):
            assert data[app][proto] <= basic_slowdown * 1.10, (app, proto)
        # combinations including them suffer at most mildly
        for proto in ("P+CW", "P+M"):
            assert data[app][proto] <= max(basic_slowdown * 1.10, 1.20), (
                app, proto,
            )


@pytest.mark.benchmark(group="sensitivity")
def test_limited_slc(benchmark, scale):
    data = once(
        benchmark, lambda: sensitivity.run_limited_slc(scale=scale, apps=APPS)
    )
    print()
    print(sensitivity.render_limited_slc(data))
    for app in APPS:
        # the combinations that win with infinite caches still win
        assert data[app]["P+CW"][0] < 1.0, app
