"""Benchmark: regenerate Figure 4 (network traffic per protocol)."""

import pytest
from conftest import once

from repro.experiments import figure4
from repro.workloads import APP_NAMES


@pytest.mark.benchmark(group="figure4")
def test_figure4_all_apps(benchmark, scale):
    data = once(benchmark, lambda: figure4.run(scale=scale, apps=APP_NAMES))
    print()
    print(figure4.render(data))
    for app in APP_NAMES:
        assert data[app]["BASIC"] == pytest.approx(100.0)
        # prefetching adds traffic everywhere
        assert data[app]["P"] > 100.0, app
    # the migratory optimization cuts traffic for the migratory apps
    for app in ("mp3d", "cholesky", "water"):
        assert data[app]["M"] < 100.0, app
    # and P+M stays leaner than P alone for them (freed bandwidth)
    for app in ("mp3d", "cholesky"):
        assert data[app]["P+M"] < data[app]["P"], app
