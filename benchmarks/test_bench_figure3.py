"""Benchmark: regenerate Figure 3 (SC execution times)."""

import pytest
from conftest import once

from repro.experiments import figure3


def _regenerate(app, scale):
    data = figure3.run(scale=scale, apps=(app,))
    print()
    print(figure3.render(data))
    return data[app]


@pytest.mark.benchmark(group="figure3")
def test_figure3_mp3d(benchmark, scale):
    entry = once(benchmark, lambda: _regenerate("mp3d", scale))
    sc = entry["sc"]
    base = sc["BASIC"].execution_time
    # M-SC attacks MP3D's write penalty (paper: up to ~39 %)
    assert sc["M"].execution_time < base * 0.85
    # P+M keeps M's gain (the additive margin is checked at full
    # scale in EXPERIMENTS.md; small runs add prefetch noise)
    assert sc["P+M"].execution_time < base


@pytest.mark.benchmark(group="figure3")
def test_figure3_cholesky(benchmark, scale):
    entry = once(benchmark, lambda: _regenerate("cholesky", scale))
    sc = entry["sc"]
    base = sc["BASIC"].execution_time
    assert sc["P+M"].execution_time < base
    # P+M under SC beats BASIC under RC for cholesky (§5.2)
    assert sc["P+M"].execution_time < entry["basic_rc"]


@pytest.mark.benchmark(group="figure3")
def test_figure3_water(benchmark, scale):
    entry = once(benchmark, lambda: _regenerate("water", scale))
    sc = entry["sc"]
    assert sc["M"].execution_time < sc["BASIC"].execution_time


@pytest.mark.benchmark(group="figure3")
def test_figure3_lu(benchmark, scale):
    entry = once(benchmark, lambda: _regenerate("lu", scale))
    sc = entry["sc"]
    # no migratory sharing in LU: M-SC == B-SC
    assert sc["M"].execution_time == pytest.approx(
        sc["BASIC"].execution_time, rel=0.02
    )


@pytest.mark.benchmark(group="figure3")
def test_figure3_ocean(benchmark, scale):
    entry = once(benchmark, lambda: _regenerate("ocean", scale))
    sc = entry["sc"]
    # M-SC trims ocean's write stall even without true migratory data
    assert sc["M"].stats.mean_write_stall <= sc["BASIC"].stats.mean_write_stall
