"""Benchmark: regenerate Table 2 (cold/coherence miss components)."""

import pytest
from conftest import once

from repro.experiments import table2
from repro.workloads import APP_NAMES


@pytest.mark.benchmark(group="table2")
def test_table2_all_apps(benchmark, scale):
    data = once(benchmark, lambda: table2.run(scale=scale, apps=APP_NAMES))
    print()
    print(table2.render(data))
    # the composition property behind Figure 2's additive gains:
    # P+CW's cold rate tracks P's for every application
    for app, (cold_err, _coh_err) in table2.composition_errors(data).items():
        p_cold = data[app]["P"][0]
        assert cold_err <= max(0.5, 0.25 * p_cold), app
    # P cuts the cold miss rate of the direct solvers by > 2x
    for app in ("lu", "cholesky"):
        assert data[app]["P"][0] < data[app]["BASIC"][0] / 2
