"""Benchmark-harness configuration.

Each benchmark regenerates one of the paper's tables or figures at a
reduced workload scale (full-scale regeneration is done by
``python -m repro.experiments.<name>``).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated rows/series alongside the timings.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--repro-scale",
        type=float,
        default=0.4,
        help="workload scale factor for the benchmark runs",
    )


@pytest.fixture
def scale(request):
    """Workload scale for benchmark runs."""
    return request.config.getoption("--repro-scale")


def once(benchmark, fn):
    """Run ``fn`` exactly once under the benchmark clock."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
