"""Benchmark: machine-size scaling study (extension)."""

import pytest
from conftest import once

from repro.experiments import scaling


@pytest.mark.benchmark(group="scaling")
def test_scaling_mp3d(benchmark, scale):
    data = once(
        benchmark,
        lambda: scaling.run(
            app="mp3d", scale=scale, sizes=(4, 16),
            directories=("full_map",),
        ),
    )
    print()
    print(scaling.render(data, app="mp3d"))
    per_size = data["full_map"]
    # the sharing-driven extensions (CW, M) gain ground as the machine
    # grows: their 16-processor relative time does not regress vs the
    # 4-processor one by more than noise
    for proto in ("CW", "M"):
        rel4 = per_size[4][proto][1]
        rel16 = per_size[16][proto][1]
        assert rel16 <= rel4 + 0.08, proto
    # the baseline's absolute time grows with contention
    assert per_size[16]["BASIC"][0] > 0
