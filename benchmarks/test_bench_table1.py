"""Benchmark: regenerate Table 1 (hardware-cost inventory).

Static, but kept in the harness so ``pytest benchmarks/`` regenerates
every table and figure of the paper in one command.
"""

import pytest
from conftest import once

from repro.experiments import table1


@pytest.mark.benchmark(group="table1")
def test_table1_inventory(benchmark):
    rows = once(benchmark, table1.run)
    print()
    print(table1.render(rows))
    by_name = {r.protocol: r for r in rows}
    assert by_name["BASIC"].slc_state_bits_per_line == 2
    assert by_name["BASIC"].memory_state_bits_per_line == 19  # N+3
    assert by_name["M"].memory_state_bits_per_line == 24
