"""Ablation benchmarks for the design choices DESIGN.md calls out.

Not a paper table, but the knobs the paper's §3 discusses in prose:

* **write cache + threshold 1 vs ref [10]'s threshold 4 without a
  write cache** -- §3.3: combining writes cuts traffic,
* **adaptive vs fixed-degree sequential prefetching** -- §3.1/ref [3]:
  adaptation protects workloads with little spatial locality,
* **CW exclusivity grants** -- the traffic/latency trade-off noted in
  DESIGN.md §5.6.
"""

import pytest
from conftest import once

from repro.config import (
    CompetitiveConfig,
    PrefetchConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.system import System
from repro.workloads import build_workload


def run_proto(app, proto, scale):
    cfg = SystemConfig(protocol=proto)
    return System(cfg).run(build_workload(app, cfg, scale=scale))


@pytest.mark.benchmark(group="ablation")
def test_write_cache_vs_classic_competitive(benchmark, scale):
    """§3.3: write cache + threshold 1 vs threshold 4, no write cache."""

    def run():
        out = {}
        for name, params in (
            ("wcache+C1", CompetitiveConfig()),
            ("classic C4", CompetitiveConfig.classic()),
        ):
            proto = ProtocolConfig(
                competitive_update=True, competitive_params=params
            )
            out[name] = run_proto("mp3d", proto, scale)
        return out

    results = once(benchmark, run)
    print()
    for name, st in results.items():
        print(f"  {name:12s} exec={st.execution_time:8d} "
              f"traffic={st.network.bytes:8d}B "
              f"coh={st.miss_rate('coherence'):5.2f}%")
    # the write cache combines writes: less traffic than per-write
    # updates, at comparable performance
    assert (
        results["wcache+C1"].network.bytes
        < results["classic C4"].network.bytes
    )


@pytest.mark.benchmark(group="ablation")
def test_adaptive_vs_fixed_prefetching(benchmark, scale):
    """§3.1: adaptation turns prefetching off where locality is poor."""

    def run():
        out = {}
        for name, params in (
            ("adaptive", PrefetchConfig()),
            ("fixed K=4", PrefetchConfig(initial_degree=4, adaptive=False)),
        ):
            proto = ProtocolConfig(prefetch=True, prefetch_params=params)
            out[name] = {
                "lu": run_proto("lu", proto, scale),
                "mp3d": run_proto("mp3d", proto, scale),
            }
        return out

    results = once(benchmark, run)
    print()
    for name, apps in results.items():
        for app, st in apps.items():
            pf = sum(c.prefetches_issued for c in st.caches)
            uf = sum(c.useful_prefetches for c in st.caches)
            print(f"  {name:10s} {app:5s} exec={st.execution_time:8d} "
                  f"prefetches={pf:6d} useful={uf:6d} "
                  f"traffic={st.network.bytes:8d}B")
    # fixed K=4 sprays prefetches at mp3d's unprefetchable cells;
    # the adaptive scheme issues fewer for the same or better time
    fixed = results["fixed K=4"]["mp3d"]
    adaptive = results["adaptive"]["mp3d"]
    assert (
        sum(c.prefetches_issued for c in adaptive.caches)
        < sum(c.prefetches_issued for c in fixed.caches)
    )


@pytest.mark.benchmark(group="ablation")
def test_cw_exclusivity_grant(benchmark, scale):
    """DESIGN.md §5.6: exclusivity saves traffic, lengthens misses."""

    def run():
        out = {}
        for name, exclusive in (("updates-only", False), ("exclusive", True)):
            proto = ProtocolConfig(
                competitive_update=True,
                competitive_params=CompetitiveConfig(exclusive_grant=exclusive),
            )
            out[name] = run_proto("mp3d", proto, scale)
        return out

    results = once(benchmark, run)
    print()
    for name, st in results.items():
        lat = sum(c.read_miss_latency_total for c in st.caches)
        cnt = max(1, sum(c.read_miss_latency_count for c in st.caches))
        print(f"  {name:13s} exec={st.execution_time:8d} "
              f"avg-miss={lat / cnt:6.1f} traffic={st.network.bytes:8d}B")
    # keeping memory clean makes the remaining misses two-hop
    def avg(st):
        return sum(c.read_miss_latency_total for c in st.caches) / max(
            1, sum(c.read_miss_latency_count for c in st.caches)
        )

    assert avg(results["updates-only"]) < avg(results["exclusive"])
