"""Benchmark: regenerate Figure 2 (RC execution times, all protocols).

One benchmark per application; each prints the stacked execution-time
decomposition and the relative-time table, and asserts the figure's
headline shape for that application.
"""

import pytest
from conftest import once

from repro.experiments import figure2


def _regenerate(app, scale):
    data = figure2.run(scale=scale, apps=(app,))
    print()
    print(figure2.render(data))
    return data[app]


@pytest.mark.benchmark(group="figure2")
def test_figure2_mp3d(benchmark, scale):
    results = once(benchmark, lambda: _regenerate("mp3d", scale))
    base = results["BASIC"].execution_time
    # P+CW is the best RC combination for MP3D
    assert results["P+CW"].execution_time < base
    # CW+M wipes out CW's gain (§5.1)
    assert results["CW+M"].execution_time > results["CW"].execution_time


@pytest.mark.benchmark(group="figure2")
def test_figure2_cholesky(benchmark, scale):
    results = once(benchmark, lambda: _regenerate("cholesky", scale))
    base = results["BASIC"].execution_time
    assert results["P"].execution_time < base
    assert results["P+CW"].execution_time < results["CW"].execution_time


@pytest.mark.benchmark(group="figure2")
def test_figure2_water(benchmark, scale):
    results = once(benchmark, lambda: _regenerate("water", scale))
    assert results["P+CW"].execution_time < results["BASIC"].execution_time


@pytest.mark.benchmark(group="figure2")
def test_figure2_lu(benchmark, scale):
    results = once(benchmark, lambda: _regenerate("lu", scale))
    # M does nothing for LU; P does a lot
    assert results["M"].execution_time == pytest.approx(
        results["BASIC"].execution_time, rel=0.02
    )
    assert results["P"].execution_time < results["BASIC"].execution_time


@pytest.mark.benchmark(group="figure2")
def test_figure2_ocean(benchmark, scale):
    results = once(benchmark, lambda: _regenerate("ocean", scale))
    # CW removes almost all of Ocean's coherence misses
    assert results["P+CW"].execution_time < results["BASIC"].execution_time
