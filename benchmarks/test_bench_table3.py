"""Benchmark: regenerate Table 3 (mesh link-width sensitivity)."""

import pytest
from conftest import once

from repro.experiments import table3


@pytest.mark.benchmark(group="table3")
def test_table3_all_apps(benchmark, scale):
    data = once(benchmark, lambda: table3.run(scale=scale))
    print()
    print(table3.render(data))
    # narrowing the links always raises pressure (BASIC utilization)
    for app, util in data["utilization"].items():
        assert util[16] > util[64], app
    # P+M's advantage survives narrow links for the migratory apps
    for app in ("cholesky", "mp3d"):
        assert data["P+M"][app][16] < 1.05, app


@pytest.mark.benchmark(group="table3")
def test_table3_pcw_degrades_on_narrow_links(benchmark, scale):
    data = once(benchmark, lambda: table3.run(scale=scale, apps=("cholesky", "lu")))
    print()
    print(table3.render(data))
    # §5.3: P+CW's gains shrink as links narrow
    for app in ("cholesky", "lu"):
        assert data["P+CW"][app][16] >= data["P+CW"][app][64] - 0.02, app
