"""Benchmark: page-placement study (extension)."""

import pytest
from conftest import once

from repro.experiments import placement


@pytest.mark.benchmark(group="placement")
def test_placement_study(benchmark, scale):
    data = once(
        benchmark, lambda: placement.run(scale=scale, apps=("lu", "ocean"))
    )
    print()
    print(placement.render(data))
    for app in ("lu", "ocean"):
        for proto in placement.PROTOCOLS:
            rr = data[app][(proto, "round_robin")]
            ft = data[app][(proto, "first_touch")]
            # the policies differ, but neither catastrophically
            assert 0.5 < ft / rr < 1.6, (app, proto)
