#!/usr/bin/env python
"""Block autopsy: trace the coherence life of one memory block.

Attaches the protocol-message tracer to a running system and prints
every message concerning a chosen block -- the exact tool you reach
for when asking "why did this block ping-pong?".  The default target
is an MP3D space cell, whose migratory read-modify-write life is the
paper's §3.2 motivating pattern; run it once under BASIC and once
under M to watch the ownership requests disappear.

Run:  python examples/block_autopsy.py [--protocol M] [--limit 30]
"""

import argparse

from repro import ALL_PROTOCOLS, System, SystemConfig
from repro.trace import MessageTracer
from repro.workloads import build_workload


def autopsy(protocol: str, limit: int, scale: float):
    cfg = SystemConfig().with_protocol(protocol)
    streams = build_workload("mp3d", cfg, scale=scale)
    system = System(cfg)
    tracer = MessageTracer.attach(system)
    system.run(streams)

    # pick the busiest migratory cell: the block with the most traffic
    census = {}
    for rec in tracer:
        census[rec.block] = census.get(rec.block, 0) + 1
    block = max(census, key=census.get)
    records = tracer.for_block(block)

    print(f"\n[{protocol}] busiest block: {block} "
          f"({len(records)} messages); first {limit}:")
    for rec in records[:limit]:
        print(f"  {rec}")
    mix = {}
    for rec in records:
        mix[rec.mtype] = mix.get(rec.mtype, 0) + 1
    print("  message mix:", dict(sorted(mix.items(), key=lambda kv: -kv[1])))
    return mix


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--protocol", choices=ALL_PROTOCOLS, default=None,
                        help="trace a single protocol instead of the "
                             "BASIC-vs-M comparison")
    parser.add_argument("--limit", type=int, default=24)
    parser.add_argument("--scale", type=float, default=0.4)
    args = parser.parse_args()

    if args.protocol:
        autopsy(args.protocol, args.limit, args.scale)
        return
    basic = autopsy("BASIC", args.limit, args.scale)
    mig = autopsy("M", args.limit, args.scale)
    print("\nunder M the OWN_REQ / INV / INV_ACK triple vanishes:")
    for key in ("OWN_REQ", "INV", "FETCH_INV", "RD_REQ"):
        print(f"  {key:10s} BASIC {basic.get(key, 0):4d}   "
              f"M {mig.get(key, 0):4d}")


if __name__ == "__main__":
    main()
