#!/usr/bin/env python
"""Bring your own workload: a producer-consumer pipeline.

Shows the workload API: build per-processor reference streams with
StreamBuilder, lay data out with AddressSpace, then measure which
protocol extension suits *your* sharing pattern.

The example implements a software pipeline: each processor repeatedly
writes a batch of items into its output queue and reads its upstream
neighbour's queue -- classic producer-consumer sharing.  A
write-invalidate protocol ping-pongs on the queue blocks; the
competitive-update mechanism keeps the consumer's copies alive.

Run:  python examples/custom_workload.py [--rounds 40]
"""

import argparse

from repro import System, SystemConfig
from repro.experiments.formats import render_table
from repro.mem.addrmap import AddressMap, AddressSpace
from repro.workloads.base import BLOCK, StreamBuilder


def build_pipeline(cfg: SystemConfig, rounds: int, queue_blocks: int = 8):
    """One stream per processor: produce locally, consume upstream."""
    amap = AddressMap(
        block_size=cfg.cache.block_size,
        page_size=cfg.cache.page_size,
        n_nodes=cfg.n_procs,
    )
    space = AddressSpace(amap)
    queues = [
        space.alloc_page_aligned(f"queue{p}", queue_blocks * BLOCK)
        for p in range(cfg.n_procs)
    ]
    streams = []
    for pid in range(cfg.n_procs):
        sb = StreamBuilder(seed=pid)
        upstream = queues[(pid - 1) % cfg.n_procs]
        mine = queues[pid]
        for r in range(rounds):
            # produce: write a batch of items into the local queue
            for b in range(queue_blocks):
                sb.write(mine + b * BLOCK + (r % 8) * 4)
                sb.think(6)
            # consume: read the upstream neighbour's batch
            for b in range(queue_blocks):
                sb.read(upstream + b * BLOCK)
                sb.think(6)
            sb.barrier(r)
        streams.append(sb.ops)
    return streams


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rounds", type=int, default=40)
    args = parser.parse_args()

    rows = []
    base_time = None
    for proto in ("BASIC", "P", "CW", "P+CW"):
        cfg = SystemConfig().with_protocol(proto)
        stats = System(cfg).run(build_pipeline(cfg, args.rounds))
        if base_time is None:
            base_time = stats.execution_time
        rows.append(
            (
                proto,
                stats.execution_time / base_time,
                stats.miss_rate("coherence"),
                f"{stats.network.bytes / 1024:,.0f} KiB",
            )
        )
    print(render_table(
        ("protocol", "rel. time", "coherence %", "traffic"),
        rows,
        title=f"producer-consumer pipeline, {args.rounds} rounds x 16 procs",
    ))
    print("\nCW keeps the consumers' copies alive: the producer's flushes")
    print("update them instead of invalidating, so coherence misses drop.")


if __name__ == "__main__":
    main()
