#!/usr/bin/env python
"""Quickstart: simulate MP3D under BASIC and under P+CW.

Builds the paper's 16-node CC-NUMA machine twice -- once with the
plain directory-based write-invalidate protocol (BASIC), once with
adaptive sequential prefetching plus the competitive-update mechanism
(P+CW) -- runs the MP3D-like workload on both and prints the paper's
execution-time decomposition side by side.

Run:  python examples/quickstart.py [--app mp3d] [--scale 1.0]
"""

import argparse

from repro import System, SystemConfig
from repro.workloads import APP_NAMES, build_workload


def simulate(app: str, protocol: str, scale: float):
    cfg = SystemConfig().with_protocol(protocol)
    streams = build_workload(app, cfg, scale=scale)
    stats = System(cfg).run(streams)
    return stats


def describe(name: str, stats) -> None:
    et = stats.execution_time
    print(f"\n[{name}]")
    print(f"  execution time   : {et:,} pclocks "
          f"({et * 10 / 1e6:.2f} ms at 100 MHz)")
    print(f"  busy             : {100 * stats.mean_busy / et:5.1f} %")
    print(f"  read stall       : {100 * stats.mean_read_stall / et:5.1f} %")
    print(f"  write stall      : {100 * stats.mean_write_stall / et:5.1f} %")
    print(f"  acquire stall    : {100 * stats.mean_acquire_stall / et:5.1f} %")
    print(f"  cold misses      : {stats.miss_rate('cold'):5.2f} % of refs")
    print(f"  coherence misses : {stats.miss_rate('coherence'):5.2f} % of refs")
    print(f"  network traffic  : {stats.network.bytes / 1024:,.0f} KiB")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", choices=APP_NAMES, default="mp3d")
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    basic = simulate(args.app, "BASIC", args.scale)
    combo = simulate(args.app, "P+CW", args.scale)

    describe("BASIC (write-invalidate, release consistency)", basic)
    describe("P+CW  (prefetching + competitive update)", combo)

    speedup = basic.execution_time / combo.execution_time
    print(f"\nP+CW speedup over BASIC on {args.app}: {speedup:.2f}x")


if __name__ == "__main__":
    main()
