#!/usr/bin/env python
"""Migratory-sharing microbenchmark: the ``x := x + 1`` pattern (§3.2).

Sixteen processors take turns incrementing a set of shared counters
inside critical sections -- the purest form of migratory sharing.  The
example contrasts BASIC and M under both consistency models and prints
the mechanics: ownership requests issued, migratory detections at the
home nodes, and where the time went.

Under SC, M removes the write stall (the read miss already returned an
exclusive copy).  Under RC the write stall is hidden anyway, but M
still shortens the critical sections (the release has no pending
ownership request to wait for), which shows up as acquire stall.

Run:  python examples/migratory_microbenchmark.py [--counters 8]
"""

import argparse

from repro import Consistency, System, SystemConfig
from repro.experiments.formats import render_table
from repro.mem.addrmap import AddressMap, AddressSpace
from repro.workloads.base import BLOCK, StreamBuilder


def build_counters(cfg: SystemConfig, n_counters: int, rounds: int):
    amap = AddressMap(n_nodes=cfg.n_procs)
    space = AddressSpace(amap)
    counters = space.alloc_page_aligned("counters", n_counters * BLOCK)
    locks = space.alloc_page_aligned("locks", n_counters * 256)
    streams = []
    for pid in range(cfg.n_procs):
        sb = StreamBuilder(seed=pid)
        for r in range(rounds):
            idx = (pid + r) % n_counters
            sb.acquire(locks + idx * 256)
            sb.rmw(counters + idx * BLOCK, think=4)  # x := x + 1
            sb.release(locks + idx * 256)
            sb.think(60)
        sb.barrier(0)
        streams.append(sb.ops)
    return streams


def run(protocol: str, consistency: Consistency, n_counters: int, rounds: int):
    cfg = SystemConfig(consistency=consistency).with_protocol(protocol)
    system = System(cfg)
    stats = system.run(build_counters(cfg, n_counters, rounds))
    return system, stats


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--counters", type=int, default=8)
    parser.add_argument("--rounds", type=int, default=24)
    args = parser.parse_args()

    rows = []
    for consistency in (Consistency.SC, Consistency.RC):
        base_time = None
        for proto in ("BASIC", "M"):
            system, stats = run(proto, consistency, args.counters, args.rounds)
            if base_time is None:
                base_time = stats.execution_time
            own = sum(c.ownership_requests for c in stats.caches)
            det = sum(n.home.migratory_detections for n in system.nodes)
            rows.append(
                (
                    f"{proto} / {consistency.value}",
                    stats.execution_time / base_time,
                    int(stats.mean_write_stall),
                    int(stats.mean_acquire_stall),
                    own,
                    det,
                )
            )
    print(render_table(
        ("design", "rel. time", "write stall", "acquire stall",
         "ownership reqs", "migratory detections"),
        rows,
        title=(
            f"{args.counters} shared counters, {args.rounds} "
            "lock-protected increments per processor"
        ),
    ))


if __name__ == "__main__":
    main()
