#!/usr/bin/env python
"""Network planning: pick a protocol for your link budget (§5.3).

Suppose you are sizing the mesh of a new machine: wide links are
expensive, narrow links may drown the extra traffic of aggressive
protocol extensions.  This example sweeps mesh link widths for a
workload and reports, per width, the best protocol and the peak link
utilization -- reproducing the paper's conclusion that P+CW wants
bandwidth while P+M tolerates narrow links.

Run:  python examples/network_planning.py --app mp3d --scale 0.6
"""

import argparse

from repro import System, SystemConfig
from repro.config import NetworkConfig, NetworkKind
from repro.experiments.formats import render_table
from repro.workloads import APP_NAMES, build_workload

PROTOCOLS = ("BASIC", "P+CW", "P+M")
WIDTHS = (64, 32, 16, 8)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", choices=APP_NAMES, default="mp3d")
    parser.add_argument("--scale", type=float, default=0.6)
    args = parser.parse_args()

    rows = []
    for width in WIDTHS:
        net = NetworkConfig(kind=NetworkKind.MESH, link_width_bits=width)
        times = {}
        peak_util = 0.0
        for proto in PROTOCOLS:
            cfg = SystemConfig(network=net).with_protocol(proto)
            system = System(cfg)
            stats = system.run(build_workload(args.app, cfg, scale=args.scale))
            times[proto] = stats.execution_time
            peak_util = max(
                peak_util,
                system.network.max_link_utilization(stats.execution_time),
            )
        best = min(times, key=times.get)
        rows.append(
            (
                f"{width}-bit",
                times["P+CW"] / times["BASIC"],
                times["P+M"] / times["BASIC"],
                f"{100 * peak_util:.0f} %",
                best,
            )
        )
    print(render_table(
        ("links", "P+CW / BASIC", "P+M / BASIC", "peak link util", "winner"),
        rows,
        title=f"[{args.app}] protocol choice vs mesh link width",
    ))


if __name__ == "__main__":
    main()
