#!/usr/bin/env python
"""Protocol shoot-out: all eight protocol combinations on one workload.

Runs BASIC, P, CW, M and every combination on a chosen application and
renders the Figure 2-style stacked execution-time decomposition, plus
a winners table with miss rates and traffic, so you can see *why* each
combination wins or loses.

Run:  python examples/protocol_shootout.py --app cholesky --scale 0.7
"""

import argparse

from repro import ALL_PROTOCOLS, System, SystemConfig
from repro.experiments.formats import decomposition, render_stacked_bars, render_table
from repro.workloads import APP_NAMES, build_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--app", choices=APP_NAMES, default="cholesky")
    parser.add_argument("--scale", type=float, default=0.7)
    args = parser.parse_args()

    results = {}
    for proto in ALL_PROTOCOLS:
        cfg = SystemConfig().with_protocol(proto)
        streams = build_workload(args.app, cfg, scale=args.scale)
        results[proto] = System(cfg).run(streams)
        print(f"simulated {proto:8s} "
              f"(exec {results[proto].execution_time:,} pclocks)")

    base = results["BASIC"].execution_time
    bars = [(proto, decomposition(st)) for proto, st in results.items()]
    print()
    print(render_stacked_bars(bars, reference=base,
                              title=f"[{args.app}] relative execution time"))
    print()
    rows = []
    for proto, st in sorted(results.items(), key=lambda kv: kv[1].execution_time):
        rows.append(
            (
                proto,
                st.execution_time / base,
                st.miss_rate("cold"),
                st.miss_rate("coherence"),
                st.network.bytes / results["BASIC"].network.bytes,
            )
        )
    print(render_table(
        ("protocol", "rel. time", "cold %", "coh %", "rel. traffic"),
        rows,
        title="ranking (best first)",
    ))


if __name__ == "__main__":
    main()
