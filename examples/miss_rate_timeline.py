#!/usr/bin/env python
"""Miss-rate timelines: direct vs iterative methods (paper §3.1).

"Contrary to common belief, the cold miss rate does not necessarily
decline with time ... This is true in general for direct
(non-iterative) solution methods in linear algebra, exemplified by LU
and Cholesky."  This example samples the machine every few thousand
cycles and plots ASCII timelines of the cold miss rate: LU's stays up
for the whole factorization (new panels keep being touched), while
Ocean's collapses after the first sweep (iterative reuse) -- which is
precisely why prefetching pays off so much for the direct solvers.

Run:  python examples/miss_rate_timeline.py [--scale 1.0]
"""

import argparse

from repro import System, SystemConfig
from repro.stats.epochs import EpochSampler, sparkline
from repro.workloads import build_workload


def timeline(app: str, scale: float, interval: int = 4000):
    cfg = SystemConfig()  # BASIC: no prefetching masking the cold misses
    system = System(cfg)
    sampler = EpochSampler.attach(system, interval=interval)
    system.run(build_workload(app, cfg, scale=scale))
    return sampler.epochs()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=1.0)
    args = parser.parse_args()

    for app, label in (
        ("lu", "LU      (direct)   "),
        ("cholesky", "Cholesky (direct)  "),
        ("ocean", "Ocean   (iterative)"),
    ):
        epochs = timeline(app, args.scale)
        cold = [e.cold_miss_rate for e in epochs]
        half = len(cold) // 2 or 1
        first, second = cold[:half], cold[half:]
        avg = lambda xs: sum(xs) / len(xs) if xs else 0.0
        print(f"{label} cold-miss rate over time "
              f"(first half {avg(first):4.1f} %, second half {avg(second):4.1f} %)")
        print(f"  |{sparkline(cold)}|")
        print()
    print("scale: each column is one sampling epoch; height = cold-miss")
    print("rate within that epoch, normalized to the app's own peak.")


if __name__ == "__main__":
    main()
