"""Tests for the coherence-invariant checker itself.

The checker must accept healthy systems (covered all over the suite)
and, crucially, *reject* corrupted ones -- otherwise the property
tests prove nothing.
"""

import pytest
from conftest import pad_streams, tiny_config

from repro.core.invariants import (
    InvariantViolation,
    check_all,
    check_coherence,
    check_inclusion,
    check_quiescent,
)
from repro.core.states import CacheState, MemoryState
from repro.system import System


def healthy_system():
    system = System(tiny_config())
    streams = pad_streams(
        [[("read", 0), ("write", 0)], [("read", 4096)]], 4
    )
    system.run(streams)
    return system


def test_healthy_system_passes():
    check_all(healthy_system())


def test_detects_double_exclusive():
    system = healthy_system()
    # forge a second dirty copy of block 0
    system.nodes[1].cache.slc.insert(0, CacheState.DIRTY)
    with pytest.raises(InvariantViolation, match="exclusive"):
        check_coherence(system)


def test_detects_exclusive_plus_shared():
    system = healthy_system()
    system.nodes[1].cache.slc.insert(0, CacheState.SHARED)
    with pytest.raises(InvariantViolation):
        check_coherence(system)


def test_detects_wrong_owner():
    system = healthy_system()
    entry = system.nodes[0].home.directory.entry(0)
    assert entry.state is MemoryState.MODIFIED
    entry.owner = 3  # lie about the owner
    with pytest.raises(InvariantViolation, match="MODIFIED"):
        check_coherence(system)


def test_detects_clean_with_exclusive_holder():
    system = healthy_system()
    entry = system.nodes[0].home.directory.entry(0)
    entry.state = MemoryState.CLEAN
    entry.owner = None
    with pytest.raises(InvariantViolation, match="CLEAN"):
        check_coherence(system)


def test_detects_unknown_sharer():
    system = healthy_system()
    # node 3 conjures a copy the directory never granted
    system.nodes[3].cache.slc.insert(4096 // 32, CacheState.SHARED)
    with pytest.raises(InvariantViolation, match="unknown"):
        check_coherence(system)


def test_detects_inclusion_violation():
    system = healthy_system()
    system.nodes[0].cache.flc.fill(999)  # FLC block absent from SLC
    with pytest.raises(InvariantViolation, match="inclusion"):
        check_inclusion(system)


def test_detects_unquiesced_cache():
    system = healthy_system()
    cache = system.nodes[0].cache
    from repro.core.cache_ctrl import _PendingRead

    cache._pending_reads[123] = _PendingRead(
        block=123, slwb_id=0, is_prefetch=False, start=0
    )
    with pytest.raises(InvariantViolation, match="outstanding"):
        check_quiescent(system)


def test_detects_stuck_home_transaction():
    system = healthy_system()
    from repro.core.home import _Xact
    from repro.core.messages import Message, MsgType

    system.nodes[0].home._xacts[7] = _Xact(
        kind="inv", orig=Message(MsgType.OWN_REQ, src=1, dst=0, block=7)
    )
    with pytest.raises(InvariantViolation, match="transactions"):
        check_quiescent(system)
