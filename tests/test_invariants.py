"""Tests for the coherence-invariant checker itself.

The checker must accept healthy systems (covered all over the suite)
and, crucially, *reject* corrupted ones -- otherwise the property
tests prove nothing.
"""

import pytest
from conftest import pad_streams, tiny_config

from repro.config import DirectoryConfig, SystemConfig
from repro.core.invariants import (
    InvariantViolation,
    check_all,
    check_coherence,
    check_inclusion,
    check_quiescent,
    check_safety,
    check_swmr,
)
from repro.core.states import CacheState, MemoryState
from repro.system import System


def healthy_system():
    system = System(tiny_config())
    streams = pad_streams(
        [[("read", 0), ("write", 0)], [("read", 4096)]], 4
    )
    system.run(streams)
    return system


def healthy_directory_system(directory: DirectoryConfig):
    """4 procs, block 0 read by three nodes, under ``directory``."""
    system = System(SystemConfig(n_procs=4, directory=directory))
    system.run(pad_streams([[("read", 0)], [("read", 0)], [("read", 0)]], 4))
    return system


def test_healthy_system_passes():
    check_all(healthy_system())


def test_detects_double_exclusive():
    system = healthy_system()
    # forge a second dirty copy of block 0
    system.nodes[1].cache.slc.insert(0, CacheState.DIRTY)
    with pytest.raises(InvariantViolation, match="exclusive"):
        check_coherence(system)


def test_detects_exclusive_plus_shared():
    system = healthy_system()
    system.nodes[1].cache.slc.insert(0, CacheState.SHARED)
    with pytest.raises(InvariantViolation):
        check_coherence(system)


def test_detects_wrong_owner():
    system = healthy_system()
    entry = system.nodes[0].home.directory.entry(0)
    assert entry.state is MemoryState.MODIFIED
    entry.owner = 3  # lie about the owner
    with pytest.raises(InvariantViolation, match="MODIFIED"):
        check_coherence(system)


def test_detects_clean_with_exclusive_holder():
    system = healthy_system()
    entry = system.nodes[0].home.directory.entry(0)
    entry.state = MemoryState.CLEAN
    entry.owner = None
    with pytest.raises(InvariantViolation, match="CLEAN"):
        check_coherence(system)


def test_detects_unknown_sharer():
    system = healthy_system()
    # node 3 conjures a copy the directory never granted
    system.nodes[3].cache.slc.insert(4096 // 32, CacheState.SHARED)
    with pytest.raises(InvariantViolation, match="unknown"):
        check_coherence(system)


def test_detects_inclusion_violation():
    system = healthy_system()
    system.nodes[0].cache.flc.fill(999)  # FLC block absent from SLC
    with pytest.raises(InvariantViolation, match="inclusion"):
        check_inclusion(system)


def test_detects_unquiesced_cache():
    system = healthy_system()
    cache = system.nodes[0].cache
    from repro.core.cache_ctrl import _PendingRead

    cache._pending_reads[123] = _PendingRead(
        block=123, slwb_id=0, is_prefetch=False, start=0
    )
    with pytest.raises(InvariantViolation, match="outstanding"):
        check_quiescent(system)


def test_detects_stuck_home_transaction():
    system = healthy_system()
    from repro.core.home import _Xact
    from repro.core.messages import Message, MsgType

    system.nodes[0].home._xacts[7] = _Xact(
        kind="inv", orig=Message(MsgType.OWN_REQ, src=1, dst=0, block=7)
    )
    with pytest.raises(
        InvariantViolation,
        match=r"home 0: transactions \[7\] still active at quiescence",
    ):
        check_quiescent(system)


def test_detects_line_unknown_to_directory():
    """Reverse-sweep regression: a resident SLC line whose block the
    home directory never recorded must be flagged.  The forward sweep
    (over ``known_blocks``) cannot see it."""
    system = healthy_system()
    # block 500 was never referenced: no directory entry anywhere
    system.nodes[2].cache.slc.insert(500, CacheState.SHARED)
    assert all(500 not in n.home.directory for n in system.nodes)
    with pytest.raises(
        InvariantViolation,
        match=r"node 2: SLC holds block 500 \(S\) unknown to its home",
    ):
        check_coherence(system)


def test_detects_exclusive_line_unknown_to_directory():
    system = healthy_system()
    system.nodes[1].cache.slc.insert(501, CacheState.DIRTY)
    with pytest.raises(InvariantViolation, match="unknown to its home"):
        check_coherence(system)


def test_inclusion_message_is_specific():
    system = healthy_system()
    system.nodes[0].cache.flc.fill(999)
    with pytest.raises(
        InvariantViolation,
        match=r"node 0: FLC holds block 999 absent from the SLC "
              r"\(inclusion violated\)",
    ):
        check_inclusion(system)


def test_representability_rejects_limited_overflow_shrunk():
    """A Dir_i-B entry past overflow must believe *every* node; losing
    one believed holder is a state the hardware cannot encode."""
    system = healthy_directory_system(
        DirectoryConfig(org="limited", pointers=1)
    )
    entry = system.nodes[0].home.directory.entry(0)
    assert entry.sharers.overflowed and len(entry.sharers) == 4
    set.discard(entry.sharers, 3)  # bypass the believed-set semantics
    with pytest.raises(
        InvariantViolation,
        match=r"believed sharers \[0, 1, 2\] are not representable "
              r"by the limited:1 directory",
    ):
        check_coherence(system)


def test_representability_rejects_unoverflowed_excess_pointers():
    system = healthy_directory_system(
        DirectoryConfig(org="limited", pointers=4)
    )
    entry = system.nodes[0].home.directory.entry(0)
    assert not entry.sharers.overflowed
    # forge a fifth believed holder without tripping the overflow bit
    set.update(entry.sharers, {0, 1, 2, 3})
    entry.sharers._org.pointers = 3
    with pytest.raises(
        InvariantViolation, match="not representable by the limited:3"
    ):
        check_coherence(system)


def test_representability_rejects_partial_coarse_region():
    """A coarse vector can only believe whole regions; a believed set
    with half a region is unencodable."""
    system = healthy_directory_system(
        DirectoryConfig(org="coarse", region_size=2)
    )
    entry = system.nodes[0].home.directory.entry(0)
    # readers 0,1,2 materialize both regions: {0,1} and {2,3}
    assert set(entry.sharers) == {0, 1, 2, 3}
    set.discard(entry.sharers, 3)  # bypass the region semantics
    with pytest.raises(
        InvariantViolation, match="not representable by the coarse:2"
    ):
        check_coherence(system)


def test_check_swmr_needs_no_directory_state():
    system = healthy_system()
    check_swmr(system)
    # two exclusive copies of a block no directory knows about
    system.nodes[2].cache.slc.insert(700, CacheState.DIRTY)
    system.nodes[3].cache.slc.insert(700, CacheState.DIRTY)
    with pytest.raises(
        InvariantViolation, match=r"block 700: multiple exclusive holders"
    ):
        check_swmr(system)


def test_check_safety_is_the_midflight_subset():
    system = healthy_system()
    check_safety(system)
    system.nodes[1].cache.slc.insert(0, CacheState.SHARED)
    with pytest.raises(InvariantViolation, match="coexists"):
        check_safety(system)
