"""Counter-for-counter parity of the extension pipeline.

The golden snapshots in ``tests/golden/extension_parity.json`` were
recorded *before* P/M/CW were extracted from the monolithic
cache/home controllers into :mod:`repro.core.extensions`.  Every cell
pins ``MachineStats.to_dict()``, the total event count and the
migratory detection/reversion counters for one (workload, protocol)
pair, so any drift in hook placement, marker accounting or timing
introduced by pipeline dispatch fails loudly here.

Regenerate (only for an intentional behaviour change) with
``PYTHONPATH=src python tests/golden/regen_extension_parity.py``.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.config import SystemConfig
from repro.system import System
from repro.workloads import build_workload

GOLDEN_PATH = Path(__file__).parent / "golden" / "extension_parity.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


@pytest.mark.parametrize("cell", sorted(GOLDEN), ids=str)
def test_pipeline_matches_pre_refactor_golden(cell: str) -> None:
    expected = GOLDEN[cell]
    cfg = SystemConfig(n_procs=expected["n_procs"]).with_protocol(
        expected["protocol"]
    )
    streams = build_workload(expected["app"], cfg, scale=expected["scale"])
    system = System(cfg)
    stats = system.run(streams)

    assert stats.to_dict() == expected["stats"]
    assert system.sim.events_fired == expected["events_fired"]
    assert (
        sum(n.home.migratory_detections for n in system.nodes)
        == expected["migratory_detections"]
    )
    assert (
        sum(n.home.migratory_reversions for n in system.nodes)
        == expected["migratory_reversions"]
    )
