"""Tests for the consistency-model policies and their observable effects."""

from conftest import BLOCK, pad_streams, run_streams, tiny_config

from repro.config import Consistency, ProtocolConfig
from repro.consistency import ConsistencyPolicy, protocol_feasible


class TestPolicies:
    def test_sc_policy(self):
        p = ConsistencyPolicy.for_model(Consistency.SC)
        assert p.blocking_writes
        assert p.blocking_releases
        assert not p.write_latency_hidden

    def test_rc_policy(self):
        p = ConsistencyPolicy.for_model(Consistency.RC)
        assert not p.blocking_writes
        assert not p.blocking_releases
        assert p.write_latency_hidden

    def test_cw_not_feasible_under_sc(self):
        cw = ProtocolConfig(competitive_update=True)
        assert not protocol_feasible(cw, Consistency.SC)
        assert protocol_feasible(cw, Consistency.RC)

    def test_others_feasible_everywhere(self):
        for name in ("BASIC", "P", "M", "P+M"):
            proto = ProtocolConfig.from_name(name)
            assert protocol_feasible(proto, Consistency.SC)
            assert protocol_feasible(proto, Consistency.RC)


class TestObservableBehaviour:
    def _write_heavy(self, consistency):
        a = 2 * 4096
        ops = []
        for i in range(8):
            ops.append(("write", a + i * BLOCK))
            ops.append(("think", 10))
        cfg = tiny_config(consistency=consistency)
        return run_streams(cfg, pad_streams([ops], 4))

    def test_rc_eliminates_write_penalty(self):
        system = self._write_heavy(Consistency.RC)
        assert system.stats.procs[0].write_stall == 0

    def test_sc_pays_write_penalty(self):
        system = self._write_heavy(Consistency.SC)
        assert system.stats.procs[0].write_stall > 1000

    def test_sc_is_slower_on_write_heavy_code(self):
        rc = self._write_heavy(Consistency.RC)
        sc = self._write_heavy(Consistency.SC)
        assert sc.stats.execution_time > rc.stats.execution_time

    def test_reads_block_under_both_models(self):
        a = 2 * 4096
        for model in (Consistency.RC, Consistency.SC):
            cfg = tiny_config(consistency=model)
            system = run_streams(cfg, pad_streams([[("read", a)]], 4))
            assert system.stats.procs[0].read_stall > 0
