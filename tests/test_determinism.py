"""Determinism under the synchronous fast path.

The issue loop and the inline event elisions must not introduce any
run-to-run or executor-dependent variation: the same spec must
produce bit-identical results in process, across processes, and in
the on-disk result cache.
"""

from conftest import tiny_config

from repro.config import SystemConfig
from repro.sweep import ResultCache, RunSpec, SweepEngine
from repro.system import System
from repro.workloads import build_workload

SPECS = [
    RunSpec.for_run("mp3d", protocol="P+CW+M", n_procs=4, scale=0.05),
    RunSpec.for_run("ocean", protocol="M", n_procs=4, scale=0.05),
]


class TestInProcess:
    def test_two_runs_identical(self):
        cfg = SystemConfig(n_procs=4).with_protocol("P+CW+M")
        streams = build_workload("mp3d", cfg, scale=0.05)
        first = System(cfg)
        stats1 = first.run(streams)
        second = System(cfg)
        stats2 = second.run(streams)
        assert first.sim.events_fired == second.sim.events_fired
        assert stats1.to_dict() == stats2.to_dict()

    def test_two_runs_identical_hitpath(self):
        cfg = tiny_config(n_procs=2)
        streams = build_workload("hitpath", cfg, scale=0.02)
        first = System(cfg)
        stats1 = first.run(streams)
        second = System(cfg)
        stats2 = second.run(streams)
        assert first.sim.events_fired == second.sim.events_fired
        assert stats1.to_dict() == stats2.to_dict()


def _canonical_cache_bytes(path):
    """Cached JSON re-encoded canonically, wall clock zeroed.

    ``wall_time`` is the one field that legitimately varies run to
    run; every simulated quantity must be bit-identical.
    """
    import json

    payload = json.loads(path.read_text())
    payload["wall_time"] = 0.0
    return json.dumps(payload, sort_keys=True).encode()


class TestAcrossExecutors:
    def test_serial_and_process_cache_bytes_identical(self, tmp_path):
        serial_cache = ResultCache(tmp_path / "serial")
        SweepEngine(executor="serial", cache=serial_cache).run(SPECS)
        pooled_cache = ResultCache(tmp_path / "process")
        SweepEngine(
            executor="process", max_workers=2, cache=pooled_cache
        ).run(SPECS)
        for spec in SPECS:
            a = _canonical_cache_bytes(serial_cache.path_for(spec))
            b = _canonical_cache_bytes(pooled_cache.path_for(spec))
            assert a == b, f"executor-dependent result for {spec}"
