"""Tests for the experiment drivers (tiny scale, structure-level)."""

import pytest

from repro.experiments import figure2, figure3, figure4, sensitivity, table1, table2, table3

APPS = ("water",)  # a single fast application keeps these tests quick
SCALE = 0.3


class TestFigure2:
    def test_runs_and_renders(self):
        data = figure2.run(scale=SCALE, apps=APPS,
                           protocols=("BASIC", "P", "CW"))
        text = figure2.render(data)
        assert "Figure 2" in text
        assert "water" in text
        assert "BASIC" in text and "CW" in text

    def test_relative_times_positive(self):
        data = figure2.run(scale=SCALE, apps=APPS,
                           protocols=("BASIC", "P+CW"))
        base = data["water"]["BASIC"].execution_time
        assert base > 0
        assert data["water"]["P+CW"].execution_time > 0


class TestTable2:
    def test_reports_all_four_protocols(self):
        data = table2.run(scale=SCALE, apps=APPS)
        assert set(data["water"]) == {"BASIC", "P", "CW", "P+CW"}
        text = table2.render(data)
        assert "cold" in text and "coh" in text

    def test_composition_error_computable(self):
        data = table2.run(scale=SCALE, apps=APPS)
        errs = table2.composition_errors(data)
        cold_err, coh_err = errs["water"]
        assert cold_err >= 0 and coh_err >= 0


class TestFigure3:
    def test_includes_rc_reference(self):
        data = figure3.run(scale=SCALE, apps=APPS)
        assert "basic_rc" in data["water"]
        text = figure3.render(data)
        assert "B-SC" in text and "M-SC" in text and "dashed" in text


class TestTable3:
    def test_three_link_widths(self):
        data = table3.run(scale=SCALE, apps=APPS)
        assert set(data["P+CW"]["water"]) == {64, 32, 16}
        assert set(data["P+M"]["water"]) == {64, 32, 16}
        text = table3.render(data)
        assert "16-bit links" in text

    def test_utilization_grows_as_links_narrow(self):
        data = table3.run(scale=SCALE, apps=APPS)
        util = data["utilization"]["water"]
        assert util[16] > util[64]


class TestFigure4:
    def test_basic_is_100(self):
        data = figure4.run(scale=SCALE, apps=APPS)
        assert data["water"]["BASIC"] == pytest.approx(100.0)
        text = figure4.render(data)
        assert "normalized" in text


class TestSensitivity:
    def test_buffer_study(self):
        data = sensitivity.run_buffers(scale=SCALE, apps=APPS)
        for proto, slowdown in data["water"].items():
            assert slowdown > 0.5

    def test_limited_slc_study(self):
        data = sensitivity.run_limited_slc(scale=SCALE, apps=APPS)
        rel, repl = data["water"]["BASIC"]
        assert rel == pytest.approx(1.0)
        text = sensitivity.render_limited_slc(data)
        assert "16-KB SLC" in text


class TestTable1:
    def test_static_inventory(self):
        rows = table1.run()
        text = table1.render(rows)
        assert "Table 1" in text
        assert "write cache" in text
        assert "directory overhead" in text
