"""Tests for the PTHOR extension workload (ref [3]'s sixth program)."""

from repro.config import SystemConfig
from repro.core.invariants import check_all
from repro.mem.addrmap import AddressMap
from repro.stats.sharing import Pattern, analyze
from repro.system import System
from repro.workloads import ALL_APP_NAMES, APP_NAMES, build_workload

CFG = SystemConfig()


def run_pthor(protocol: str, scale: float = 0.5) -> System:
    """Run pthor on a live System (tests inspect node internals)."""
    cfg = SystemConfig().with_protocol(protocol)
    streams = build_workload("pthor", cfg, scale=scale)
    system = System(cfg)
    system.run(streams)
    return system


class TestRegistry:
    def test_pthor_is_an_extension_not_a_paper_app(self):
        assert "pthor" in ALL_APP_NAMES
        assert "pthor" not in APP_NAMES

    def test_builds_and_runs(self):
        streams = build_workload("pthor", CFG, scale=0.4)
        assert len(streams) == CFG.n_procs
        system = System(CFG)
        system.run(streams)
        check_all(system)


class TestSignature:
    def test_elements_are_migratory(self):
        streams = build_workload("pthor", CFG, scale=0.5)
        profile = analyze(streams, AddressMap(n_nodes=CFG.n_procs))
        census = profile.census()
        assert census[Pattern.MIGRATORY] > 20

    def test_critical_sections_balanced(self):
        for ops in build_workload("pthor", CFG, scale=0.5):
            depth = 0
            for op in ops:
                if op[0] == "acquire":
                    depth += 1
                elif op[0] == "release":
                    depth -= 1
                assert 0 <= depth <= 1
            assert depth == 0


class TestProtocolBehaviour:
    def test_migratory_optimization_shines(self):
        # short runs (scale 0.5) only revisit each element a couple of
        # times; full-scale runs cut ownership requests by ~40 %
        basic = run_pthor("BASIC")
        mig = run_pthor("M")
        basic_own = sum(c.ownership_requests for c in basic.stats.caches)
        mig_own = sum(c.ownership_requests for c in mig.stats.caches)
        assert mig_own < basic_own * 0.85
        assert mig.stats.network.bytes < basic.stats.network.bytes
        detections = sum(
            n.home.migratory_detections for n in mig.nodes
        )
        assert detections >= 40  # the circuit elements migrate

    def test_prefetching_adapts_itself_off(self):
        # irregular fan-in reads: the adaptive scheme must not keep
        # spraying prefetches at them
        res = run_pthor("P")
        degrees = [
            n.cache.prefetcher.degree
            for n in res.nodes
            if n.cache.prefetcher is not None
        ]
        assert sum(degrees) <= len(degrees)  # average degree <= 1

    def test_prefetching_gains_little(self):
        basic = run_pthor("BASIC")
        p = run_pthor("P")
        # within a few percent of BASIC either way: P is a no-op here
        ratio = p.stats.execution_time / basic.stats.execution_time
        assert 0.9 < ratio < 1.1
