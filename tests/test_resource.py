"""Unit tests for FCFS resources."""

import pytest

from repro.sim.resource import FcfsResource


def test_idle_resource_starts_immediately():
    res = FcfsResource(name="bus")
    assert res.reserve(ready=10, occupancy=5) == 10
    assert res.free_at == 15


def test_back_to_back_reservations_queue():
    res = FcfsResource(name="bus")
    assert res.reserve(0, 10) == 0
    assert res.reserve(0, 10) == 10
    assert res.reserve(5, 10) == 20


def test_gap_leaves_idle_time():
    res = FcfsResource(name="bus")
    res.reserve(0, 5)
    assert res.reserve(100, 5) == 100


def test_finish_time():
    res = FcfsResource(name="mem")
    assert res.finish_time(7, 3) == 10
    assert res.finish_time(0, 3) == 13  # queued behind the first


def test_zero_occupancy_allowed():
    res = FcfsResource(name="x")
    assert res.reserve(5, 0) == 5
    assert res.free_at == 5


def test_negative_occupancy_rejected():
    res = FcfsResource(name="x")
    with pytest.raises(ValueError):
        res.reserve(0, -1)


def test_busy_accounting_and_utilization():
    res = FcfsResource(name="link")
    res.reserve(0, 30)
    res.reserve(0, 30)
    assert res.busy_cycles == 60
    assert res.reservations == 2
    assert res.utilization(120) == pytest.approx(0.5)
    assert res.utilization(0) == 0.0
    # utilization is clamped to 1.0
    assert res.utilization(30) == 1.0
