"""State canonicalization modulo node renaming."""

from repro.verify import (
    Stepper,
    VerifyConfig,
    agent_permutations,
    canonical_key,
)


def run_ops(ops, **kw):
    cfg = VerifyConfig(n_nodes=2, n_blocks=1, extensions="m", **kw)
    return Stepper(cfg).run(ops)


def test_mirrored_sequences_canonicalize_identically():
    a = run_ops([("read", 0, 0), ("write", 1, 0)])
    b = run_ops([("read", 1, 0), ("write", 0, 0)])
    assert canonical_key(a) == canonical_key(b)
    # without symmetry reduction the two runs are distinct states
    assert canonical_key(a, symmetry=False) != canonical_key(
        b, symmetry=False
    )


def test_different_protocol_states_differ():
    a = run_ops([("read", 0, 0)])
    b = run_ops([("write", 0, 0)])
    assert canonical_key(a) != canonical_key(b)


def test_key_is_insensitive_to_history():
    """Two different op sequences reaching the same global state must
    collide -- that is the whole point of the dedup."""
    a = run_ops([("read", 0, 0), ("read", 0, 0)])
    b = run_ops([("read", 0, 0)])
    assert canonical_key(a) == canonical_key(b)


def test_lock_state_is_part_of_the_key():
    cfg = VerifyConfig(n_nodes=2, n_blocks=1, extensions="cw")
    held = Stepper(cfg).run([("lock", 0)])
    free = Stepper(cfg).run([("lock", 0), ("unlock", 0)])
    assert canonical_key(held) != canonical_key(free)


def test_coarse_directory_restricts_permutations():
    """An arbitrary renaming could split a coarse region; only
    region-structure-preserving permutations are admissible."""
    full = Stepper(
        VerifyConfig(n_nodes=3, n_blocks=1, extensions="BASIC")
    ).system
    coarse = Stepper(
        VerifyConfig(
            n_nodes=3, n_blocks=1, extensions="BASIC", directory="coarse:2"
        )
    ).system
    assert len(agent_permutations(full)) == 6
    # regions {0, 1} and {2}: only the within-region swap survives
    assert sorted(agent_permutations(coarse)) == [(0, 1, 2), (1, 0, 2)]


def test_wcache_contents_are_part_of_the_key():
    cfg = VerifyConfig(n_nodes=2, n_blocks=1, extensions="cw")
    idle = Stepper(cfg).run([("read", 0, 0)])
    dirty = Stepper(cfg).run([("read", 0, 0), ("write", 0, 0)])
    assert canonical_key(idle) != canonical_key(dirty)
