"""Write-stall accounting across FLWB-full wakeups.

Regression guard for ``Processor._write_retry``: the stall interval
must be measured from the moment the processor first stalled
(``_stall_t0``), and charged exactly once -- however many wakeups it
takes until the FLWB has room.  Re-reading the issue time on each
wakeup (or re-charging per wakeup) double-counts the stall and breaks
``busy + stalls == finish_time``.
"""

from conftest import pad_streams, run_streams, tiny_config

from repro.node.processor import Processor
from repro.system import System

PAGE = 4096


class TestMultipleWakeups:
    def test_stall_charged_once_from_first_stall(self):
        cfg = tiny_config(flwb_entries=1)
        system = System(cfg)
        sim = system.sim
        cache = system.nodes[0].cache
        stats = system.stats.procs[0]
        proc = Processor(0, sim, cfg, cache, [], stats, lambda i: None)

        cache.buffer_write_at(2 * PAGE, 0)  # capacity 1: FLWB now full
        proc._stall_addr = 3 * PAGE
        proc._stall_t0 = 100  # the stall began at t=100

        sim.now = 150
        proc._write_retry()  # woken while still full: charge nothing
        assert stats.write_stall == 0

        sim.now = 180
        proc._write_retry()  # second fruitless wakeup: still nothing
        assert stats.write_stall == 0

        cache.flwb.pop()  # drain completes, buffer has room
        sim.now = 300
        proc._write_retry()
        # one charge, spanning the whole stall -- not since a wakeup
        assert stats.write_stall == 200

        sim.now = 400
        assert stats.write_stall == 200  # and never again


class TestDecomposition:
    def test_stalling_stream_decomposes_exactly(self):
        # a burst of writes to distinct pages through a 1-entry FLWB
        # backed by a 1-entry SLWB: every write after the first stalls
        # the processor on a full buffer for a full ownership round
        # trip, exercising the retry path repeatedly in one run
        cfg = tiny_config(flwb_entries=1, slwb_entries=1)
        ops = [("write", (i + 2) * PAGE) for i in range(6)]
        system = run_streams(cfg, pad_streams([ops], 4))
        p = system.stats.procs[0]
        assert p.write_stall > 0
        assert p.total_time == p.finish_time
