"""Unit tests for the FLC and SLC line stores."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.states import CacheState
from repro.mem.flc import FirstLevelCache
from repro.mem.slc import SecondLevelCache


class TestFlc:
    def test_fill_and_lookup(self):
        flc = FirstLevelCache(4096, 32)
        assert not flc.lookup(5)
        flc.fill(5)
        assert flc.lookup(5)

    def test_direct_mapped_conflict(self):
        flc = FirstLevelCache(4096, 32)  # 128 sets
        flc.fill(1)
        victim = flc.fill(129)  # same set
        assert victim == 1
        assert not flc.lookup(1)
        assert flc.lookup(129)

    def test_refill_same_block_is_not_eviction(self):
        flc = FirstLevelCache(4096, 32)
        flc.fill(7)
        assert flc.fill(7) is None

    def test_invalidate(self):
        flc = FirstLevelCache(4096, 32)
        flc.fill(3)
        assert flc.invalidate(3)
        assert not flc.lookup(3)
        assert not flc.invalidate(3)

    def test_invalidate_does_not_hit_conflicting_block(self):
        flc = FirstLevelCache(4096, 32)
        flc.fill(1)
        assert not flc.invalidate(129)
        assert flc.lookup(1)

    def test_size_validation(self):
        with pytest.raises(ValueError):
            FirstLevelCache(100, 32)

    @given(st.lists(st.integers(min_value=0, max_value=1000), max_size=200))
    def test_property_at_most_one_block_per_set(self, blocks):
        flc = FirstLevelCache(1024, 32)  # 32 sets
        for b in blocks:
            flc.fill(b)
        resident = flc.resident_blocks()
        assert len(resident) <= 32
        sets = [b % 32 for b in resident]
        assert len(sets) == len(set(sets))


class TestSlcInfinite:
    def test_insert_and_lookup(self):
        slc = SecondLevelCache(None, 32)
        line, victim = slc.insert(10, CacheState.SHARED)
        assert victim is None
        assert slc.lookup(10) is line
        assert line.state is CacheState.SHARED

    def test_never_evicts(self):
        slc = SecondLevelCache(None, 32)
        for b in range(1000):
            _line, victim = slc.insert(b, CacheState.SHARED)
            assert victim is None
        assert len(slc) == 1000

    def test_invalidate(self):
        slc = SecondLevelCache(None, 32)
        slc.insert(4, CacheState.DIRTY)
        old = slc.invalidate(4)
        assert old is not None and old.state is CacheState.DIRTY
        assert slc.lookup(4) is None
        assert slc.invalidate(4) is None

    def test_cannot_insert_invalid(self):
        slc = SecondLevelCache(None, 32)
        with pytest.raises(ValueError):
            slc.insert(1, CacheState.INVALID)


class TestSlcBounded:
    def test_direct_mapped_eviction(self):
        slc = SecondLevelCache(1024, 32)  # 32 sets
        slc.insert(1, CacheState.DIRTY)
        _line, victim = slc.insert(33, CacheState.SHARED)
        assert victim is not None
        assert victim.block == 1
        assert victim.state is CacheState.DIRTY
        assert slc.lookup(1) is None

    def test_no_conflict_different_sets(self):
        slc = SecondLevelCache(1024, 32)
        slc.insert(1, CacheState.SHARED)
        _line, victim = slc.insert(2, CacheState.SHARED)
        assert victim is None
        assert slc.lookup(1) is not None

    @given(st.lists(st.integers(min_value=0, max_value=500), max_size=200))
    def test_property_capacity_respected(self, blocks):
        slc = SecondLevelCache(512, 32)  # 16 sets
        for b in blocks:
            slc.insert(b, CacheState.SHARED)
        assert len(slc) <= 16

    def test_size_validation(self):
        with pytest.raises(ValueError):
            SecondLevelCache(100, 32)


def test_cache_state_predicates():
    assert CacheState.DIRTY.is_exclusive
    assert CacheState.MIG_CLEAN.is_exclusive
    assert not CacheState.SHARED.is_exclusive
    assert CacheState.SHARED.is_valid
    assert not CacheState.INVALID.is_valid
