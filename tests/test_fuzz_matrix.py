"""Deterministic randomized-configuration sweep.

A seeded version of the development fuzzer: random reference streams
run on randomized machine configurations spanning every knob the
library exposes -- protocols, consistency models, bounded caches,
small write buffers, mesh links, page placement, competitive-update
variants, fixed prefetch degrees -- and every run must complete and
satisfy the global coherence invariants.
"""

import random
from dataclasses import replace

import pytest

from repro.config import (
    ALL_PROTOCOLS,
    SC_PROTOCOLS,
    CacheConfig,
    CompetitiveConfig,
    Consistency,
    NetworkConfig,
    NetworkKind,
    PrefetchConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.core.invariants import check_all
from repro.system import System


def fuzz_stream(pid, seed, nops=220):
    rng = random.Random(seed)
    ops = []
    in_cs = False
    lock = 0x10000
    for _ in range(nops):
        r = rng.random()
        if in_cs and r < 0.15:
            ops.append(("release", lock))
            in_cs = False
            continue
        if not in_cs and r < 0.05:
            lock = 0x10000 + rng.randrange(3) * 4096
            ops.append(("acquire", lock))
            in_cs = True
            continue
        a = rng.randrange(48) * 32 + rng.randrange(8) * 4
        ops.append(("read", a) if r < 0.6 else ("write", a))
        if rng.random() < 0.3:
            ops.append(("think", rng.randrange(1, 8)))
    if in_cs:
        ops.append(("release", lock))
    ops.append(("barrier", 0))
    return ops


def random_config(rng: random.Random) -> SystemConfig:
    model = rng.choice([Consistency.RC, Consistency.RC, Consistency.SC])
    protos = ALL_PROTOCOLS if model is Consistency.RC else SC_PROTOCOLS
    proto = ProtocolConfig.from_name(rng.choice(protos))
    if proto.competitive_update and rng.random() < 0.4:
        proto = replace(
            proto,
            competitive_params=rng.choice(
                [
                    CompetitiveConfig.classic(),
                    CompetitiveConfig(exclusive_grant=True),
                    CompetitiveConfig(threshold=2),
                ]
            ),
        )
    if proto.prefetch and rng.random() < 0.3:
        proto = replace(
            proto,
            prefetch_params=PrefetchConfig(initial_degree=4, adaptive=False),
        )
    return SystemConfig(
        n_procs=rng.choice([4, 9, 16]),
        consistency=model,
        protocol=proto,
        cache=CacheConfig(
            slc_size=rng.choice([None, 1024, 2048]),
            slwb_entries=rng.choice([2, 4, 16]),
            flwb_entries=rng.choice([1, 4, 8]),
        ),
        network=(
            NetworkConfig(
                kind=NetworkKind.MESH,
                link_width_bits=rng.choice([16, 32, 64]),
            )
            if rng.random() < 0.4
            else NetworkConfig()
        ),
        page_placement=rng.choice(["round_robin", "first_touch"]),
    )


@pytest.mark.parametrize("trial", range(20))
def test_randomized_configuration_matrix(trial):
    rng = random.Random(7000 + trial)
    cfg = random_config(rng)
    system = System(cfg)
    streams = [
        fuzz_stream(i, trial * 977 + i) for i in range(cfg.n_procs)
    ]
    system.run(streams, max_events=5_000_000)
    check_all(system)
    # sanity on the statistics of every run
    stats = system.stats
    assert stats.execution_time > 0
    for p in stats.procs:
        assert p.total_time == p.finish_time
    total = sum(c.demand_read_misses for c in stats.caches)
    parts = sum(
        c.cold_misses + c.replacement_misses + c.coherence_misses
        for c in stats.caches
    )
    assert total == parts
