"""Deterministic randomized-configuration sweep.

A seeded version of the development fuzzer: random reference streams
run on randomized machine configurations spanning every knob the
library exposes -- protocols, consistency models, bounded caches,
small write buffers, mesh links, page placement, competitive-update
variants, fixed prefetch degrees -- and every run must complete and
satisfy the global coherence invariants.
"""

import random

import pytest

from repro.core.invariants import check_all
from repro.system import System
from repro.verify.fuzz import fuzz_stream, random_config


@pytest.mark.parametrize("trial", range(20))
def test_randomized_configuration_matrix(trial):
    rng = random.Random(7000 + trial)
    cfg = random_config(rng)
    system = System(cfg)
    streams = [
        fuzz_stream(i, trial * 977 + i) for i in range(cfg.n_procs)
    ]
    system.run(streams, max_events=5_000_000)
    check_all(system)
    # sanity on the statistics of every run
    stats = system.stats
    assert stats.execution_time > 0
    for p in stats.procs:
        assert p.total_time == p.finish_time
    total = sum(c.demand_read_misses for c in stats.caches)
    parts = sum(
        c.cold_misses + c.replacement_misses + c.coherence_misses
        for c in stats.caches
    )
    assert total == parts
