"""Tests for the EXPERIMENTS.md report generator's claim logic."""

from types import SimpleNamespace

from repro.experiments.report import HEADER, _claims

APPS = ("mp3d", "cholesky", "water", "lu", "ocean")


def _res(exec_time):
    return SimpleNamespace(execution_time=exec_time)


def fake_data(good: bool):
    """Synthesize experiment data that passes (or fails) every claim."""
    # figure2: relative execution times under RC
    rel = {
        "BASIC": 1.0,
        "P": 0.8 if good else 1.2,
        "CW": 0.85 if good else 1.2,
        "M": 0.95,
        "P+CW": 0.7 if good else 1.3,
        "P+M": 0.8,
        "CW+M": 1.0 if good else 0.6,
        "P+CW+M": 0.8,
    }
    d2 = {app: {p: _res(int(1000 * r)) for p, r in rel.items()} for app in APPS}
    # table2: (cold, coherence) percentages
    t2 = {
        app: {
            "BASIC": (4.0, 2.0),
            "P": (1.0 if good else 3.9, 2.0),
            "CW": (4.0, 0.5),
            "P+CW": ((1.0, 0.5) if good else (3.0, 1.8)),
        }
        for app in APPS
    }
    # figure3: SC results + the RC reference
    sc_rel = {
        "BASIC": 1.0,
        "P": 0.9,
        "M": 0.6 if good else 0.95,
        "P+M": 0.55 if good else 0.99,
    }
    d3 = {
        app: {
            "sc": {p: _res(int(2000 * r)) for p, r in sc_rel.items()},
            "basic_rc": 1500 if good else 100,
        }
        for app in APPS
    }
    # table3: mesh ETRs per link width
    t3 = {
        proto: {
            app: (
                {64: 0.7, 32: 0.72, 16: 0.9 if proto == "P+CW" else 0.72}
                if good
                else {64: 0.7, 32: 0.6, 16: 0.3}
            )
            for app in APPS
        }
        for proto in ("P+CW", "P+M")
    }
    # figure4: traffic normalized to BASIC
    d4 = {
        app: {
            "BASIC": 100.0,
            "P": 120.0,
            "CW": 95.0,
            "M": 80.0 if good else 130.0,
            "P+CW": 130.0,
            "P+M": 110.0 if good else 150.0,
        }
        for app in APPS
    }
    return d2, t2, d3, t3, d4


def test_all_claims_pass_on_paper_shaped_data():
    claims = _claims(*fake_data(good=True))
    assert len(claims) >= 10
    for text, ok, measured in claims:
        assert ok, text
        assert measured  # every claim reports its numbers


def test_claims_fail_on_anti_paper_data():
    claims = _claims(*fake_data(good=False))
    failed = [text for text, ok, _m in claims if not ok]
    assert len(failed) >= 6  # the checks actually discriminate


def test_header_template():
    text = HEADER.format(scale=1.0, minutes=3.5, claims="| x | y | z |")
    assert "EXPERIMENTS" in text
    assert "3.5 min" in text
