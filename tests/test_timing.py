"""Exact-latency tests for the canonical protocol paths.

These pin the timing model (paper §4) against regressions: if a
latency constant or a charging path changes, these fail loudly.
"""

from conftest import pad_streams, run_streams, tiny_config

from repro.config import TimingConfig

T = TimingConfig()


def bus(size_bytes: int) -> int:
    """Pclocks one bus transaction of ``size_bytes`` takes."""
    cycles = max(1, -(-size_bytes // T.bus_width_bytes))
    return cycles * T.bus_transaction


#: control message (8 B header) and block reply (8 + 32 B) bus costs
BUS_CTRL = bus(8)
BUS_DATA = bus(40)


def read_stall_of(addr, n_procs=4):
    system = run_streams(
        tiny_config(n_procs=n_procs), pad_streams([[("read", addr)]], n_procs)
    )
    return system.stats.procs[0].read_stall


class TestReadLatencies:
    def test_local_clean_miss(self):
        # FLC(1, busy) + SLC(6) + request bus(3) + memory(24)
        # + reply bus(6: header + block = 2 bus cycles)
        # + SLC fill(6) + FLC fill(3) = 48 stall cycles
        expected = (
            T.slc_access
            + BUS_CTRL
            + T.memory_latency
            + BUS_DATA
            + T.slc_access
            + T.flc_fill
        )
        assert read_stall_of(0) == expected

    def test_remote_clean_miss(self):
        # adds two 54-cycle hops plus the destination-side bus
        # transactions (control request in, data reply in)
        local = read_stall_of(0)
        remote = read_stall_of(4096)
        assert remote == local + 2 * 54 + BUS_CTRL + BUS_DATA

    def test_paper_local_memory_access_constant(self):
        assert T.local_memory_access == 30

    def test_flc_hit_costs_one_cycle(self):
        system = run_streams(
            tiny_config(),
            pad_streams([[("read", 0), ("read", 0), ("read", 0)]], 4),
        )
        p = system.stats.procs[0]
        # 3 busy cycles (1 per read), stall only on the first
        assert p.busy == 3
        assert p.read_stall == read_stall_of(0)

    def test_slc_hit_after_flc_conflict(self):
        # two blocks conflicting in the FLC but both resident in the
        # SLC: the second read of each is an SLC hit, not a miss
        a, b = 0, 128 * 32  # same FLC set (128 sets), different SLC lines
        system = run_streams(
            tiny_config(),
            pad_streams([[("read", a), ("read", b), ("read", a)]], 4),
        )
        assert system.stats.caches[0].demand_read_misses == 2


class TestWriteLatencies:
    def test_rc_buffered_write_costs_one_cycle(self):
        system = run_streams(
            tiny_config(), pad_streams([[("write", 4096), ("think", 3000)]], 4)
        )
        p = system.stats.procs[0]
        assert p.write_stall == 0
        assert p.busy == 1 + 3000

    def test_sc_write_miss_latency_exceeds_read_miss(self):
        from repro.config import Consistency

        cfg = tiny_config(consistency=Consistency.SC)
        system = run_streams(cfg, pad_streams([[("write", 4096)]], 4))
        # the RDX round trip equals a read's minus the FLC lookup and
        # fill (writes bypass the FLC; write-through, no-allocate)
        expected = read_stall_of(4096) - T.flc_hit - T.flc_fill
        assert system.stats.procs[0].write_stall == expected


class TestLockLatencies:
    def test_uncontended_remote_lock_round_trip(self):
        lock = 4096
        system = run_streams(
            tiny_config(), pad_streams([[("acquire", lock)]], 4)
        )
        # LOCK_REQ hop + memory + LOCK_GRANT hop (+ buses), minus the
        # one busy cycle charged to the processor
        expected = (
            2 * 54 + 4 * T.bus_transaction + T.memory_latency - T.flc_hit
        )
        assert system.stats.procs[0].acquire_stall == expected

    def test_local_lock_is_much_cheaper(self):
        system = run_streams(
            tiny_config(), pad_streams([[("acquire", 0)]], 4)
        )
        assert system.stats.procs[0].acquire_stall < 60


class TestMemoryInterleaving:
    def test_adjacent_blocks_hit_different_banks(self):
        # concurrent misses to consecutive blocks of one home node are
        # served by different banks: only the shared bus serializes
        a = 4096
        streams = pad_streams([[("read", a)], [("read", a + 32)]], 4)
        system = run_streams(tiny_config(), streams)
        stalls = [system.stats.procs[i].read_stall for i in (0, 1)]
        base = read_stall_of(a)
        assert max(stalls) <= base + BUS_CTRL + BUS_DATA

    def test_same_bank_conflict_serializes(self):
        # blocks `memory_banks` apart map to the same bank: the second
        # access waits out most of the first one's latency.  Both
        # requesters are remote to the home (node 1) so the requests
        # arrive nearly together.
        a = 4096
        conflict = a + T.memory_banks * 32
        streams = [[("read", a)], [], [("read", conflict)], []]
        system = run_streams(tiny_config(), streams)
        slow = max(
            system.stats.procs[0].read_stall,
            system.stats.procs[2].read_stall,
        )
        assert slow >= read_stall_of(a) + T.memory_latency - BUS_DATA

    def test_different_banks_do_not_serialize(self):
        a = 4096
        streams = [[("read", a)], [], [("read", a + 32)], []]
        system = run_streams(tiny_config(), streams)
        slow = max(
            system.stats.procs[0].read_stall,
            system.stats.procs[2].read_stall,
        )
        assert slow < read_stall_of(a) + T.memory_latency - BUS_DATA

    def test_eight_banks_by_default(self):
        assert T.memory_banks == 8
