"""Tests for the Table 1 hardware-cost model."""

from repro.config import Consistency, SystemConfig
from repro.core.hwcost import (
    cost_table,
    directory_overhead_fraction,
    hardware_cost,
)


def cost_of(name, consistency=Consistency.RC):
    cfg = SystemConfig(consistency=consistency).with_protocol(name)
    return hardware_cost(cfg)


class TestCacheLineBits:
    def test_basic_needs_two_bits(self):
        # 3 stable cache states -> 2 bits (paper §2)
        assert cost_of("BASIC").slc_state_bits_per_line == 2

    def test_p_adds_two_bits(self):
        # Table 1: "2 bits" per cache line for P
        assert cost_of("P").slc_state_bits_per_line == 4

    def test_m_adds_one_state(self):
        # Table 1: "1 state" (the extra migratory cache state)
        assert cost_of("M").slc_state_bits_per_line == 3

    def test_cw_adds_counter_and_access_bit(self):
        # Table 1: "1-bit counter" (+ the accessed-since-update bit)
        assert cost_of("CW").slc_state_bits_per_line == 4

    def test_combination_costs_are_additive(self):
        assert cost_of("P+M").slc_state_bits_per_line == 5
        # CW+M also carries the modified-since-update bit of §3.4
        assert cost_of("CW+M").slc_state_bits_per_line == 6
        assert cost_of("P+CW+M").slc_state_bits_per_line == 8


class TestMemoryLineBits:
    def test_basic_is_n_plus_3(self):
        assert cost_of("BASIC").memory_state_bits_per_line == 19

    def test_m_adds_bit_and_pointer(self):
        assert cost_of("M").memory_state_bits_per_line == 24

    def test_cw_adds_no_memory_state(self):
        # Table 1: "No extra state" at memory for P and CW
        assert cost_of("CW").memory_state_bits_per_line == 19
        assert cost_of("P").memory_state_bits_per_line == 19


class TestMechanismsAndBuffers:
    def test_p_needs_three_counters(self):
        assert any("3 modulo-16" in m for m in cost_of("P").extra_cache_mechanisms)

    def test_cw_needs_a_write_cache(self):
        assert any("write cache" in m for m in cost_of("CW").extra_cache_mechanisms)

    def test_basic_and_m_need_no_extra_mechanisms(self):
        assert cost_of("BASIC").extra_cache_mechanisms == ()
        assert cost_of("M").extra_cache_mechanisms == ()

    def test_sc_uses_single_entry_slwb_except_p(self):
        # Table 1: "SC: a single entry" but P buffers prefetches
        assert cost_of("BASIC", Consistency.SC).slwb_entries == 1
        assert cost_of("M", Consistency.SC).slwb_entries == 1
        assert cost_of("P", Consistency.SC).slwb_entries == 16

    def test_cw_slwb_entries_hold_blocks(self):
        assert cost_of("CW").slwb_entry_holds_block
        assert not cost_of("BASIC").slwb_entry_holds_block


class TestTable:
    def test_cost_table_rows(self):
        rows = cost_table()
        assert [r.protocol for r in rows] == ["BASIC", "P", "M", "CW"]

    def test_cost_table_sc_omits_cw(self):
        rows = cost_table(consistency=Consistency.SC)
        assert [r.protocol for r in rows] == ["BASIC", "P", "M"]

    def test_directory_overhead_is_modest(self):
        basic = SystemConfig().with_protocol("BASIC")
        mig = SystemConfig().with_protocol("M")
        assert 0.05 < directory_overhead_fraction(basic) < 0.10
        assert directory_overhead_fraction(mig) > directory_overhead_fraction(basic)
