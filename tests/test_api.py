"""Tests for the high-level convenience API."""

import pytest

from repro import api
from repro.config import Consistency


class TestRunApp:
    def test_summary_fields(self):
        s = api.run_app("water", protocol="P", scale=0.2, n_procs=4)
        assert s.app == "water"
        assert s.protocol == "P"
        assert s.consistency == "RC"
        assert s.execution_time > 0
        assert 0 <= s.busy_fraction <= 1
        assert 0 <= s.read_stall_fraction <= 1
        assert s.cold_miss_rate >= 0
        assert s.network_bytes >= 0
        assert s.stats.execution_time == s.execution_time

    def test_fractions_sum_to_one(self):
        s = api.run_app("water", scale=0.2, n_procs=4)
        total = (
            s.busy_fraction
            + s.read_stall_fraction
            + s.write_stall_fraction
            + s.acquire_stall_fraction
        )
        # release stall is the only missing component under RC
        assert total <= 1.001

    def test_sc_runs(self):
        s = api.run_app(
            "water", protocol="M", consistency=Consistency.SC,
            scale=0.2, n_procs=4,
        )
        assert s.consistency == "SC"

    def test_deterministic(self):
        a = api.run_app("mp3d", scale=0.2, n_procs=4, seed=5)
        b = api.run_app("mp3d", scale=0.2, n_procs=4, seed=5)
        assert a.execution_time == b.execution_time


class TestCompareProtocols:
    def test_ranking_sorted(self):
        ranking = api.compare_protocols(
            "water", protocols=("BASIC", "P", "CW"), scale=0.2, n_procs=4
        )
        times = [s.execution_time for s in ranking]
        assert times == sorted(times)

    def test_basic_always_included(self):
        ranking = api.compare_protocols(
            "water", protocols=("P",), scale=0.2, n_procs=4
        )
        assert ranking["BASIC"].protocol == "BASIC"

    def test_registry_combo_resolves(self):
        # drop-in extensions and sloppy spellings canonicalize through
        # the extension registry, so they work anywhere the paper's
        # eight combinations do
        ranking = api.compare_protocols(
            "water", protocols=("BASIC", "m+pf"), scale=0.2, n_procs=4
        )
        assert ranking["PF+M"].protocol == "PF+M"

    def test_relative_time(self):
        ranking = api.compare_protocols(
            "water", protocols=("BASIC", "P+CW"), scale=0.2, n_procs=4
        )
        assert ranking.relative_time("BASIC") == 1.0
        assert ranking.relative_time("P+CW") > 0

    def test_unknown_protocol_lookup(self):
        ranking = api.compare_protocols(
            "water", protocols=("BASIC",), scale=0.2, n_procs=4
        )
        with pytest.raises(KeyError):
            ranking["P+CW+M"]

    def test_best(self):
        ranking = api.compare_protocols(
            "lu", protocols=("BASIC", "P"), scale=0.3, n_procs=4
        )
        assert ranking.best().protocol == "P"

    def test_speedups_normalized_to_baseline(self):
        ranking = api.compare_protocols(
            "water", protocols=("BASIC", "P", "CW"), scale=0.2, n_procs=4
        )
        rel = ranking.speedups()
        assert set(rel) == {"BASIC", "P", "CW"}
        assert rel["BASIC"] == pytest.approx(1.0)
        for proto, value in rel.items():
            assert value == pytest.approx(ranking.relative_time(proto))

    def test_custom_baseline(self):
        ranking = api.compare_protocols(
            "water", protocols=("BASIC", "P"), baseline="P",
            scale=0.2, n_procs=4,
        )
        assert ranking.baseline == "P"
        assert ranking.relative_time("P") == pytest.approx(1.0)
        assert ranking.baseline_summary().protocol == "P"

    def test_speedup_over(self):
        ranking = api.compare_protocols(
            "lu", protocols=("BASIC", "P"), scale=0.3, n_procs=4
        )
        basic, p = ranking["BASIC"], ranking["P"]
        assert p.speedup_over(basic) == pytest.approx(
            basic.execution_time / p.execution_time
        )
        assert p.speedup_over(basic) > 1.0
        assert basic.speedup_over(basic) == pytest.approx(1.0)


class TestSerialization:
    def test_summary_to_dict_digest(self):
        s = api.run_app("water", protocol="P", scale=0.2, n_procs=4)
        d = s.to_dict()
        assert d["app"] == "water"
        assert d["protocol"] == "P"
        assert d["execution_time"] == s.execution_time
        from repro.sweep import SPEC_SCHEMA_VERSION

        assert d["spec"]["v"] == SPEC_SCHEMA_VERSION
        assert "stats" not in d, "full stats only on request"
        import json

        json.dumps(d)  # must be JSON-able as-is

    def test_summary_to_dict_with_stats(self):
        s = api.run_app("water", scale=0.2, n_procs=4)
        d = s.to_dict(include_stats=True)
        assert d["stats"] == s.stats.to_dict()

    def test_from_result_and_from_stats_agree(self):
        """Both constructors route through one path -> identical digests."""
        from repro.sweep import RunSpec, run_spec

        spec = RunSpec.for_run("water", protocol="P", scale=0.2, n_procs=4)
        result = run_spec(spec)
        a = api.RunSummary.from_result(result)
        b = api.RunSummary.from_stats("water", spec.to_config(), result.stats)
        da, db = a.to_dict(), b.to_dict()
        da.pop("spec"), db.pop("spec")  # from_stats has no spec
        assert da == db

    def test_summary_has_release_and_replacement(self):
        s = api.run_app("water", scale=0.2, n_procs=4)
        assert s.release_stall_fraction >= 0
        assert s.replacement_miss_rate >= 0

    def test_ranking_to_dict(self):
        ranking = api.compare_protocols(
            "water", protocols=("BASIC", "P"), scale=0.2, n_procs=4
        )
        d = ranking.to_dict()
        assert d["app"] == "water"
        assert d["baseline"] == "BASIC"
        assert set(d["speedups"]) == {"BASIC", "P"}
        assert [s["protocol"] for s in d["summaries"]] \
            == [s.protocol for s in ranking.summaries]
        import json

        json.dumps(d)


class TestEngineIntegration:
    def test_run_app_through_cached_engine(self, tmp_path):
        from repro.sweep import ResultCache, SweepEngine

        engine = SweepEngine(cache=ResultCache(tmp_path))
        a = api.run_app("water", scale=0.2, n_procs=4, engine=engine)
        b = api.run_app("water", scale=0.2, n_procs=4, engine=engine)
        assert engine.hits == 1 and engine.misses == 1
        assert a.execution_time == b.execution_time
        assert a.spec == b.spec

    def test_summary_carries_spec(self):
        s = api.run_app("water", protocol="P", scale=0.2, n_procs=4, seed=3)
        assert s.spec is not None
        assert s.spec.seed == 3
        assert s.spec.protocol == "P"
