"""Unit and property tests for the interconnect models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import NetworkConfig, NetworkKind
from repro.network import build_network
from repro.network.mesh import MeshNetwork, mesh_dims
from repro.network.uniform import UniformNetwork
from repro.stats.counters import NetworkStats


def make_uniform(latency=54):
    stats = NetworkStats()
    return UniformNetwork(NetworkConfig(uniform_latency=latency), 16, stats), stats


def make_mesh(width=64, n=16):
    stats = NetworkStats()
    cfg = NetworkConfig(kind=NetworkKind.MESH, link_width_bits=width)
    return MeshNetwork(cfg, n, stats), stats


class TestUniform:
    def test_constant_latency(self):
        net, _ = make_uniform()
        assert net.arrival_time(0, 15, 40, ready=100) == 154
        assert net.arrival_time(3, 4, 1000, ready=0) == 54

    def test_local_messages_are_instant(self):
        net, _ = make_uniform()
        assert net.arrival_time(5, 5, 40, ready=10) == 10

    def test_traffic_recorded_for_remote_only(self):
        net, stats = make_uniform()
        net.record("RD_REQ", 0, 1, 8, False)
        net.record("RD_RPL", 2, 2, 40, True)  # local: not traffic
        assert stats.messages == 1
        assert stats.bytes == 8

    def test_no_contention(self):
        net, _ = make_uniform()
        arrivals = [net.arrival_time(0, 1, 40, ready=0) for _ in range(100)]
        assert all(a == 54 for a in arrivals)


class TestMeshRouting:
    def test_non_square_counts_factor_into_rectangles(self):
        net, _ = make_mesh(n=12)
        assert net.dims == (4, 3)
        assert mesh_dims(16) == (4, 4)
        assert mesh_dims(8) == (4, 2)
        assert mesh_dims(7) == (7, 1)  # prime: N x 1 chain
        assert mesh_dims(256) == (16, 16)

    def test_mesh_dims_override(self):
        stats = NetworkStats()
        cfg = NetworkConfig(kind=NetworkKind.MESH, mesh_dims=(6, 2))
        net = MeshNetwork(cfg, 12, stats)
        assert net.dims == (6, 2)

    def test_bad_mesh_dims_error_names_the_knob(self):
        stats = NetworkStats()
        cfg = NetworkConfig(kind=NetworkKind.MESH, mesh_dims=(5, 2))
        with pytest.raises(ValueError, match="mesh_dims"):
            MeshNetwork(cfg, 12, stats)

    def test_side_shim_is_gone(self):
        # the deprecation shim was removed: dims is the only geometry
        # accessor, and it works for square and rectangular meshes alike
        net, _ = make_mesh(n=16)
        assert not hasattr(net, "side")
        assert net.dims == (4, 4)
        rect, _ = make_mesh(n=12)
        assert rect.dims == (4, 3)

    def test_rectangular_route_stays_in_bounds(self):
        net, _ = make_mesh(n=12)  # 4x3
        for src in range(12):
            for dst in range(12):
                cur = src
                for a, b in net.route(src, dst):
                    assert a == cur
                    assert 0 <= b < 12
                    cur = b
                assert cur == dst

    def test_dimension_order_route(self):
        net, _ = make_mesh()
        # node 0 = (0,0), node 15 = (3,3): X first, then Y
        path = net.route(0, 15)
        assert path == [(0, 1), (1, 2), (2, 3), (3, 7), (7, 11), (11, 15)]

    def test_route_length_is_manhattan_distance(self):
        net, _ = make_mesh()
        assert len(net.route(0, 3)) == 3
        assert len(net.route(5, 6)) == 1
        assert len(net.route(0, 0)) == 0

    @given(st.integers(0, 15), st.integers(0, 15))
    def test_property_route_is_connected(self, src, dst):
        net, _ = make_mesh()
        path = net.route(src, dst)
        cur = src
        for a, b in path:
            assert a == cur
            # one hop in x or y
            ax, ay = a % 4, a // 4
            bx, by = b % 4, b // 4
            assert abs(ax - bx) + abs(ay - by) == 1
            cur = b
        assert cur == dst
        manhattan = abs(src % 4 - dst % 4) + abs(src // 4 - dst // 4)
        assert len(path) == manhattan


class TestMeshTiming:
    def test_flit_count_scales_with_link_width(self):
        net64, _ = make_mesh(64)
        net16, _ = make_mesh(16)
        assert net64.flits(40) == 5    # 320 bits / 64
        assert net16.flits(40) == 20   # 320 bits / 16
        assert net64.flits(1) == 1

    def test_narrower_links_are_slower(self):
        t = {}
        for width in (64, 32, 16):
            net, _ = make_mesh(width)
            t[width] = net.arrival_time(0, 15, 40, ready=0)
        assert t[64] < t[32] < t[16]

    def test_contention_delays_second_message(self):
        net, _ = make_mesh(16)
        first = net.arrival_time(0, 3, 40, ready=0)
        second = net.arrival_time(0, 3, 40, ready=0)
        assert second > first

    def test_disjoint_paths_do_not_interfere(self):
        net, _ = make_mesh(16)
        a = net.arrival_time(0, 1, 40, ready=0)
        b = net.arrival_time(14, 15, 40, ready=0)
        assert a == net.arrival_time(4, 5, 40, ready=0) or True
        assert b == 0 + net._cfg.hop_cycles + net.flits(40)

    def test_local_messages_are_instant(self):
        net, _ = make_mesh()
        assert net.arrival_time(7, 7, 40, ready=9) == 9

    def test_max_link_utilization(self):
        net, _ = make_mesh(16)
        assert net.max_link_utilization(100) == 0.0
        net.arrival_time(0, 1, 40, ready=0)
        assert net.max_link_utilization(100) > 0.0


def test_build_network_dispatch():
    stats = NetworkStats()
    uni = build_network(NetworkConfig(), 16, stats)
    mesh = build_network(NetworkConfig(kind=NetworkKind.MESH), 16, stats)
    assert isinstance(uni, UniformNetwork)
    assert isinstance(mesh, MeshNetwork)
