"""Unit tests for the FLWB, SLWB and write cache."""

import pytest

from repro.mem.write_buffers import Flwb, FlwbEntry, Slwb, SlwbKind
from repro.mem.write_cache import WriteCache


class TestFlwb:
    def test_fifo_order(self):
        flwb = Flwb(4)
        for a in (1, 2, 3):
            flwb.push(FlwbEntry(addr=a, issue_time=0))
        assert [flwb.pop().addr for _ in range(3)] == [1, 2, 3]

    def test_capacity_and_overflow(self):
        flwb = Flwb(2)
        flwb.push(FlwbEntry(addr=1, issue_time=0))
        flwb.push(FlwbEntry(addr=2, issue_time=0))
        assert flwb.full
        with pytest.raises(OverflowError):
            flwb.push(FlwbEntry(addr=3, issue_time=0))

    def test_markers_do_not_consume_capacity(self):
        flwb = Flwb(1)
        flwb.push(FlwbEntry(addr=1, issue_time=0))
        assert flwb.full
        flwb.push(FlwbEntry(addr=-1, issue_time=0, marker=object()))
        assert len(flwb) == 1  # still one *write*
        assert not flwb.empty

    def test_markers_keep_fifo_position(self):
        flwb = Flwb(4)
        marker = object()
        flwb.push(FlwbEntry(addr=1, issue_time=0))
        flwb.push(FlwbEntry(addr=-1, issue_time=0, marker=marker))
        flwb.push(FlwbEntry(addr=2, issue_time=0))
        assert flwb.pop().addr == 1
        assert flwb.pop().marker is marker
        assert flwb.pop().addr == 2
        assert flwb.empty

    def test_peek(self):
        flwb = Flwb(2)
        flwb.push(FlwbEntry(addr=9, issue_time=3))
        assert flwb.peek().addr == 9
        assert len(flwb) == 1

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            Flwb(0)


class TestSlwb:
    def test_alloc_release(self):
        slwb = Slwb(2)
        a = slwb.alloc(SlwbKind.READ)
        b = slwb.alloc(SlwbKind.OWNERSHIP)
        assert slwb.full
        assert slwb.release(a) is SlwbKind.READ
        assert not slwb.full
        assert slwb.release(b) is SlwbKind.OWNERSHIP

    def test_out_of_order_release(self):
        slwb = Slwb(3)
        ids = [slwb.alloc(SlwbKind.PREFETCH) for _ in range(3)]
        slwb.release(ids[1])
        assert slwb.count() == 2
        assert slwb.count(SlwbKind.PREFETCH) == 2

    def test_overflow(self):
        slwb = Slwb(1)
        slwb.alloc(SlwbKind.READ)
        with pytest.raises(OverflowError):
            slwb.alloc(SlwbKind.READ)
        assert slwb.full_rejections == 1

    def test_has_room(self):
        slwb = Slwb(2)
        assert slwb.has_room(2)
        slwb.alloc(SlwbKind.READ)
        assert slwb.has_room(1)
        assert not slwb.has_room(2)

    def test_peak_occupancy(self):
        slwb = Slwb(4)
        ids = [slwb.alloc(SlwbKind.READ) for _ in range(3)]
        for i in ids:
            slwb.release(i)
        assert slwb.peak_occupancy == 3


class TestWriteCache:
    def test_allocate_on_write(self):
        wc = WriteCache(4)
        assert wc.lookup(8) is None
        wc.write(8, 2, had_copy=True)
        entry = wc.lookup(8)
        assert entry is not None
        assert entry.dirty_words == {2}
        assert entry.had_copy

    def test_combining(self):
        wc = WriteCache(4)
        wc.write(8, 0, had_copy=False)
        wc.write(8, 1, had_copy=False)
        wc.write(8, 1, had_copy=False)
        assert wc.lookup(8).dirty_words == {0, 1}
        assert wc.writes_combined == 2
        assert wc.allocations == 1

    def test_direct_mapped_victimization(self):
        wc = WriteCache(4)
        wc.write(1, 0, had_copy=False)
        victim = wc.write(5, 3, had_copy=True)  # 5 % 4 == 1 % 4
        assert victim is not None
        assert victim.block == 1
        assert wc.lookup(1) is None
        assert wc.lookup(5).dirty_words == {3}

    def test_no_victim_on_distinct_sets(self):
        wc = WriteCache(4)
        assert wc.write(0, 0, had_copy=False) is None
        assert wc.write(1, 0, had_copy=False) is None
        assert len(wc) == 2

    def test_remove(self):
        wc = WriteCache(4)
        wc.write(2, 5, had_copy=False)
        entry = wc.remove(2)
        assert entry.dirty_words == {5}
        assert wc.remove(2) is None

    def test_drain(self):
        wc = WriteCache(4)
        wc.write(0, 0, had_copy=False)
        wc.write(1, 1, had_copy=False)
        entries = wc.drain()
        assert {e.block for e in entries} == {0, 1}
        assert len(wc) == 0

    def test_needs_capacity(self):
        with pytest.raises(ValueError):
            WriteCache(0)
