"""Shared test helpers: tiny machines and hand-written reference streams."""

from __future__ import annotations

import pytest

from repro.config import CacheConfig, Consistency, NetworkConfig, SystemConfig
from repro.core.invariants import check_all
from repro.system import System

#: one 32-byte block per "slot" in hand-written tests
BLOCK = 32


def tiny_config(
    protocol: str = "BASIC",
    consistency: Consistency = Consistency.RC,
    n_procs: int = 4,
    slc_size: int | None = None,
    network: NetworkConfig | None = None,
    **cache_kw,
) -> SystemConfig:
    """A small machine for protocol microtests."""
    return SystemConfig(
        n_procs=n_procs,
        consistency=consistency,
        cache=CacheConfig(slc_size=slc_size, **cache_kw),
        network=network or NetworkConfig(),
    ).with_protocol(protocol)


def run_streams(cfg: SystemConfig, streams, check: bool = True) -> System:
    """Run per-processor op lists to completion (+ invariant check)."""
    system = System(cfg)
    system.run(streams)
    if check:
        check_all(system)
    return system


def idle(n_ops: int = 0):
    """An empty stream (a processor that does nothing)."""
    return []


def pad_streams(streams, n_procs):
    """Extend a partial stream list with idle processors."""
    out = list(streams)
    while len(out) < n_procs:
        out.append([])
    return out


@pytest.fixture
def rc4():
    """4-processor RC BASIC machine config."""
    return tiny_config()
