"""Unit tests for the split-transaction bus and interleaved memory."""

import pytest

from repro.node.bus import SplitTransactionBus
from repro.node.memory import InterleavedMemory


class TestSplitTransactionBus:
    def test_control_message_is_one_cycle(self):
        bus = SplitTransactionBus("b")
        assert bus.cycles_for(8) == 1
        assert bus.access(0, 8) == 3

    def test_block_reply_is_two_cycles(self):
        bus = SplitTransactionBus("b")
        assert bus.cycles_for(40) == 2
        assert bus.access(0, 40) == 6

    def test_exact_width_is_one_cycle(self):
        bus = SplitTransactionBus("b")
        assert bus.cycles_for(32) == 1

    def test_zero_byte_message_still_arbitrates(self):
        bus = SplitTransactionBus("b")
        assert bus.cycles_for(0) == 1

    def test_transactions_serialize(self):
        bus = SplitTransactionBus("b")
        assert bus.access(0, 40) == 6
        assert bus.access(0, 8) == 9
        assert bus.reservations == 2
        assert bus.busy_cycles == 9

    def test_utilization(self):
        bus = SplitTransactionBus("b")
        bus.access(0, 40)
        assert bus.utilization(12) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            SplitTransactionBus("b", width_bytes=0)
        with pytest.raises(ValueError):
            SplitTransactionBus("b", cycle_pclocks=0)


class TestInterleavedMemory:
    def test_bank_selection_is_block_interleaved(self):
        mem = InterleavedMemory("m", n_banks=8)
        assert mem.bank_of(0) == 0
        assert mem.bank_of(7) == 7
        assert mem.bank_of(8) == 0

    def test_distinct_banks_serve_in_parallel(self):
        mem = InterleavedMemory("m", n_banks=8, access_pclocks=24)
        assert mem.access(0, block=0) == 24
        assert mem.access(0, block=1) == 24

    def test_same_bank_serializes(self):
        mem = InterleavedMemory("m", n_banks=8, access_pclocks=24)
        assert mem.access(0, block=0) == 24
        assert mem.access(0, block=8) == 48

    def test_access_counter(self):
        mem = InterleavedMemory("m")
        mem.access(0, 0)
        mem.access(0, 1)
        assert mem.accesses == 2

    def test_peak_bank_utilization(self):
        mem = InterleavedMemory("m", n_banks=2, access_pclocks=10)
        mem.access(0, 0)
        assert mem.peak_bank_utilization(20) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            InterleavedMemory("m", n_banks=0)
        with pytest.raises(ValueError):
            InterleavedMemory("m", access_pclocks=0)
