"""Regression tests for the paper's qualitative results.

These assert the *shapes* of the evaluation -- who wins, in which
direction each extension moves each metric -- at a reduced workload
scale.  Results are cached per module so each configuration simulates
once.
"""

import pytest

from repro.config import Consistency
from repro.sweep import RunSpec, SweepEngine

SCALE = 0.7
_cache: dict = {}
_engine = SweepEngine()


def result(app, proto, consistency=Consistency.RC):
    key = (app, proto, consistency)
    if key not in _cache:
        _cache[key] = _engine.run_one(RunSpec.for_run(
            app, protocol=proto, consistency=consistency, scale=SCALE
        ))
    return _cache[key]


def rel_time(app, proto, consistency=Consistency.RC):
    base = result(app, "BASIC", consistency).execution_time
    return result(app, proto, consistency).execution_time / base


class TestPrefetchingShapes:
    def test_p_cuts_cold_misses_in_lu(self):
        # Table 2: LU cold rate drops by about 4x under P
        basic = result("lu", "BASIC").stats.miss_rate("cold")
        p = result("lu", "P").stats.miss_rate("cold")
        assert p < basic / 2.5

    def test_p_cuts_cold_misses_in_cholesky(self):
        basic = result("cholesky", "BASIC").stats.miss_rate("cold")
        p = result("cholesky", "P").stats.miss_rate("cold")
        assert p < basic / 2

    def test_p_speeds_up_lu(self):
        assert rel_time("lu", "P") < 0.9

    def test_p_barely_cuts_mp3d_coherence(self):
        basic = result("mp3d", "BASIC").stats.miss_rate("coherence")
        p = result("mp3d", "P").stats.miss_rate("coherence")
        assert p < basic * 1.3  # no large increase either


class TestCompetitiveUpdateShapes:
    def test_cw_cuts_coherence_misses_in_ocean(self):
        basic = result("ocean", "BASIC").stats.miss_rate("coherence")
        cw = result("ocean", "CW").stats.miss_rate("coherence")
        assert cw < basic / 3

    def test_cw_leaves_cold_misses_alone(self):
        for app in ("lu", "ocean", "mp3d"):
            basic = result(app, "BASIC").stats.miss_rate("cold")
            cw = result(app, "CW").stats.miss_rate("cold")
            assert cw == pytest.approx(basic, rel=0.15), app

    def test_cw_shortens_remaining_misses_in_mp3d(self):
        # §5.1: "the read penalty reduction ... is essentially due to
        # the shorter latency of the remaining coherence misses"

        def avg_lat(proto):
            stats = result("mp3d", proto).stats
            total = sum(c.read_miss_latency_total for c in stats.caches)
            count = sum(c.read_miss_latency_count for c in stats.caches)
            return total / count

        assert avg_lat("CW") < avg_lat("BASIC") * 0.93

    def test_cw_helps_mp3d_only_modestly(self):
        # migratory sharing limits CW (§3.3 / ref [10])
        basic = result("mp3d", "BASIC").stats.miss_rate("coherence")
        cw = result("mp3d", "CW").stats.miss_rate("coherence")
        assert basic * 0.8 < cw <= basic * 1.05


class TestMigratoryShapes:
    def test_m_cuts_ownership_requests_in_migratory_apps(self):
        for app in ("mp3d", "cholesky"):
            basic = sum(
                c.ownership_requests for c in result(app, "BASIC").stats.caches
            )
            m = sum(c.ownership_requests for c in result(app, "M").stats.caches)
            assert m < basic * 0.85, app

    def test_m_is_a_noop_for_lu(self):
        # LU has no migratory sharing: M == BASIC exactly
        assert rel_time("lu", "M") == pytest.approx(1.0, abs=0.01)

    def test_m_cuts_traffic_for_migratory_apps(self):
        for app in ("mp3d", "cholesky"):
            basic = result(app, "BASIC").stats.network.bytes
            m = result(app, "M").stats.network.bytes
            assert m < basic, app

    def test_m_sc_cuts_write_stall_in_mp3d(self):
        # Figure 3: M-SC removes most of MP3D's write penalty
        basic = result("mp3d", "BASIC", Consistency.SC).stats.mean_write_stall
        m = result("mp3d", "M", Consistency.SC).stats.mean_write_stall
        assert m < basic * 0.4

    def test_m_sc_speeds_up_mp3d_strongly(self):
        # paper: execution time reduced by as much as 39 % (MP3D)
        assert rel_time("mp3d", "M", Consistency.SC) < 0.75


class TestCombinationShapes:
    def test_p_cw_is_the_strongest_rc_combination_for_most_apps(self):
        for app in ("mp3d", "water", "lu", "ocean"):
            assert rel_time(app, "P+CW") <= min(
                rel_time(app, "P"), rel_time(app, "CW")
            ) + 0.02, app

    def test_p_cw_composition_is_additive(self):
        # Table 2 boldface: P+CW inherits P's cold and CW's coherence
        # (mp3d's prefetched cells blur the coherence side at reduced
        # scale, so it is checked in EXPERIMENTS.md at full scale)
        for app in ("water", "ocean"):
            p_cold = result(app, "P").stats.miss_rate("cold")
            cw_coh = result(app, "CW").stats.miss_rate("coherence")
            combo = result(app, "P+CW").stats
            assert combo.miss_rate("cold") == pytest.approx(p_cold, abs=0.4), app
            assert combo.miss_rate("coherence") == pytest.approx(
                cw_coh, abs=0.6
            ), app

    def test_cw_m_wipes_out_cw_gains_for_mp3d(self):
        # §5.1: "the gains of CW are wiped out for all applications
        # exhibiting a significant degree of migratory sharing"
        assert rel_time("mp3d", "CW+M") > rel_time("mp3d", "CW") + 0.05

    def test_p_m_under_sc_is_additive_for_mp3d(self):
        # Figure 3: ~46 % reduction for MP3D
        assert rel_time("mp3d", "P+M", Consistency.SC) < 0.7

    def test_p_m_sc_beats_basic_rc_for_cholesky(self):
        # paper: "P+M under SC outperforms BASIC under RC for three
        # out of the five applications" -- cholesky is one of them
        sc = result("cholesky", "P+M", Consistency.SC).execution_time
        rc = result("cholesky", "BASIC", Consistency.RC).execution_time
        assert sc < rc

    def test_p_sc_increases_write_stall_slightly(self):
        # §5.2: prefetching increases the number of cached copies and
        # hence the invalidations a write must wait for
        basic = result("mp3d", "BASIC", Consistency.SC).stats.mean_write_stall
        p = result("mp3d", "P", Consistency.SC).stats.mean_write_stall
        assert p >= basic * 0.95


class TestTrafficShapes:
    def test_prefetching_adds_traffic(self):
        for app in ("lu", "ocean", "mp3d"):
            basic = result(app, "BASIC").stats.network.bytes
            p = result(app, "P").stats.network.bytes
            assert p > basic, app

    def test_p_m_uses_less_traffic_than_p_cw_for_migratory_apps(self):
        # §5.3: the bandwidth freed by M becomes available to P
        for app in ("mp3d",):
            p_m = result(app, "P+M").stats.network.bytes
            p_cw = result(app, "P+CW").stats.network.bytes
            assert p_m < p_cw, app
