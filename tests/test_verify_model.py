"""The bounded model checker: exploration, guards, counterexamples."""

import pytest

from repro.config import Consistency
from repro.core.extensions import MigratoryExtension
from repro.core.invariants import InvariantViolation
from repro.verify import (
    Stepper,
    VerifyConfig,
    check_model,
    matrix_configs,
    registry_combos,
    shrink_ops,
)


def test_basic_explores_cleanly():
    res = check_model(VerifyConfig(n_nodes=2, n_blocks=1, depth=4))
    assert res.ok
    assert res.explored > 10
    assert res.transitions > res.explored
    assert res.depth_reached >= 4 or res.transitions == res.explored
    assert res.coverage.pairs > 0
    assert ("CLEAN", "RD_REQ") in res.coverage.directory
    assert "ok" in res.summary()


def test_acceptance_combo_p_cw_m_full_map():
    """The ISSUE's acceptance invocation: p,cw,m on a full map."""
    res = check_model(
        VerifyConfig(n_nodes=2, n_blocks=1, depth=4, extensions="p,cw,m")
    )
    assert res.ok
    assert res.explored > 20
    assert not res.truncated


@pytest.mark.parametrize("directory", ["limited:1", "coarse:2"])
def test_inexact_directories_explore_cleanly(directory):
    res = check_model(
        VerifyConfig(
            n_nodes=2, n_blocks=1, depth=3, extensions="m",
            directory=directory,
        )
    )
    assert res.ok


def test_sc_configuration_explores_cleanly():
    res = check_model(
        VerifyConfig(
            n_nodes=2, n_blocks=1, depth=3, consistency=Consistency.SC
        )
    )
    assert res.ok


def test_sync_ops_only_for_sync_sensitive_combos():
    plain = Stepper(VerifyConfig(n_nodes=2, n_blocks=1))
    assert not any(op[0] == "lock" for op in plain.enabled_ops())
    cw = Stepper(VerifyConfig(n_nodes=2, n_blocks=1, extensions="cw"))
    assert ("lock", 0) in cw.enabled_ops()
    # once held, only the holder's unlock is enabled
    cw.apply(("lock", 1))
    ops = cw.enabled_ops()
    assert ("unlock", 1) in ops
    assert not any(op[0] == "lock" for op in ops)


def test_unguarded_lock_ops_are_invalid_sequences():
    stepper = Stepper(VerifyConfig(n_nodes=2, n_blocks=1, extensions="cw"))
    with pytest.raises(ValueError, match="invalid sequence"):
        stepper.apply(("unlock", 0))


def test_broken_extension_yields_minimized_counterexample(monkeypatch):
    """The deliberately broken extension of the acceptance criteria: an
    exclusive read grant that ignores existing sharers must produce a
    minimized, replayable counterexample."""
    monkeypatch.setattr(
        MigratoryExtension,
        "grants_exclusive_read",
        lambda self, home, entry, msg: len(entry.sharers) > 0,
    )
    res = check_model(
        VerifyConfig(n_nodes=2, n_blocks=1, depth=4, extensions="m")
    )
    assert not res.ok
    cx = res.violation
    # minimal reproduction: a read installing a sharer, then the read
    # that is wrongly granted exclusivity
    assert len(cx.ops) == 2
    assert all(op[0] == "read" for op in cx.ops)
    assert "exclusive holder" in cx.error
    with pytest.raises(InvariantViolation, match="exclusive holder"):
        cx.replay()
    assert "counterexample" in cx.describe()


def test_shrink_ops_is_greedy_deletion():
    def fails(ops):
        return "a" in ops and "b" in ops

    assert sorted(shrink_ops(("x", "a", "y", "b", "z", "a"), fails)) == [
        "a",
        "b",
    ]


def test_registry_combos_respect_conflicts_and_consistency():
    rc = registry_combos(Consistency.RC)
    assert "BASIC" in rc
    assert "P+CW+M" in rc
    assert not any("P+PF" in c or "PF+P" in c for c in rc)
    sc = registry_combos(Consistency.SC)
    assert "BASIC" in sc
    assert not any("CW" in c for c in sc)
    assert len(sc) < len(rc)


def test_matrix_configs_cross_product():
    configs = matrix_configs(depth=2, directories=("full_map",))
    combos = len(registry_combos(Consistency.RC)) + len(
        registry_combos(Consistency.SC)
    )
    assert len(configs) == combos
    assert all(c.depth == 2 for c in configs)
