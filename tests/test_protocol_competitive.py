"""Integration tests for the competitive-update mechanism (CW)."""

import pytest
from conftest import BLOCK, pad_streams, run_streams, tiny_config

from repro.config import (
    CompetitiveConfig,
    ProtocolConfig,
    SystemConfig,
)
from repro.core.states import CacheState, MemoryState
from repro.system import System
from repro.core.invariants import check_all


def cs(lock, body):
    """A critical section around ``body``."""
    return [("acquire", lock)] + body + [("release", lock)]


LOCK = 8 * 4096  # lock variable on its own page


class TestWriteCache:
    def test_writes_combine_until_release(self):
        cfg = tiny_config("CW")
        ops = cs(LOCK, [("write", 0), ("write", 4), ("write", 8)])
        system = run_streams(cfg, pad_streams([ops], 4))
        cache = system.stats.caches[0]
        # three writes to the same block -> a single flush
        assert cache.write_cache_flushes == 1
        wc = system.nodes[0].cache.wcache
        assert wc is not None and len(wc) == 0  # drained at release

    def test_flush_carries_only_dirty_words(self):
        cfg = tiny_config("CW")
        remote = 4096  # homed at node 1: the flush crosses the network
        ops = cs(LOCK, [("write", remote), ("write", remote + 4)])
        system = run_streams(cfg, pad_streams([ops], 4))
        assert system.stats.network.by_type.get("WC_FLUSH", 0) == 1
        # header (8) + two dirty words (8) going out, WC_ACK (8) back,
        # LOCK_REQ/GRANT/REL/REL_ACK (32): far less than a 40-byte block
        flush_bytes = 8 + 2 * 4
        assert system.stats.network.bytes >= flush_bytes

    def test_victimization_flushes_conflicting_entry(self):
        cfg = tiny_config("CW")
        # blocks 0 and 4 conflict in the 4-entry write cache
        ops = [("read", 0), ("write", 0), ("write", 4 * BLOCK),
               ("think", 2000)]
        system = run_streams(cfg, pad_streams([ops], 4))
        assert system.stats.caches[0].write_cache_flushes >= 1

    def test_read_hits_in_write_cache(self):
        cfg = tiny_config("CW")
        # write allocates in the write cache only; the read that
        # follows must not count as a demand miss
        ops = [("write", 0), ("read", 0), ("think", 2000)]
        system = run_streams(cfg, pad_streams([ops], 4))
        assert system.stats.caches[0].demand_read_misses == 0


class TestUpdatePropagation:
    def test_sharers_receive_updates(self):
        cfg = tiny_config("CW")
        streams = pad_streams(
            [
                cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 4000)],
                [("read", 0), ("think", 8000)],
            ],
            4,
        )
        system = run_streams(cfg, streams)
        assert system.stats.caches[1].updates_received >= 1

    def test_active_reader_copy_survives_updates(self):
        cfg = tiny_config("CW")
        streams = pad_streams(
            [
                # writer: repeated flushes via critical sections
                cs(LOCK, [("read", 0), ("write", 0)])
                + [("think", 3000)]
                + cs(LOCK, [("write", 0)])
                + [("think", 3000)]
                + cs(LOCK, [("write", 0)]),
                # reader: touches the block between every update
                [("read", 0)] + [
                    op
                    for _ in range(40)
                    for op in (("think", 300), ("read", 0))
                ],
            ],
            4,
        )
        system = run_streams(cfg, streams)
        # the reader re-accessed between updates: no coherence miss
        assert system.stats.caches[1].coherence_misses == 0
        line = system.nodes[1].cache.slc.lookup(0)
        assert line is not None

    def test_idle_copy_drops_after_tolerance(self):
        cfg = tiny_config("CW")
        streams = pad_streams(
            [
                cs(LOCK, [("read", 0), ("write", 0)])
                + [("think", 2000)]
                + cs(LOCK, [("write", 0)])
                + [("think", 2000)]
                + cs(LOCK, [("write", 0)]),
                [("read", 0), ("think", 30000)],  # reads once, then idle
            ],
            4,
        )
        system = run_streams(cfg, streams)
        assert system.stats.caches[1].updates_dropped >= 1
        assert system.nodes[1].cache.slc.lookup(0) is None

    def test_memory_stays_clean_so_misses_are_two_hop(self):
        # §3.3: "the likelihood of finding a clean copy at memory is
        # higher", shortening the remaining coherence misses
        def ping_pong(proto):
            streams = pad_streams(
                [
                    cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 6000)],
                    [("think", 3000)] + cs(LOCK, [("read", 0), ("write", 0)])
                    + [("think", 3000)],
                    [("think", 9000), ("read", 0)],
                ],
                4,
            )
            return run_streams(tiny_config(proto), streams)

        cw = ping_pong("CW")
        basic = ping_pong("BASIC")
        cw_lat = cw.stats.caches[2].read_miss_latency_total
        basic_lat = basic.stats.caches[2].read_miss_latency_total
        assert cw_lat < basic_lat


class TestExclusivityKnob:
    def _cfg(self, exclusive_grant):
        proto = ProtocolConfig(
            competitive_update=True,
            competitive_params=CompetitiveConfig(exclusive_grant=exclusive_grant),
        )
        return SystemConfig(n_procs=4, protocol=proto)

    def test_sole_sharer_gets_exclusivity_when_enabled(self):
        cfg = self._cfg(True)
        ops = cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 2000)]
        system = System(cfg)
        system.run(pad_streams([ops], 4))
        check_all(system)
        line = system.nodes[0].cache.slc.lookup(0)
        assert line is not None and line.state is CacheState.DIRTY
        entry = system.nodes[0].home.directory.entry(0)
        assert entry.state is MemoryState.MODIFIED

    def test_no_exclusivity_by_default(self):
        cfg = self._cfg(False)
        ops = cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 2000)]
        system = System(cfg)
        system.run(pad_streams([ops], 4))
        check_all(system)
        line = system.nodes[0].cache.slc.lookup(0)
        assert line is not None and line.state is CacheState.SHARED
        entry = system.nodes[0].home.directory.entry(0)
        assert entry.state is MemoryState.CLEAN


class TestCwPlusM:
    def test_migratory_detected_from_update_sequences(self):
        # §3.4: alternating updaters + interrogation of copy holders
        cfg = tiny_config("CW+M")
        streams = pad_streams(
            [
                cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 6000)]
                + cs(LOCK, [("read", 0), ("write", 0)]),
                [("think", 3000)] + cs(LOCK, [("read", 0), ("write", 0)])
                + [("think", 6000)] + cs(LOCK, [("read", 0), ("write", 0)]),
            ],
            4,
        )
        system = run_streams(cfg, streams)
        assert system.nodes[0].home.migratory_detections >= 1

    def test_cw_plus_m_stops_update_propagation(self):
        def updates(proto):
            streams = pad_streams(
                [
                    cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 8000)]
                    + cs(LOCK, [("read", 0), ("write", 0)]) + [("think", 2000)]
                    + cs(LOCK, [("read", 0), ("write", 0)]),
                    [("think", 4000)] + cs(LOCK, [("read", 0), ("write", 0)])
                    + [("think", 8000)]
                    + cs(LOCK, [("read", 0), ("write", 0)]),
                ],
                4,
            )
            system = run_streams(tiny_config(proto), streams)
            return sum(c.updates_received for c in system.stats.caches)

        assert updates("CW+M") < updates("CW")


class TestCwRestrictions:
    def test_cw_requires_rc(self):
        from repro.config import Consistency

        with pytest.raises(ValueError):
            tiny_config("CW", consistency=Consistency.SC)
