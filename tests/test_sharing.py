"""Tests for the sharing-pattern analyzer."""

from repro.config import SystemConfig
from repro.mem.addrmap import AddressMap
from repro.stats.sharing import (
    Pattern,
    analyze,
    classify_block,
    collect_usage,
)
from repro.workloads import build_workload

AMAP = AddressMap(n_nodes=4)
B = 32


class TestCollectUsage:
    def test_counts_reads_and_writes(self):
        streams = [[("read", 0), ("write", 4)], [("read", 0)]]
        usage = collect_usage(streams, AMAP)
        assert usage[0].reads == 2
        assert usage[0].writes == 1
        assert usage[0].readers == {0, 1}
        assert usage[0].writers == {0}

    def test_rmw_burst_detection(self):
        streams = [[("read", 0), ("think", 3), ("write", 0)]]
        usage = collect_usage(streams, AMAP)
        assert usage[0].rmw_bursts[0] == 1

    def test_intervening_access_breaks_burst(self):
        streams = [[("read", 0), ("read", B), ("write", 0)]]
        usage = collect_usage(streams, AMAP)
        assert usage[0].rmw_bursts[0] == 0

    def test_sync_ops_break_bursts_but_are_not_accesses(self):
        streams = [[("read", 0), ("barrier", 0), ("write", 0)]]
        usage = collect_usage(streams, AMAP)
        assert usage[0].rmw_bursts[0] == 0
        assert usage[0].reads == 1 and usage[0].writes == 1


class TestClassification:
    def test_private(self):
        streams = [[("read", 0), ("write", 0)], []]
        profile = analyze(streams, AMAP)
        assert profile.blocks[0] is Pattern.PRIVATE

    def test_read_only(self):
        streams = [[("read", 0)], [("read", 0)], [("read", 0)]]
        profile = analyze(streams, AMAP)
        assert profile.blocks[0] is Pattern.READ_ONLY

    def test_migratory(self):
        streams = [
            [("read", 0), ("write", 0)],
            [("read", 0), ("write", 0)],
            [("read", 0), ("write", 0)],
        ]
        profile = analyze(streams, AMAP)
        assert profile.blocks[0] is Pattern.MIGRATORY

    def test_producer_consumer(self):
        streams = [
            [("write", 0), ("write", 0)],
            [("read", 0)],
            [("read", 0)],
            [("read", 0)],
        ]
        profile = analyze(streams, AMAP)
        assert profile.blocks[0] is Pattern.PRODUCER_CONSUMER

    def test_irregular_read_write(self):
        # two writers that never read-modify-write, one reader
        streams = [
            [("write", 0)],
            [("write", 0), ("read", 0)],
        ]
        usage = collect_usage(streams, AMAP)
        assert classify_block(usage[0]) in (
            Pattern.READ_WRITE,
            Pattern.PRODUCER_CONSUMER,
        )


class TestProfileAggregates:
    def test_census_and_reference_census(self):
        streams = [
            [("read", 0), ("read", B), ("write", B)],
            [("read", 0)],
        ]
        profile = analyze(streams, AMAP)
        census = profile.census()
        assert census[Pattern.READ_ONLY] == 1
        assert census[Pattern.PRIVATE] == 1
        refs = profile.reference_census()
        assert refs[Pattern.READ_ONLY] == 2
        assert refs[Pattern.PRIVATE] == 2

    def test_fraction_of_refs(self):
        streams = [[("read", 0)], [("read", 0)]]
        profile = analyze(streams, AMAP)
        assert profile.fraction_of_refs(Pattern.READ_ONLY) == 1.0
        assert profile.fraction_of_refs(Pattern.MIGRATORY) == 0.0

    def test_blocks_of(self):
        streams = [[("read", 0)], [("read", 0)]]
        profile = analyze(streams, AMAP)
        assert profile.blocks_of(Pattern.READ_ONLY) == [0]


class TestWorkloadSignatures:
    """The synthetic applications carry their claimed signatures."""

    def _profile(self, app):
        cfg = SystemConfig()
        streams = build_workload(app, cfg, scale=0.5)
        amap = AddressMap(n_nodes=cfg.n_procs)
        return analyze(streams, amap)

    def test_mp3d_is_dominated_by_migratory_cells(self):
        profile = self._profile("mp3d")
        assert profile.fraction_of_refs(Pattern.MIGRATORY) > 0.10
        assert profile.census()[Pattern.MIGRATORY] >= 30  # the cells

    def test_cholesky_has_migratory_columns(self):
        profile = self._profile("cholesky")
        assert profile.census()[Pattern.MIGRATORY] > 0

    def test_water_positions_are_producer_consumer(self):
        profile = self._profile("water")
        census = profile.census()
        assert census[Pattern.PRODUCER_CONSUMER] > 0
        assert census[Pattern.MIGRATORY] > 0  # the force records

    def test_lu_mixes_private_blocks_and_pivot_sharing(self):
        profile = self._profile("lu")
        census = profile.census()
        assert census[Pattern.PRIVATE] > 0
        # pivot panels: written by the owner, read by the row/column
        assert census[Pattern.PRODUCER_CONSUMER] > 0

    def test_ocean_boundary_is_shared_interior_private(self):
        profile = self._profile("ocean")
        census = profile.census()
        assert census[Pattern.PRIVATE] > census[Pattern.READ_WRITE]
        shared = sum(
            census[p]
            for p in (
                Pattern.PRODUCER_CONSUMER,
                Pattern.READ_WRITE,
                Pattern.MIGRATORY,
            )
        )
        assert shared > 0
