"""Unit tests for protocol messages and their network sizes."""

from repro.core.messages import (
    BLOCK_BYTES,
    HEADER_BYTES,
    HOME_BOUND,
    Message,
    MsgType,
)


def _msg(mtype, **kw):
    return Message(mtype, src=0, dst=1, block=10, **kw)


class TestSizes:
    def test_control_messages_are_header_only(self):
        for mtype in (
            MsgType.RD_REQ,
            MsgType.OWN_REQ,
            MsgType.INV,
            MsgType.INV_ACK,
            MsgType.FETCH,
            MsgType.FETCH_INV,
            MsgType.LOCK_REQ,
            MsgType.BAR_ARRIVE,
            MsgType.WC_ACK,
        ):
            assert _msg(mtype).size_bytes == HEADER_BYTES
            assert not _msg(mtype).carries_data

    def test_data_replies_carry_a_block(self):
        for mtype in (MsgType.RD_RPL, MsgType.RDX_RPL, MsgType.WB):
            msg = _msg(mtype)
            assert msg.size_bytes == HEADER_BYTES + BLOCK_BYTES
            assert msg.carries_data

    def test_selective_word_flush(self):
        # §3.3: "the dirty bits are also used to selectively send the
        # modified words ... using a single request"
        assert _msg(MsgType.WC_FLUSH, words=1).size_bytes == HEADER_BYTES + 4
        assert _msg(MsgType.WC_FLUSH, words=8).size_bytes == HEADER_BYTES + 32
        assert _msg(MsgType.UPD_PROP, words=3).size_bytes == HEADER_BYTES + 12

    def test_xfer_ack_carries_data_only_when_modified(self):
        assert _msg(MsgType.XFER_ACK).size_bytes == HEADER_BYTES
        assert (
            _msg(MsgType.XFER_ACK, was_modified=True).size_bytes
            == HEADER_BYTES + BLOCK_BYTES
        )

    def test_inv_ack_piggybacks_write_cache_words(self):
        assert _msg(MsgType.INV_ACK).size_bytes == HEADER_BYTES
        assert _msg(MsgType.INV_ACK, words=2).size_bytes == HEADER_BYTES + 8


class TestRouting:
    def test_requests_and_acks_are_home_bound(self):
        for mtype in (
            MsgType.RD_REQ,
            MsgType.RDX_REQ,
            MsgType.OWN_REQ,
            MsgType.WB,
            MsgType.REPL,
            MsgType.WC_FLUSH,
            MsgType.LOCK_REQ,
            MsgType.LOCK_REL,
            MsgType.BAR_ARRIVE,
            MsgType.INV_ACK,
            MsgType.UPD_ACK,
            MsgType.MIG_RPL,
            MsgType.XFER_ACK,
        ):
            assert mtype in HOME_BOUND

    def test_replies_and_coherence_commands_are_cache_bound(self):
        for mtype in (
            MsgType.RD_RPL,
            MsgType.RDX_RPL,
            MsgType.OWN_ACK,
            MsgType.INV,
            MsgType.FETCH,
            MsgType.FETCH_INV,
            MsgType.UPD_PROP,
            MsgType.MIG_QUERY,
            MsgType.WC_ACK,
            MsgType.WB_ACK,
            MsgType.LOCK_GRANT,
            MsgType.LOCK_REL_ACK,
            MsgType.BAR_WAKE,
        ):
            assert mtype not in HOME_BOUND
