"""Tests for the experiment text renderers."""

from repro.experiments.formats import (
    decomposition,
    render_stacked_bars,
    render_table,
)
from repro.stats.counters import MachineStats


class TestRenderTable:
    def test_alignment_and_headers(self):
        text = render_table(
            ("name", "value"),
            [("short", 1.0), ("a-much-longer-name", 12.345)],
            title="t",
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert "name" in lines[1] and "value" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # all rows have equal rendered width for the first column
        assert lines[3].index("1.00") == lines[4].index("12.35")

    def test_float_formatting(self):
        text = render_table(("x",), [(0.123456,)])
        assert "0.12" in text

    def test_non_float_cells_pass_through(self):
        text = render_table(("a", "b"), [("s", 7)])
        assert "s" in text and "7" in text


class TestStackedBars:
    def test_reference_scaling(self):
        bars = [
            ("BASIC", {"busy": 50.0, "read": 50.0}),
            ("P", {"busy": 50.0, "read": 0.0}),
        ]
        text = render_stacked_bars(bars, width=20, reference=100.0)
        lines = text.splitlines()
        assert lines[0].endswith("1.00")
        assert lines[1].endswith("0.50")

    def test_glyph_legend_present(self):
        text = render_stacked_bars([("x", {"busy": 1.0})])
        assert "#=busy" in text

    def test_title(self):
        text = render_stacked_bars([("x", {"busy": 1.0})], title="[app]")
        assert text.splitlines()[0] == "[app]"

    def test_zero_total_does_not_crash(self):
        assert render_stacked_bars([("x", {})])


def test_decomposition_reads_machine_stats():
    stats = MachineStats.for_nodes(2)
    stats.procs[0].busy = 10
    stats.procs[1].busy = 30
    stats.procs[0].read_stall = 4
    stats.procs[1].read_stall = 0
    d = decomposition(stats)
    assert d["busy"] == 20
    assert d["read"] == 2
    assert set(d) == {"busy", "read", "write", "acquire", "release"}
