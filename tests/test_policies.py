"""Unit tests for the factored-out M and CW policy modules."""

from repro.config import CompetitiveConfig, ProtocolConfig
from repro.core import competitive, migratory
from repro.core.competitive import CompetitivePolicy
from repro.core.directory import DirectoryEntry
from repro.core.messages import Message, MsgType
from repro.mem.slc import CacheLine
from repro.core.states import CacheState


def own_req(src=1, block=0):
    return Message(MsgType.OWN_REQ, src=src, dst=0, block=block)


def flush(src=1, block=0):
    return Message(MsgType.WC_FLUSH, src=src, dst=0, block=block)


M = ProtocolConfig.from_name("M")
CW = ProtocolConfig.from_name("CW")
CWM = ProtocolConfig.from_name("CW+M")
BASIC = ProtocolConfig()


class TestMigratoryDetection:
    def test_canonical_two_processor_pattern(self):
        entry = DirectoryEntry(sharers={1, 2}, last_writer=2)
        assert migratory.detects_on_ownership(M, entry, own_req(src=1))

    def test_requires_migratory_protocol(self):
        entry = DirectoryEntry(sharers={1, 2}, last_writer=2)
        assert not migratory.detects_on_ownership(BASIC, entry, own_req(1))

    def test_cw_disables_ownership_detection(self):
        entry = DirectoryEntry(sharers={1, 2}, last_writer=2)
        assert not migratory.detects_on_ownership(CWM, entry, own_req(1))

    def test_write_miss_is_not_a_sequence(self):
        entry = DirectoryEntry(sharers={1, 2}, last_writer=2)
        msg = Message(MsgType.RDX_REQ, src=1, dst=0, block=0)
        assert not migratory.detects_on_ownership(M, entry, msg)

    def test_needs_exactly_one_other_copy(self):
        assert not migratory.detects_on_ownership(
            M, DirectoryEntry(sharers={1}, last_writer=1), own_req(1)
        )
        assert not migratory.detects_on_ownership(
            M, DirectoryEntry(sharers={1, 2, 3}, last_writer=2), own_req(1)
        )

    def test_other_copy_must_be_last_writer(self):
        entry = DirectoryEntry(sharers={1, 2}, last_writer=5)
        assert not migratory.detects_on_ownership(M, entry, own_req(1))


class TestInterrogation:
    def test_candidate_rule(self):
        entry = DirectoryEntry(sharers={1, 2}, last_updater=2)
        assert migratory.wants_interrogation(CWM, entry, flush(src=1))

    def test_same_updater_is_not_a_candidate(self):
        entry = DirectoryEntry(sharers={1, 2}, last_updater=1)
        assert not migratory.wants_interrogation(CWM, entry, flush(src=1))

    def test_single_copy_is_not_a_candidate(self):
        entry = DirectoryEntry(sharers={1}, last_updater=2)
        assert not migratory.wants_interrogation(CWM, entry, flush(src=1))

    def test_needs_both_extensions(self):
        entry = DirectoryEntry(sharers={1, 2}, last_updater=2)
        assert not migratory.wants_interrogation(CW, entry, flush(src=1))
        assert not migratory.wants_interrogation(M, entry, flush(src=1))

    def test_confirmation_requires_unanimity(self):
        assert migratory.confirms_interrogation({2, 3}, {2, 3})
        assert not migratory.confirms_interrogation({2, 3}, {2})
        assert not migratory.confirms_interrogation(set(), set())


class TestReversion:
    def test_unmodified_transfer_reverts(self):
        assert migratory.reverts_on_unmodified_transfer(False)
        assert not migratory.reverts_on_unmodified_transfer(True)

    def test_second_reader_reverts(self):
        entry = DirectoryEntry(sharers={3})
        assert migratory.reverts_on_second_reader(entry, requester=1)
        assert not migratory.reverts_on_second_reader(entry, requester=3)
        assert not migratory.reverts_on_second_reader(
            DirectoryEntry(), requester=1
        )

    def test_exclusive_read_grant_gate(self):
        entry = DirectoryEntry(migratory=True)
        assert migratory.grants_exclusive_read(M, entry)
        assert not migratory.grants_exclusive_read(BASIC, entry)
        assert not migratory.grants_exclusive_read(
            M, DirectoryEntry(migratory=False)
        )


class TestCompetitivePolicy:
    def _line(self):
        return CacheLine(block=0, state=CacheState.SHARED)

    def test_fill_presets_tolerance(self):
        policy = CompetitivePolicy(CompetitiveConfig(threshold=1))
        line = self._line()
        policy.on_fill(line)
        assert line.comp_count == 1
        assert line.accessed_since_update

    def test_active_copy_survives_any_number_of_updates(self):
        policy = CompetitivePolicy(CompetitiveConfig(threshold=1))
        line = self._line()
        policy.on_fill(line)
        for _ in range(10):
            policy.on_local_access(line)
            assert policy.on_update(line) is False

    def test_idle_copy_drops_at_second_update(self):
        policy = CompetitivePolicy(CompetitiveConfig(threshold=1))
        line = self._line()
        policy.on_fill(line)
        assert policy.on_update(line) is False  # accessed at fill
        assert policy.on_update(line) is True   # idle since

    def test_threshold_four_tolerates_more(self):
        policy = CompetitivePolicy(CompetitiveConfig(threshold=4))
        line = self._line()
        policy.on_fill(line)
        drops = [policy.on_update(line) for _ in range(6)]
        assert drops == [False, False, False, False, True, True]

    def test_modifying_access_sets_modified_bit(self):
        policy = CompetitivePolicy(CompetitiveConfig())
        line = self._line()
        policy.on_local_access(line, modifying=True)
        assert line.modified_since_update
        policy.on_update(line)
        assert not line.modified_since_update


class TestExclusivityRule:
    def test_needs_a_copy(self):
        entry = DirectoryEntry(sharers=set())
        assert not competitive.grants_exclusivity_on_flush(True, entry, 1)

    def test_knob_controls_plain_blocks(self):
        entry = DirectoryEntry(sharers={1})
        assert competitive.grants_exclusivity_on_flush(True, entry, 1)
        assert not competitive.grants_exclusivity_on_flush(False, entry, 1)

    def test_migratory_blocks_always_migrate(self):
        entry = DirectoryEntry(sharers={1}, migratory=True)
        assert competitive.grants_exclusivity_on_flush(False, entry, 1)
