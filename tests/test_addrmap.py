"""Unit and property tests for address mapping and allocation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mem.addrmap import WORD_SIZE, AddressMap, AddressSpace

AMAP = AddressMap(block_size=32, page_size=4096, n_nodes=16)


def test_block_arithmetic():
    assert AMAP.block_of(0) == 0
    assert AMAP.block_of(31) == 0
    assert AMAP.block_of(32) == 1
    assert AMAP.block_base(3) == 96


def test_word_of():
    assert AMAP.word_of(0) == 0
    assert AMAP.word_of(4) == 1
    assert AMAP.word_of(31) == 7
    assert AMAP.word_of(32) == 0
    assert AMAP.words_per_block() == 8


def test_round_robin_home_placement():
    # consecutive pages rotate around the nodes
    for page in range(64):
        addr = page * 4096
        assert AMAP.home_of(addr) == page % 16


def test_home_consistent_between_block_and_addr():
    for addr in (0, 100, 4096, 123456):
        assert AMAP.home_of(addr) == AMAP.home_of_block(AMAP.block_of(addr))


@given(st.integers(min_value=0, max_value=2**40))
def test_block_contains_its_base(addr):
    block = AMAP.block_of(addr)
    base = AMAP.block_base(block)
    assert base <= addr < base + 32


@given(st.integers(min_value=0, max_value=2**40))
def test_word_index_in_range(addr):
    assert 0 <= AMAP.word_of(addr) < 32 // WORD_SIZE


@given(st.integers(min_value=0, max_value=2**32))
def test_home_in_range(addr):
    assert 0 <= AMAP.home_of(addr) < 16


class TestAddressSpace:
    def test_allocations_do_not_overlap(self):
        space = AddressSpace(AMAP)
        a = space.alloc("a", 100)
        b = space.alloc("b", 200)
        assert a + 100 <= b

    def test_block_alignment_default(self):
        space = AddressSpace(AMAP)
        space.alloc("x", 33)
        y = space.alloc("y", 10)
        assert y % 32 == 0

    def test_page_alignment(self):
        space = AddressSpace(AMAP)
        space.alloc("x", 1)
        y = space.alloc_page_aligned("y", 10)
        assert y % 4096 == 0

    def test_duplicate_name_rejected(self):
        space = AddressSpace(AMAP)
        space.alloc("x", 1)
        with pytest.raises(ValueError):
            space.alloc("x", 1)

    def test_region_lookup(self):
        space = AddressSpace(AMAP)
        base = space.alloc("r", 64)
        assert space.region("r") == (base, 64)

    def test_bad_sizes_rejected(self):
        space = AddressSpace(AMAP)
        with pytest.raises(ValueError):
            space.alloc("zero", 0)
        with pytest.raises(ValueError):
            space.alloc("align", 8, align=3)

    @given(st.lists(st.integers(min_value=1, max_value=10000), min_size=1, max_size=20))
    def test_property_no_overlap(self, sizes):
        space = AddressSpace(AMAP)
        regions = []
        for i, size in enumerate(sizes):
            base = space.alloc(f"r{i}", size)
            regions.append((base, size))
        for (b1, s1), (b2, s2) in zip(regions, regions[1:]):
            assert b1 + s1 <= b2
