"""Unit tests for the full-map directory."""

from repro.core.directory import (
    Directory,
    DirectoryEntry,
    directory_bits_per_block,
)
from repro.core.states import MemoryState


def test_lazy_entries_default_clean():
    directory = Directory()
    assert 5 not in directory
    entry = directory.entry(5)
    assert entry.state is MemoryState.CLEAN
    assert entry.sharers == set()
    assert entry.owner is None
    assert not entry.migratory
    assert 5 in directory


def test_entry_identity_is_stable():
    directory = Directory()
    a = directory.entry(1)
    a.sharers.add(3)
    assert directory.entry(1).sharers == {3}


def test_holders_clean_vs_modified():
    entry = DirectoryEntry()
    entry.sharers = {1, 2}
    assert entry.holders() == {1, 2}
    entry.state = MemoryState.MODIFIED
    entry.owner = 7
    assert entry.holders() == {7}
    entry.owner = None
    assert entry.holders() == set()


def test_known_blocks():
    directory = Directory()
    directory.entry(1)
    directory.entry(9)
    assert sorted(directory.known_blocks()) == [1, 9]


class TestDirectoryBits:
    def test_basic_is_n_plus_3(self):
        # paper §2: "N+3 bits per memory block for N nodes"
        assert directory_bits_per_block(16) == 19
        assert directory_bits_per_block(64) == 67

    def test_migratory_adds_bit_and_pointer(self):
        # Table 1: one migratory bit + log2(N)-bit pointer
        assert directory_bits_per_block(16, migratory=True) == 19 + 1 + 4
        assert directory_bits_per_block(64, migratory=True) == 67 + 1 + 6
