"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.app == "mp3d"
        assert args.protocol == "BASIC"
        assert args.consistency == "RC"

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--app", "fft"])

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_mesh_flag(self):
        args = build_parser().parse_args(["run", "--mesh", "16"])
        assert args.mesh == 16

    def test_extensions_flag(self):
        args = build_parser().parse_args(["run", "--extensions", "p,m"])
        assert args.extensions == "p,m"
        args = build_parser().parse_args(
            ["compare", "--extensions", "basic", "pf+m"]
        )
        assert args.extensions == ["basic", "pf+m"]


class TestCommands:
    def test_run_prints_summary(self, capsys):
        rc = main(["run", "--app", "water", "--scale", "0.2",
                   "--protocol", "P", "--procs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "execution time" in out
        assert "coherence miss %" in out

    def test_run_under_sc(self, capsys):
        rc = main(["run", "--app", "water", "--scale", "0.2",
                   "--consistency", "SC", "--procs", "4"])
        assert rc == 0
        assert "write stall" in capsys.readouterr().out

    def test_run_on_mesh(self, capsys):
        rc = main(["run", "--app", "water", "--scale", "0.2",
                   "--mesh", "32", "--procs", "4"])
        assert rc == 0

    def test_compare_ranks_protocols(self, capsys):
        rc = main([
            "compare", "--app", "water", "--scale", "0.2", "--procs", "4",
            "--protocols", "BASIC", "P",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "BASIC" in out and "P" in out
        assert "rel. time" in out

    def test_run_with_extensions_combo(self, capsys):
        rc = main(["run", "--app", "water", "--scale", "0.2",
                   "--procs", "4", "--extensions", "pf,m"])
        assert rc == 0
        assert "water / PF+M" in capsys.readouterr().out

    def test_compare_with_extension_combos(self, capsys):
        rc = main([
            "compare", "--app", "water", "--scale", "0.2", "--procs", "4",
            "--extensions", "BASIC", "m+cw", "--no-cache",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "CW+M" in out  # canonicalized combo name

    def test_list_extensions(self, capsys):
        rc = main(["list-extensions"])
        assert rc == 0
        out = capsys.readouterr().out
        for name in ("P", "PF", "CW", "M"):
            assert name in out
        assert "PrefetchConfig" in out

    def test_analyze_census(self, capsys):
        rc = main(["analyze", "--app", "mp3d", "--scale", "0.2",
                   "--procs", "4"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "migratory" in out
        assert "private" in out

    def test_trace_roundtrip(self, tmp_path, capsys):
        out_file = tmp_path / "w.trace"
        rc = main(["trace", "--app", "water", "--scale", "0.2",
                   "--procs", "4", "--out", str(out_file)])
        assert rc == 0
        assert out_file.exists()
        rc = main(["run", "--app", "water", "--procs", "4",
                   "--trace-file", str(out_file)])
        assert rc == 0

    def test_experiments_table1(self, capsys):
        rc = main(["experiments", "table1"])
        assert rc == 0
        assert "Table 1" in capsys.readouterr().out


class TestVerify:
    def test_verify_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["verify"])

    def test_verify_model_single_combo(self, capsys):
        rc = main([
            "verify", "model", "--nodes", "2", "--blocks", "1",
            "--extensions", "p,cw,m", "--directory", "full",
            "--depth", "3",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "P+CW+M / full / RC" in out
        assert "states" in out and "transitions" in out
        assert "directory transitions reached" in out
        assert "0 violation(s)" in out

    def test_verify_model_matrix_mode(self, capsys):
        rc = main([
            "verify", "model", "--depth", "1",
            "--directory", "full_map", "--consistency", "SC",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        # SC matrix: BASIC, P, PF, M, P+M, PF+M (CW requires RC)
        assert "BASIC / full_map / SC" in out
        assert "P+M / full_map / SC" in out
        assert "CW" not in out
        assert "6 config(s)" in out
        # matrix mode keeps the per-combo listing behind --coverage
        assert "directory transitions reached" not in out

    def test_verify_model_reports_violations(self, capsys, monkeypatch):
        from repro.core.extensions import MigratoryExtension

        monkeypatch.setattr(
            MigratoryExtension,
            "grants_exclusive_read",
            lambda self, home, entry, msg: len(entry.sharers) > 0,
        )
        rc = main([
            "verify", "model", "--extensions", "m", "--depth", "3",
        ])
        assert rc == 1
        out = capsys.readouterr().out
        assert "VIOLATION" in out
        assert "counterexample" in out
        assert "exclusive holder" in out

    def test_verify_fuzz_short_campaign(self, capsys):
        rc = main([
            "verify", "fuzz", "--seed", "3", "--trials", "1",
            "--ops", "300",
        ])
        assert rc == 0
        assert "1 trial(s) ok" in capsys.readouterr().out

    def test_verify_registry(self, capsys):
        rc = main(["verify", "registry"])
        assert rc == 0
        out = capsys.readouterr().out
        assert "registry ok" in out
        assert "sync_sensitive" in out
