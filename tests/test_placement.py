"""Tests for page-placement policies and the placement study."""

from dataclasses import replace

import pytest
from conftest import pad_streams, run_streams, tiny_config

from repro.config import SystemConfig
from repro.mem.placement import (
    FirstTouchPlacement,
    RoundRobinPlacement,
    make_placement,
)


class TestPolicies:
    def test_round_robin(self):
        p = RoundRobinPlacement(4)
        assert [p.home_of_page(i) for i in range(6)] == [0, 1, 2, 3, 0, 1]

    def test_first_touch_assigns_to_toucher(self):
        p = FirstTouchPlacement(4)
        assert p.home_of_page(7, toucher=2) == 2
        # sticky for every later toucher
        assert p.home_of_page(7, toucher=3) == 2
        assert p.assigned_pages == 1

    def test_first_touch_fallback_without_toucher(self):
        p = FirstTouchPlacement(4)
        assert p.home_of_page(5, toucher=None) == 1  # 5 % 4
        assert p.assigned_pages == 0  # not recorded

    def test_distribution(self):
        p = FirstTouchPlacement(4)
        p.home_of_page(0, toucher=1)
        p.home_of_page(1, toucher=1)
        p.home_of_page(2, toucher=3)
        assert p.distribution() == {1: 2, 3: 1}

    def test_factory(self):
        assert isinstance(make_placement("round_robin", 4), RoundRobinPlacement)
        assert isinstance(make_placement("first_touch", 4), FirstTouchPlacement)
        with pytest.raises(ValueError):
            make_placement("static", 4)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="placement"):
            SystemConfig(page_placement="hashed")


class TestFirstTouchSystem:
    def _cfg(self, protocol="BASIC", **kw):
        return replace(
            tiny_config(protocol, **kw), page_placement="first_touch"
        )

    def test_private_page_becomes_local(self):
        # proc 2 is the only toucher of its page: the miss is local
        addr = 7 * 4096
        streams = [[], [], [("read", addr)], []]
        system = run_streams(self._cfg(), streams)
        assert system.placement.home_of_page(7) == 2
        # a local miss generates no network traffic
        assert system.stats.network.bytes == 0

    def test_first_touch_cuts_private_read_stall(self):
        addr = 7 * 4096
        ops = [("read", addr + i * 32) for i in range(8)]
        rr = run_streams(tiny_config(), pad_streams([[], [], ops], 4))
        ft = run_streams(self._cfg(), pad_streams([[], [], ops], 4))
        assert (
            ft.stats.procs[2].read_stall < rr.stats.procs[2].read_stall
        )

    def test_shared_page_is_consistent_across_nodes(self):
        # both processors must agree on the home: the directory for
        # the page lives at exactly one node
        addr = 5 * 4096
        streams = pad_streams(
            [[("read", addr)], [("think", 2000), ("read", addr), ("write", addr)]],
            4,
        )
        system = run_streams(self._cfg(), streams)
        homes = [
            n.node_id
            for n in system.nodes
            if addr // 32 in n.home.directory.known_blocks()
        ]
        assert homes == [0]  # first toucher

    def test_invariants_with_protocol_extensions(self):
        addr = 5 * 4096
        streams = pad_streams(
            [
                [("read", addr), ("write", addr), ("think", 4000)],
                [("think", 1500), ("read", addr), ("write", addr)],
            ],
            4,
        )
        run_streams(self._cfg("P+CW+M"), streams)


class TestPlacementExperiment:
    def test_driver_runs(self):
        from repro.experiments import placement

        data = placement.run(scale=0.25, apps=("water",))
        assert set(data["water"]) == {
            (proto, policy)
            for proto in placement.PROTOCOLS
            for policy in placement.POLICIES
        }
        text = placement.render(data)
        assert "first-touch" in text
