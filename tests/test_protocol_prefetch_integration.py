"""Integration tests for adaptive sequential prefetching (P)."""

from conftest import BLOCK, pad_streams, run_streams, tiny_config

from repro.config import Consistency
from repro.core.states import CacheState


def seq_reads(base, n, stride=BLOCK, think=40):
    ops = []
    for i in range(n):
        ops.append(("read", base + i * stride))
        ops.append(("think", think))
    return ops


class TestPrefetchIssue:
    def test_miss_triggers_prefetch_of_successors(self):
        cfg = tiny_config("P")
        system = run_streams(cfg, pad_streams([[("read", 0), ("think", 500)]], 4))
        cache = system.stats.caches[0]
        assert cache.prefetches_issued >= 1
        # block 1 was prefetched and sits in the SLC, marked
        line = system.nodes[0].cache.slc.lookup(1)
        assert line is not None
        assert line.prefetched

    def test_sequential_stream_mostly_hits_after_warmup(self):
        cfg = tiny_config("P")
        system = run_streams(cfg, pad_streams([seq_reads(0, 30)], 4))
        cache = system.stats.caches[0]
        # far fewer demand misses than the 30 blocks touched
        assert cache.demand_read_misses + cache.late_prefetch_hits < 30
        assert cache.useful_prefetches > 10

    def test_no_prefetch_under_basic(self):
        cfg = tiny_config("BASIC")
        system = run_streams(cfg, pad_streams([seq_reads(0, 10)], 4))
        assert system.stats.caches[0].prefetches_issued == 0
        assert system.stats.caches[0].demand_read_misses == 10

    def test_prefetch_cuts_read_stall_on_sequential_stream(self):
        basic = run_streams(
            tiny_config("BASIC"), pad_streams([seq_reads(0, 40)], 4)
        )
        pref = run_streams(tiny_config("P"), pad_streams([seq_reads(0, 40)], 4))
        assert (
            pref.stats.procs[0].read_stall < basic.stats.procs[0].read_stall
        )

    def test_prefetched_lines_count_useful_once(self):
        cfg = tiny_config("P")
        system = run_streams(
            cfg,
            pad_streams(
                [[("read", 0), ("think", 800), ("read", BLOCK),
                  ("read", BLOCK), ("read", BLOCK)]],
                4,
            ),
        )
        assert system.stats.caches[0].useful_prefetches == 1

    def test_prefetch_works_under_sc(self):
        # non-binding prefetching is legal under any consistency model
        cfg = tiny_config("P", consistency=Consistency.SC)
        system = run_streams(cfg, pad_streams([seq_reads(0, 20)], 4))
        assert system.stats.caches[0].prefetches_issued > 0


class TestPrefetchCoherence:
    def test_prefetched_copy_is_invalidated_like_any_other(self):
        cfg = tiny_config("P")
        a2 = BLOCK  # prefetched by node 0's read of block 0
        streams = pad_streams(
            [
                [("read", 0), ("think", 4000)],
                [("think", 1000), ("write", a2)],
            ],
            4,
        )
        system = run_streams(cfg, streams)
        line = system.nodes[0].cache.slc.lookup(1)
        assert line is None  # the prefetched copy was invalidated

    def test_prefetch_under_pm_gets_exclusive_copy(self):
        # P+M: prefetch misses to migratory blocks retrieve exclusive
        # copies -- hardware read-exclusive prefetching (§3.4)
        cfg = tiny_config("P+M")
        a = 0
        b = BLOCK
        streams = pad_streams(
            [
                # make blocks 0 and 1 migratory via two rmw sequences
                [("read", a), ("write", a), ("read", b), ("write", b),
                 ("think", 8000)],
                [("think", 2000), ("read", a), ("write", a),
                 ("read", b), ("write", b), ("think", 6000)],
                # node 2's read of block 0 prefetches block 1 exclusively
                [("think", 5000), ("read", a), ("write", a), ("think", 100),
                 ("read", b), ("write", b)],
            ],
            4,
        )
        system = run_streams(cfg, streams)
        # node 2 ends up owning both blocks without extra upgrades:
        # its writes hit MIG_CLEAN copies
        line = system.nodes[2].cache.slc.lookup(1)
        assert line is not None
        assert line.state is CacheState.DIRTY


class TestSlwbPressure:
    def test_prefetches_dropped_when_slwb_full(self):
        # a 2-entry SLWB leaves no room for prefetches beyond pending ops
        cfg = tiny_config("P", slwb_entries=2)
        system = run_streams(cfg, pad_streams([seq_reads(0, 20, think=2)], 4))
        big = run_streams(
            tiny_config("P", slwb_entries=16),
            pad_streams([seq_reads(0, 20, think=2)], 4),
        )
        assert (
            system.stats.caches[0].prefetches_issued
            <= big.stats.caches[0].prefetches_issued
        )
