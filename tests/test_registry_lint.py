"""Static extension-metadata lint (``validate_registry``).

One test per violation class, each against a hand-built registry
mapping so the global registry (already linted at import time) stays
untouched.
"""

import pytest

from repro.core.extensions import (
    KNOWN_TRAITS,
    ExtensionInfo,
    RegistryError,
    registered_extensions,
    validate_registry,
)


def info(name, order, conflicts=(), traits=()):
    return ExtensionInfo(
        name=name,
        order=order,
        description=f"test extension {name}",
        factory=lambda proto: None,
        enabled=lambda proto: False,
        conflicts=frozenset(conflicts),
        traits=frozenset(traits),
    )


def registry(*infos):
    return {i.name.upper(): i for i in infos}


def test_live_registry_is_clean():
    validate_registry()


def test_builtin_conflicts_are_symmetric():
    by_name = {i.name: i for i in registered_extensions()}
    assert "PF" in by_name["P"].conflicts
    assert "P" in by_name["PF"].conflicts


def test_clean_registry_passes():
    validate_registry(
        registry(info("A", 1, conflicts={"B"}), info("B", 2, conflicts={"A"}))
    )


def test_rejects_unresolvable_conflict():
    with pytest.raises(
        RegistryError,
        match=r"'A' declares a conflict with unregistered extension 'GHOST'",
    ):
        validate_registry(registry(info("A", 1, conflicts={"GHOST"})))


def test_rejects_asymmetric_conflict():
    with pytest.raises(
        RegistryError,
        match=r"conflict between 'A' and 'B' is not symmetric: "
              r"'B' does not declare 'A' back",
    ):
        validate_registry(
            registry(info("A", 1, conflicts={"B"}), info("B", 2))
        )


def test_conflict_symmetry_is_case_insensitive():
    validate_registry(
        registry(info("A", 1, conflicts={"b"}), info("B", 2, conflicts={"a"}))
    )


def test_rejects_duplicate_order():
    with pytest.raises(
        RegistryError, match=r"\['A', 'B'\] share pipeline order 7"
    ):
        validate_registry(registry(info("A", 7), info("B", 7)))


def test_rejects_unknown_trait():
    with pytest.raises(
        RegistryError, match=r"'A' declares unknown trait 'telepathy'"
    ):
        validate_registry(registry(info("A", 1, traits={"telepathy"})))


def test_reports_every_problem_at_once():
    bad = registry(
        info("A", 1, conflicts={"GHOST"}, traits={"telepathy"}),
        info("B", 1),
    )
    with pytest.raises(RegistryError) as exc:
        validate_registry(bad)
    message = str(exc.value)
    assert "GHOST" in message
    assert "telepathy" in message
    assert "share pipeline order 1" in message


def test_known_traits_cover_builtin_declarations():
    for ext in registered_extensions():
        assert ext.traits <= KNOWN_TRAITS
